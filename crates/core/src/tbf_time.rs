//! TBF over *time-based* sliding windows (§4.1 extension).
//!
//! "Suppose the entire sliding window is equally divided into `R` time
//! units. In Step 1, the cleaning procedure executes once in each time
//! unit ... instead of inserting the counting-based position, the time
//! unit information is inserted into the entries of TBF."
//!
//! Entries store the wraparound *time-unit index* of their last insertion.
//! The window covers the last `R` units (the current unit included), so
//! two clicks within the same unit are duplicates. The paper's per-unit
//! cleaning daemon is implemented *lazily but faithfully*: when an
//! observation advances the clock by `g` units, the sweeps of the skipped
//! units are replayed one unit at a time, each evaluated at its own
//! virtual "now" — byte-for-byte the schedule an on-time daemon would
//! have produced. A gap of `R` or more units simply clears the table
//! (everything is expired by then), bounding the replay cost.
//!
//! # Hot path
//!
//! The detector mirrors the count-based [`crate::Tbf`] split: hashing is
//! pure ([`TimeTbf::plan`] / [`TimeTbf::planner`]) and the stateful half
//! replays precomputed [`ProbePlan`]s. The batch entry points
//! ([`TimeTbf::apply_batch_at_into`], `observe_batch_at`,
//! `observe_flat_at_into`) hash the whole batch in one multi-lane pass,
//! expand every plan's probe indices into one flat buffer, and replay
//! with one-line-ahead prefetch. Clock work is amortized per batch: the
//! unit index and wraparound stamp are recomputed only when a tick run
//! crosses into a new unit, so a burst of clicks inside one unit pays
//! the division and `advance_to` once.
//!
//! # Out-of-order ticks
//!
//! Time never moves backwards. A click whose tick maps to a unit behind
//! the detector's high-water unit is *clamped*: it is classified and
//! inserted as if it arrived in the current unit, and the event is
//! counted in [`OpCounters::clock_regressions`] so operators can see how
//! disordered the feed is. Clamping keeps the zero-false-negative
//! guarantee one-sided: a late duplicate is still flagged, and a late
//! distinct click can only be remembered slightly *longer* than its true
//! window.

use crate::backend::{self, BatchBufs, ProbeCore, TimedCore};
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::words::bits_for_value;
use cfd_bits::PackedIntVec;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::time::UnitClock;
use cfd_windows::{TimedDuplicateDetector, Verdict, WindowSpec};
use std::cell::Cell;

/// Dynamic [`TimeTbf`] state captured by a checkpoint.
pub(crate) struct TimeTbfState {
    /// Absolute high-water unit (`None` before the first observation).
    pub cur_unit: Option<u64>,
    /// Next entry index the incremental sweep will visit.
    pub clean_next: usize,
    /// Raw words of the packed entry table.
    pub entry_words: Vec<u64>,
}

/// Configuration of a [`TimeTbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeTbfConfig {
    /// Window span in time units (`R`).
    pub window_units: u64,
    /// Ticks per time unit (granularity of expiry).
    pub unit_ticks: u64,
    /// Number of TBF entries (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Unit-range extension (`C` in units; default `R`).
    pub c_units: u64,
    /// Hash seed.
    pub seed: u64,
    /// Probe-index derivation scheme.
    pub probe: ProbeLayout,
}

impl TimeTbfConfig {
    /// Creates a validated configuration with the default `C = R` and
    /// scattered probing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions, bad `k`, or window
    /// parameters whose products/sums overflow `u64`.
    pub fn new(
        window_units: u64,
        unit_ticks: u64,
        m: usize,
        k: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = Self {
            window_units,
            unit_ticks,
            m,
            k,
            c_units: window_units,
            seed,
            probe: ProbeLayout::Scattered,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Returns the configuration with the probe layout replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BlockedUnsupported`] when `Blocked` is
    /// requested but the entry width / table shape cannot form blocks.
    pub fn with_probe(mut self, probe: ProbeLayout) -> Result<Self, ConfigError> {
        self.probe = probe;
        if probe == ProbeLayout::Blocked && self.block_geometry().is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: self.entry_bits() as usize,
                m: self.m,
            });
        }
        Ok(self)
    }

    /// The wraparound unit range (`R + C`). Saturating: [`validate`]
    /// rejects configurations where the true sum overflows, so a
    /// saturated value is only ever seen on hand-built invalid configs.
    ///
    /// [`validate`]: TimeTbfConfig::new
    #[must_use]
    pub fn range(&self) -> u64 {
        self.window_units.saturating_add(self.c_units)
    }

    /// Bits per entry (`⌈log2(R + C + 1)⌉`, all-ones reserved as empty).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// The cache-line block geometry, when `probe` is blocked.
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        match self.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => BlockGeometry::for_line(self.m, self.entry_bits() as usize),
        }
    }

    /// The window span in ticks (`R × unit_ticks`). Saturating, like
    /// [`TimeTbfConfig::range`].
    #[must_use]
    pub fn window_ticks(&self) -> u64 {
        self.window_units.saturating_mul(self.unit_ticks)
    }

    /// Entries swept per *time unit* (`⌈m / C⌉`): the cleanable band of
    /// an entry spans `C` units, so one full table cycle fits inside it.
    #[must_use]
    pub fn clean_chunk(&self) -> usize {
        self.m
            .div_ceil(usize::try_from(self.c_units.max(1)).unwrap_or(usize::MAX))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.window_units == 0 || self.c_units == 0 {
            return Err(ConfigError::ZeroDimension("window units"));
        }
        if self.unit_ticks == 0 {
            return Err(ConfigError::ZeroDimension("ticks per unit"));
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        if self.window_units.checked_add(self.c_units).is_none() {
            return Err(ConfigError::ArithmeticOverflow {
                what: "unit range R + C",
            });
        }
        if self.window_units.checked_mul(self.unit_ticks).is_none() {
            return Err(ConfigError::ArithmeticOverflow {
                what: "window span R * unit_ticks",
            });
        }
        Ok(())
    }
}

/// Timing-Bloom-filter duplicate detector over time-based sliding
/// windows.
///
/// ```rust
/// use cfd_core::tbf_time::{TimeTbf, TimeTbfConfig};
/// use cfd_windows::{TimedDuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // Window = 60 units of 1000 ticks (e.g. a one-minute window in ms).
/// let cfg = TimeTbfConfig::new(60, 1000, 1 << 16, 6, 0)?;
/// let mut d = TimeTbf::new(cfg)?;
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 1_000), Verdict::Distinct);
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 30_000), Verdict::Duplicate);
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 90_000), Verdict::Distinct);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeTbf {
    cfg: TimeTbfConfig,
    entries: PackedIntVec,
    units: UnitClock,
    family: DoubleHashFamily,
    /// Absolute unit of the last observation (`None` before the first).
    cur_unit: Option<u64>,
    clean_next: usize,
    clean_chunk: usize,
    empty: u64,
    ops: OpCounters,
    bufs: BatchBufs,
    /// Blocked-probe geometry; `None` in scattered mode.
    geo: Option<BlockGeometry>,
    /// Probes actually issued per element: `k` scattered, capped at
    /// half the block in blocked mode (see [`crate::Gbf`]).
    k_eff: usize,
    /// `O(m)` occupancy scans performed (snapshot-cadence only; see
    /// `DetectorStats::occupancy_scans`).
    scans: Cell<u64>,
}

impl TimeTbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: TimeTbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let geo = match cfg.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => Some(cfg.block_geometry().ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cfg.entry_bits() as usize,
                    m: cfg.m,
                },
            )?),
        };
        let k_eff = backend::effective_k(cfg.k, geo.as_ref());
        let entries = PackedIntVec::new_all_ones(cfg.m, cfg.entry_bits());
        let empty = entries.max_value();
        Ok(Self {
            units: UnitClock::new(cfg.unit_ticks),
            family: DoubleHashFamily::new(cfg.seed),
            cur_unit: None,
            clean_next: 0,
            clean_chunk: cfg.clean_chunk(),
            empty,
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            geo,
            k_eff,
            scans: Cell::new(0),
            entries,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TimeTbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Probes issued per element: `k` in scattered mode, `min(k,
    /// slots/2)` in blocked mode (saturation cap; see [`crate::Gbf`]).
    #[must_use]
    pub fn effective_hash_count(&self) -> usize {
        self.k_eff
    }

    /// Number of entries holding an *active* stamp — occupied and within
    /// the window as seen from the high-water unit (diagnostics;
    /// `O(m)`). Only active entries can satisfy a probe, so this is the
    /// occupancy that drives the false-positive rate.
    #[must_use]
    pub fn active_entries(&self) -> usize {
        self.scans.set(self.scans.get() + 1);
        let Some(now) = self.cur_unit else {
            return 0;
        };
        let now_mod = now % self.cfg.range();
        (0..self.cfg.m)
            .filter(|&i| {
                let e = self.entries.get(i);
                e != self.empty && self.is_active_mod(now_mod, e)
            })
            .count()
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (TimeTbfConfig, TimeTbfState) {
        (
            self.cfg,
            TimeTbfState {
                cur_unit: self.cur_unit,
                clean_next: self.clean_next,
                entry_words: self.entries.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(cfg: TimeTbfConfig, state: TimeTbfState) -> Option<Self> {
        // Size-check against the provided payload BEFORE allocating: a
        // corrupt header could otherwise request an absurd table.
        let expected_words = cfg.m.checked_mul(cfg.entry_bits() as usize)?.div_ceil(64);
        if state.entry_words.len() != expected_words || state.clean_next >= cfg.m {
            return None;
        }
        let mut d = Self::new(cfg).ok()?;
        d.cur_unit = state.cur_unit;
        d.clean_next = state.clean_next;
        d.entries = PackedIntVec::from_words(state.entry_words, cfg.m, cfg.entry_bits())?;
        Some(d)
    }

    /// Unit age of the stamp `e` as seen from `now_mod = abs_now %
    /// range` (0 = written this unit). The caller hoists the modulo:
    /// probe and sweep loops evaluate many stamps against one clock
    /// position, and a 64-bit division per stamp would dominate them.
    #[inline]
    fn unit_age_mod(&self, now_mod: u64, e: u64) -> u64 {
        if now_mod >= e {
            now_mod - e
        } else {
            self.cfg.range() - e + now_mod
        }
    }

    #[inline]
    fn is_active_mod(&self, now_mod: u64, e: u64) -> bool {
        self.unit_age_mod(now_mod, e) < self.cfg.window_units
    }

    /// One unit's worth of the cleaning daemon, evaluated at virtual unit
    /// `abs_unit`. Runs on the wide
    /// [`PackedIntVec::expire_timestamps`] compare-and-store (eight
    /// stamps per classify on AVX2) with the wraparound clock position
    /// computed once per sweep — at production sizings the sweep visits
    /// several entries per arriving click, so its per-entry cost bounds
    /// detector throughput. The timed predicate differs from the
    /// count-based TBF's only in its activity interval: age 0 (written
    /// this unit) is still live, so it is `[0, window - 1]`.
    fn sweep_one_unit(&mut self, abs_unit: u64) {
        let m = self.cfg.m;
        let range = self.cfg.range();
        let window = self.cfg.window_units;
        let now_mod = abs_unit % range;
        let mut remaining = self.clean_chunk;
        while remaining > 0 {
            let start = self.clean_next;
            let seg = remaining.min(m - start);
            let cleaned = self.entries.expire_timestamps(
                start,
                seg,
                self.empty,
                self.empty,
                now_mod,
                range,
                0,
                window - 1,
            );
            self.ops.clean_reads += seg as u64;
            self.ops.clean_writes += cleaned as u64;
            self.clean_next += seg;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            remaining -= seg;
        }
    }

    /// Advances the clock to `unit`, replaying skipped units' sweeps.
    ///
    /// Out-of-order policy: a unit behind the high-water mark is clamped
    /// to it (time never moves backwards) and the event is counted in
    /// [`OpCounters::clock_regressions`].
    fn advance_to(&mut self, unit: u64) -> u64 {
        let last = match self.cur_unit {
            None => {
                self.cur_unit = Some(unit);
                return unit;
            }
            Some(last) => last,
        };
        if unit <= last {
            if unit < last {
                self.ops.clock_regressions += 1;
            }
            // `unit == last` is the common same-unit case: nothing to
            // sweep, and skipping it keeps `last + 1` below from
            // overflowing when the clock sits at `u64::MAX`.
            return last;
        }
        let crossed = unit - last;
        if crossed >= self.cfg.window_units {
            // Everything written before the gap is expired: clearing the
            // table is both correct and cheaper than replaying the gap.
            self.entries.fill(self.empty);
            self.ops.clean_writes += self.cfg.m as u64;
            self.clean_next = 0;
        } else {
            for u in (last + 1)..=unit {
                self.sweep_one_unit(u);
            }
        }
        self.cur_unit = Some(unit);
        unit
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of a timed observation; `observe_at(id, tick)` ≡
    /// `apply_at(plan(id), tick)`. The hash evaluation is accounted to
    /// this element regardless of where it was computed.
    pub fn apply_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan_at(self, &mut bufs, plan, tick);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans, one tick per plan, with the
    /// same lookahead prefetch as `observe_batch_at` — the stateful half
    /// of the sharded hash-once path.
    ///
    /// # Panics
    /// Panics if `plans.len() != ticks.len()`.
    pub fn apply_batch_at(&mut self, plans: &[ProbePlan], ticks: &[u64]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_at_into(plans, ticks, &mut out);
        out
    }

    /// Allocation-free [`TimeTbf::apply_batch_at`]: verdicts go into
    /// `out` (cleared first, capacity reused).
    ///
    /// # Panics
    /// Panics if `plans.len() != ticks.len()`.
    pub fn apply_batch_at_into(
        &mut self,
        plans: &[ProbePlan],
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_at_into(self, &mut bufs, plans, ticks, out);
        self.bufs = bufs;
    }

    /// [`TimeTbf::apply_at`] with the plan's probe indices already
    /// expanded and the clock already advanced — the innermost stateful
    /// step, shared by the per-click and batch paths. `stamp_now` is
    /// `unit % range`, so activity checks reuse it instead of dividing
    /// per probe.
    fn probe_insert(&mut self, probes: &[usize], stamp_now: u64) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        let mut present_and_active = true;
        for &i in probes {
            let e = self.entries.get(i);
            self.ops.probe_reads += 1;
            if e == self.empty || !self.is_active_mod(stamp_now, e) {
                present_and_active = false;
                break;
            }
        }

        if present_and_active {
            Verdict::Duplicate
        } else {
            for &i in probes {
                self.entries.set(i, stamp_now);
            }
            self.ops.insert_writes += probes.len() as u64;
            Verdict::Distinct
        }
    }
}

impl ProbeCore for TimeTbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cfg.m
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.k_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.entries.prefetch(idx);
    }
}

impl TimedCore for TimeTbf {
    #[inline]
    fn unit_of(&self, tick: u64) -> u64 {
        self.units.unit_of(tick)
    }

    #[inline]
    fn high_water(&self) -> Option<u64> {
        self.cur_unit
    }

    #[inline]
    fn advance_to(&mut self, unit: u64) -> u64 {
        Self::advance_to(self, unit)
    }

    #[inline]
    fn stamp_of(&self, unit: u64) -> u64 {
        unit % self.cfg.range()
    }

    #[inline]
    fn note_regression(&mut self) {
        self.ops.clock_regressions += 1;
    }

    #[inline]
    fn apply_probes_at(&mut self, _plan: ProbePlan, probes: &[usize], stamp_now: u64) -> Verdict {
        self.probe_insert(probes, stamp_now)
    }
}

impl TimedDuplicateDetector for TimeTbf {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let plan = self.plan(id);
        self.apply_at(plan, tick)
    }

    fn observe_batch_at_into(&mut self, ids: &[&[u8]], ticks: &[u64], out: &mut Vec<Verdict>) {
        // Hash the whole batch first (pure, multi-lane over equal-length
        // runs), expand to one flat probe buffer, then replay against
        // filter state with lookahead prefetch — the same latency-hiding
        // schedule as `Tbf::observe_batch`.
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_at_into(self, &mut bufs, planner, ids, ticks, out);
        self.bufs = bufs;
    }

    fn observe_flat_at_into(
        &mut self,
        keys: &[u8],
        key_len: usize,
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_at_into(self, &mut bufs, planner, keys, key_len, ticks, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeSliding {
            ticks: self.cfg.window_ticks(),
        }
    }

    fn memory_bits(&self) -> usize {
        self.entries.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "time-tbf"
    }
}

impl DetectorStats for TimeTbf {
    fn stats_name(&self) -> &'static str {
        "time-tbf"
    }

    /// One entry: the active-stamp occupancy ratio (`O(m)`).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.active_entries() as f64 / self.cfg.m as f64]
    }

    /// Normalized position of the incremental sweep through the table.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cfg.m as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k_eff` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    /// A fresh key is flagged iff all `k_eff` probes land on active
    /// entries: `(active/m)^k_eff` at the live occupancy (lower bound in
    /// blocked mode; see `cfd_analysis::blocked`).
    fn estimated_fp(&self) -> f64 {
        (self.active_entries() as f64 / self.cfg.m as f64).powi(self.k_eff as i32)
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// Single-scan override: `fill_ratios` and `estimated_fp` each need
    /// the `O(m)` active-entry count; derive both from one pass.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fill = self.active_entries() as f64 / self.cfg.m as f64;
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![fill],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: fill.powi(self.k_eff as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactTimeSlidingDedup;

    fn ttbf(window_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeTbf {
        TimeTbf::new(TimeTbfConfig::new(window_units, unit_ticks, m, k, 9).unwrap()).unwrap()
    }

    fn blocked_ttbf(window_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeTbf {
        let cfg = TimeTbfConfig::new(window_units, unit_ticks, m, k, 9)
            .unwrap()
            .with_probe(ProbeLayout::Blocked)
            .unwrap();
        TimeTbf::new(cfg).unwrap()
    }

    #[test]
    fn duplicate_within_window_distinct_after() {
        let mut d = ttbf(10, 100, 1 << 14, 6);
        assert_eq!(d.observe_at(b"x", 0), Verdict::Distinct);
        assert_eq!(d.observe_at(b"x", 500), Verdict::Duplicate); // unit 5
        assert_eq!(d.observe_at(b"x", 999), Verdict::Duplicate); // unit 9
                                                                 // unit 10: the valid click at unit 0 left the 10-unit window.
        assert_eq!(d.observe_at(b"x", 1_000), Verdict::Distinct);
    }

    #[test]
    fn same_unit_repeats_are_duplicates() {
        let mut d = ttbf(5, 1_000, 1 << 12, 5);
        assert_eq!(d.observe_at(b"a", 123), Verdict::Distinct);
        assert_eq!(d.observe_at(b"a", 456), Verdict::Duplicate);
    }

    #[test]
    fn long_quiet_gap_clears_everything() {
        let mut d = ttbf(10, 1, 1 << 12, 5);
        d.observe_at(b"a", 0);
        d.observe_at(b"b", 1);
        // Gap of 1000 units: table cleared, both distinct again.
        assert_eq!(d.observe_at(b"a", 1_000), Verdict::Distinct);
        assert_eq!(d.observe_at(b"b", 1_001), Verdict::Distinct);
    }

    #[test]
    fn zero_false_negatives_vs_exact_timed_oracle() {
        let mut d = ttbf(16, 10, 1 << 14, 6);
        let mut oracle = ExactTimeSlidingDedup::new(16, 10);
        // Bursty stream: ids repeat at various lags, time advances in
        // irregular steps (including intra-unit bursts and small gaps).
        let mut tick = 0u64;
        for i in 0..30_000u64 {
            tick += match i % 7 {
                0 => 0,
                1 | 2 => 3,
                3 => 17,
                4 => 1,
                5 => 25,
                _ => 6,
            };
            let key = (i % 61).to_le_bytes();
            let got = d.observe_at(&key, tick);
            let want = oracle.observe_at(&key, tick);
            if want == Verdict::Duplicate {
                assert_eq!(
                    got,
                    Verdict::Duplicate,
                    "false negative at i={i} tick={tick}"
                );
            }
        }
    }

    #[test]
    fn aliasing_controlled_across_many_wraparounds() {
        // Range = 2R = 32 units; run thousands of units with a distinct
        // stream and verify the FP rate stays small.
        let mut d = ttbf(16, 1, 1 << 13, 6);
        let mut fps = 0u64;
        let total = 50_000u64;
        for i in 0..total {
            if d.observe_at(&i.to_le_bytes(), i / 3) == Verdict::Duplicate {
                fps += 1;
            }
        }
        assert!(
            (fps as f64 / total as f64) < 0.02,
            "fp rate too high: {fps}"
        );
    }

    #[test]
    fn out_of_order_ticks_are_clamped_and_counted() {
        let mut d = ttbf(10, 100, 1 << 12, 5);
        d.observe_at(b"a", 10_000);
        assert_eq!(d.ops().clock_regressions, 0);
        // An earlier tick arrives late: processed at the current unit.
        assert_eq!(d.observe_at(b"a", 2_000), Verdict::Duplicate);
        assert_eq!(d.ops().clock_regressions, 1);
        assert_eq!(d.observe_at(b"new", 1), Verdict::Distinct);
        assert_eq!(d.ops().clock_regressions, 2);
        // In-order ticks do not count.
        d.observe_at(b"later", 11_000);
        assert_eq!(d.ops().clock_regressions, 2);
    }

    #[test]
    fn entry_bits_follow_unit_range() {
        let cfg = TimeTbfConfig::new(60, 1000, 100, 4, 0).unwrap();
        // range = 120 -> 7 bits.
        assert_eq!(cfg.entry_bits(), 7);
        assert_eq!(cfg.clean_chunk(), 2); // ceil(100/60)
    }

    #[test]
    fn config_rejects_overflowing_windows() {
        // R + C = 2 * u64::MAX overflows.
        let err = TimeTbfConfig::new(u64::MAX, 1, 100, 4, 0).unwrap_err();
        assert!(matches!(err, ConfigError::ArithmeticOverflow { .. }));
        assert!(err.to_string().contains("overflow"));
        // R * unit_ticks overflows even though R + C does not.
        let err = TimeTbfConfig::new(1 << 33, 1 << 33, 100, 4, 0).unwrap_err();
        assert!(matches!(err, ConfigError::ArithmeticOverflow { .. }));
    }

    #[test]
    fn ticks_near_u64_max_are_classified_correctly() {
        // unit_ticks = 1: units are raw ticks; exercise the wraparound
        // stamp math at the very top of the tick space.
        let mut d = ttbf(8, 1, 1 << 12, 5);
        let base = u64::MAX - 20;
        assert_eq!(d.observe_at(b"edge", base), Verdict::Distinct);
        assert_eq!(d.observe_at(b"edge", base + 7), Verdict::Duplicate);
        // 8 units later the click has expired.
        assert_eq!(d.observe_at(b"edge", base + 8), Verdict::Distinct);
        // The final representable tick still processes.
        assert_eq!(d.observe_at(b"last", u64::MAX), Verdict::Distinct);
        assert_eq!(d.observe_at(b"last", u64::MAX), Verdict::Duplicate);
    }

    #[test]
    fn non_dividing_unit_ticks_round_down() {
        // unit_ticks = 7 does not divide the tick space evenly; ticks
        // inside one 7-tick unit are the same unit, tick 7k the next.
        let mut d = ttbf(3, 7, 1 << 12, 4);
        assert_eq!(d.observe_at(b"q", 6), Verdict::Distinct); // unit 0
        assert_eq!(d.observe_at(b"q", 7), Verdict::Duplicate); // unit 1
        assert_eq!(d.observe_at(b"q", 20), Verdict::Duplicate); // unit 2
                                                                // unit 3 (tick 21): the unit-0 click left the 3-unit window.
        assert_eq!(d.observe_at(b"q", 21), Verdict::Distinct);
    }

    #[test]
    fn batch_matches_sequential() {
        let ids: Vec<Vec<u8>> = (0..6_000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..6_000u64).map(|i| i * 3 / 2).collect();
        let mut sequential = ttbf(32, 40, 1 << 14, 6);
        let mut batched = ttbf(32, 40, 1 << 14, 6);
        let want: Vec<Verdict> = slices
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let mut got = Vec::new();
        for (chunk, tchunk) in slices.chunks(513).zip(ticks.chunks(513)) {
            got.extend(batched.observe_batch_at(chunk, tchunk));
        }
        assert_eq!(got, want);
        // Counter parity: the amortized clock cache must not change any
        // accounting, including clamp events.
        assert_eq!(batched.ops(), sequential.ops());
    }

    #[test]
    fn flat_keys_match_slice_batch() {
        let keys: Vec<[u8; 8]> = (0..4_000u64).map(|i| (i % 311).to_le_bytes()).collect();
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        let slices: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let ticks: Vec<u64> = (0..4_000u64).map(|i| i / 2).collect();
        let mut by_slices = ttbf(64, 16, 1 << 14, 6);
        let mut by_flat = ttbf(64, 16, 1 << 14, 6);
        let want = by_slices.observe_batch_at(&slices, &ticks);
        let mut got = Vec::new();
        by_flat.observe_flat_at_into(&flat, 8, &ticks, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn batch_counts_regressions_like_sequential() {
        let mut seq = ttbf(10, 10, 1 << 12, 4);
        let mut bat = ttbf(10, 10, 1 << 12, 4);
        let ids: Vec<Vec<u8>> = (0..6u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        // Ticks regress twice inside the batch (same regressed unit run).
        let ticks = [500u64, 40, 41, 700, 10, 900];
        for (id, &t) in slices.iter().zip(&ticks) {
            seq.observe_at(id, t);
        }
        bat.observe_batch_at(&slices, &ticks);
        assert_eq!(seq.ops().clock_regressions, 3);
        assert_eq!(bat.ops(), seq.ops());
    }

    #[test]
    fn blocked_mode_matches_oracle_and_caps_k() {
        let mut d = blocked_ttbf(16, 10, 1 << 14, 10);
        // range = 32 -> 6-bit entries -> 64 slots per line (pow2 floor),
        // k capped at slots/2 when smaller than k.
        assert!(d.effective_hash_count() <= 10);
        let mut oracle = ExactTimeSlidingDedup::new(16, 10);
        let mut tick = 0u64;
        for i in 0..20_000u64 {
            tick += i % 5;
            let key = (i % 53).to_le_bytes();
            let got = d.observe_at(&key, tick);
            let want = oracle.observe_at(&key, tick);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "blocked FN at i={i}");
            }
        }
    }

    #[test]
    fn blocked_batch_matches_blocked_sequential() {
        let ids: Vec<Vec<u8>> = (0..5_000u64)
            .map(|i| (i % 600).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..5_000u64).map(|i| i * 2).collect();
        let mut sequential = blocked_ttbf(32, 40, 1 << 14, 6);
        let mut batched = blocked_ttbf(32, 40, 1 << 14, 6);
        let want: Vec<Verdict> = slices
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let got = batched.observe_batch_at(&slices, &ticks);
        assert_eq!(got, want);
    }

    #[test]
    fn occupancy_scans_count_table_passes_only() {
        let mut d = ttbf(16, 10, 1 << 12, 5);
        let ids: Vec<Vec<u8>> = (0..500u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..500u64).collect();
        d.observe_batch_at(&slices, &ticks);
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let _ = d.active_entries();
        let _ = d.fill_ratios();
        assert_eq!(d.occupancy_scans(), 2);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 3);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = ttbf(8, 10, 1 << 10, 4);
        d.observe_at(b"k", 5);
        d.reset();
        assert_eq!(d.observe_at(b"k", 6), Verdict::Distinct);
    }
}
