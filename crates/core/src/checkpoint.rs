//! Detector state checkpointing.
//!
//! A billing gateway cannot afford to forget its detection window on
//! restart: every in-window duplicate would be re-charged. This module
//! serializes the complete state of the count-based detectors to a
//! versioned binary format and restores them bit-for-bit, so a restored
//! detector continues the stream with *identical* verdicts.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "CFDS" | version u16 | kind u8 |
//! config fields ... | dynamic state ... | payload words
//! ```
//!
//! Count-based ([`Tbf`], [`Gbf`]) and time-based ([`TimeTbf`],
//! [`TimeGbf`]) detectors are all checkpointable. A restored time-based
//! detector carries its high-water unit, so the first post-restart tick
//! expires exactly what a quiet gap of the same wall-clock length would
//! have — duplicates spanning the restart are still caught.

use crate::apbf::{Apbf, ApbfConfig, ApbfState};
use crate::arena::{ArenaConfig, ArenaState, TenantArena};
use crate::config::{GbfConfig, GbfLayout, ProbeLayout, TbfConfig};
use crate::gbf::Gbf;
use crate::gbf_time::{TimeGbf, TimeGbfConfig, TimeGbfState};
use crate::sharded::ShardedDetector;
use crate::swbf::{Swbf, SwbfConfig, SwbfState};
use crate::tbf::Tbf;
use crate::tbf_jumping::{JumpingTbf, JumpingTbfConfig, JumpingTbfState};
use crate::tbf_time::{TimeTbf, TimeTbfConfig, TimeTbfState};
use std::fmt;

const MAGIC: &[u8; 4] = b"CFDS";
const VERSION: u16 = 1;
pub(crate) const KIND_TBF: u8 = 1;
pub(crate) const KIND_GBF: u8 = 2;
pub(crate) const KIND_SHARDED: u8 = 3;
pub(crate) const KIND_TIME_TBF: u8 = 4;
pub(crate) const KIND_TIME_GBF: u8 = 5;
pub(crate) const KIND_APBF: u8 = 6;
pub(crate) const KIND_SWBF: u8 = 7;
pub(crate) const KIND_JUMPING_TBF: u8 = 8;
pub(crate) const KIND_ARENA: u8 = 9;

/// Reads the kind byte of a `CFDS` buffer after validating the magic
/// and version — the registry's dispatch key for backend-agnostic
/// restores.
pub(crate) fn peek_kind(buf: &[u8]) -> Result<u8, CheckpointError> {
    if buf.len() < 7 || &buf[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    Ok(buf[6])
}

/// Upper bound on the shard count accepted when restoring a sharded
/// checkpoint; rejects absurd headers before any allocation.
const MAX_SHARDS: usize = 1 << 16;

fn probe_tag(probe: ProbeLayout) -> u8 {
    match probe {
        ProbeLayout::Scattered => 0,
        ProbeLayout::Blocked => 1,
    }
}

fn probe_from_tag(tag: u8) -> Result<ProbeLayout, CheckpointError> {
    match tag {
        0 => Ok(ProbeLayout::Scattered),
        1 => Ok(ProbeLayout::Blocked),
        _ => Err(CheckpointError::Corrupt("unknown probe-layout tag")),
    }
}

/// Error restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not a `CFDS` buffer.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer holds a different detector kind.
    WrongKind {
        /// Kind tag found in the buffer.
        found: u8,
        /// Kind tag required by the caller.
        expected: u8,
    },
    /// The buffer ended early or a field was out of range.
    Corrupt(&'static str),
    /// The kind tag names no backend this build knows — e.g. a
    /// checkpoint written by a newer binary with additional backends.
    /// Distinct from [`CheckpointError::WrongKind`], where the kind is
    /// known but the caller asked for a different one.
    UnknownBackend {
        /// Kind tag found in the buffer.
        found: u8,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "buffer is not a CFDS checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::WrongKind { found, expected } => {
                write!(f, "checkpoint holds kind {found}, expected {expected}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::UnknownBackend { found } => {
                write!(f, "checkpoint holds unknown backend kind {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A minimal little-endian writer.
struct Writer(Vec<u8>);

impl Writer {
    fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(kind);
        Self(buf)
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn words(&mut self, ws: &[u64]) {
        self.usize(ws.len());
        for &w in ws {
            self.u64(w);
        }
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.usize(bs.len());
        self.0.extend_from_slice(bs);
    }
    /// Flag byte + value: unlike a `u64::MAX` sentinel this stays
    /// unambiguous when the value itself can legitimately be `u64::MAX`
    /// (a high-water *unit* can, with `unit_ticks == 1`).
    fn opt_u64(&mut self, v: Option<u64>) {
        self.u8(u8::from(v.is_some()));
        self.u64(v.unwrap_or(0));
    }
}

/// A minimal little-endian reader.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn open(buf: &'a [u8], expected_kind: u8) -> Result<Self, CheckpointError> {
        if buf.len() < 7 || &buf[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let kind = buf[6];
        if kind != expected_kind {
            return Err(CheckpointError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        Ok(Self(&buf[7..]))
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let (&b, rest) = self
            .0
            .split_first()
            .ok_or(CheckpointError::Corrupt("unexpected end of buffer"))?;
        self.0 = rest;
        Ok(b)
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        if self.0.len() < 8 {
            return Err(CheckpointError::Corrupt("unexpected end of buffer"));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Corrupt("size overflow"))
    }
    fn words(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.usize()?;
        if len > self.0.len() / 8 {
            return Err(CheckpointError::Corrupt("word count beyond buffer"));
        }
        (0..len).map(|_| self.u64()).collect()
    }
    fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.usize()?;
        if len > self.0.len() {
            return Err(CheckpointError::Corrupt("byte count beyond buffer"));
        }
        let (head, rest) = self.0.split_at(len);
        self.0 = rest;
        Ok(head)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        let flag = self.u8()?;
        let value = self.u64()?;
        match flag {
            0 => Ok(None),
            1 => Ok(Some(value)),
            _ => Err(CheckpointError::Corrupt("bad option flag")),
        }
    }
    fn finish(self) -> Result<(), CheckpointError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes"))
        }
    }
}

impl Tbf {
    /// Serializes the complete detector state.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_TBF);
        w.usize(cfg.n);
        w.usize(cfg.m);
        w.usize(cfg.k);
        w.usize(cfg.c);
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.u64(state.now);
        w.usize(state.clean_next);
        w.words(&state.entry_words);
        w.0
    }

    /// Restores a detector from a [`Tbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_TBF)?;
        let cfg = TbfConfig {
            n: r.usize()?,
            m: r.usize()?,
            k: r.usize()?,
            c: r.usize()?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let now = r.u64()?;
        let clean_next = r.usize()?;
        let entry_words = r.words()?;
        r.finish()?;
        Self::from_checkpoint_parts(cfg, now, clean_next, entry_words)
            .ok_or(CheckpointError::Corrupt("inconsistent TBF state"))
    }
}

impl Gbf {
    /// Serializes the complete detector state.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_GBF);
        w.usize(cfg.n);
        w.usize(cfg.q);
        w.usize(cfg.m);
        w.usize(cfg.k);
        w.u64(cfg.seed);
        w.u8(match cfg.layout {
            GbfLayout::Padded => 0,
            GbfLayout::Tight => 1,
        });
        w.u8(probe_tag(cfg.probe));
        w.usize(state.slot);
        w.usize(state.filled);
        w.u64(state.completed);
        w.u64(state.spare.map_or(u64::MAX, |s| s as u64));
        w.usize(state.clean_next);
        w.words(&state.active_mask);
        w.words(&state.matrix_words);
        w.0
    }

    /// Restores a detector from a [`Gbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_GBF)?;
        let n = r.usize()?;
        let q = r.usize()?;
        let m = r.usize()?;
        let k = r.usize()?;
        let seed = r.u64()?;
        let layout = match r.u8()? {
            0 => GbfLayout::Padded,
            1 => GbfLayout::Tight,
            _ => return Err(CheckpointError::Corrupt("unknown layout tag")),
        };
        let probe = probe_from_tag(r.u8()?)?;
        let cfg = GbfConfig {
            n,
            q,
            m,
            k,
            seed,
            layout,
            probe,
        };
        let slot = r.usize()?;
        let filled = r.usize()?;
        let completed = r.u64()?;
        let spare = match r.u64()? {
            u64::MAX => None,
            s => Some(usize::try_from(s).map_err(|_| CheckpointError::Corrupt("spare"))?),
        };
        let clean_next = r.usize()?;
        let active_mask = r.words()?;
        let matrix_words = r.words()?;
        r.finish()?;
        Self::from_checkpoint_parts(
            cfg,
            slot,
            filled,
            completed,
            spare,
            clean_next,
            active_mask,
            matrix_words,
        )
        .ok_or(CheckpointError::Corrupt("inconsistent GBF state"))
    }
}

impl TimeTbf {
    /// Serializes the complete detector state, including the high-water
    /// unit (so a restart expires state like a quiet gap, not a reset).
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_TIME_TBF);
        w.u64(cfg.window_units);
        w.u64(cfg.unit_ticks);
        w.usize(cfg.m);
        w.usize(cfg.k);
        w.u64(cfg.c_units);
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.opt_u64(state.cur_unit);
        w.usize(state.clean_next);
        w.words(&state.entry_words);
        w.0
    }

    /// Restores a detector from a [`TimeTbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_TIME_TBF)?;
        let cfg = TimeTbfConfig {
            window_units: r.u64()?,
            unit_ticks: r.u64()?,
            m: r.usize()?,
            k: r.usize()?,
            c_units: r.u64()?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let state = TimeTbfState {
            cur_unit: r.opt_u64()?,
            clean_next: r.usize()?,
            entry_words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent time-TBF state"))
    }
}

impl TimeGbf {
    /// Serializes the complete detector state, including the rotation
    /// phase and the in-flight spare-lane wipe cursor.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_TIME_GBF);
        w.usize(cfg.q);
        w.u64(cfg.sub_units);
        w.u64(cfg.unit_ticks);
        w.usize(cfg.m);
        w.usize(cfg.k);
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.opt_u64(state.cur_unit);
        w.usize(state.slot);
        w.u64(state.completed);
        w.u64(state.spare.map_or(u64::MAX, |s| s as u64));
        w.usize(state.clean_next);
        w.words(&state.mask_words);
        w.words(&state.matrix_words);
        w.0
    }

    /// Restores a detector from a [`TimeGbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_TIME_GBF)?;
        let cfg = TimeGbfConfig {
            q: r.usize()?,
            sub_units: r.u64()?,
            unit_ticks: r.u64()?,
            m: r.usize()?,
            k: r.usize()?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let cur_unit = r.opt_u64()?;
        let slot = r.usize()?;
        let completed = r.u64()?;
        let spare = match r.u64()? {
            u64::MAX => None,
            s => Some(usize::try_from(s).map_err(|_| CheckpointError::Corrupt("spare"))?),
        };
        let state = TimeGbfState {
            cur_unit,
            slot,
            completed,
            spare,
            clean_next: r.usize()?,
            mask_words: r.words()?,
            matrix_words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent time-GBF state"))
    }
}

impl Apbf {
    /// Serializes the complete detector state, including the rotation
    /// phase and the in-flight spare-slice wipe cursor.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_APBF);
        w.usize(cfg.n);
        w.usize(cfg.k);
        w.usize(cfg.l);
        w.usize(cfg.total_bits);
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.usize(state.base);
        w.usize(state.in_gen);
        w.u8(u8::from(state.wipe.is_some()));
        let (slice, cursor) = state.wipe.unwrap_or((0, 0));
        w.usize(slice);
        w.usize(cursor);
        w.words(&state.bit_words);
        w.0
    }

    /// Restores a detector from an [`Apbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_APBF)?;
        let cfg = ApbfConfig {
            n: r.usize()?,
            k: r.usize()?,
            l: r.usize()?,
            total_bits: r.usize()?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let base = r.usize()?;
        let in_gen = r.usize()?;
        let wipe_flag = r.u8()?;
        let slice = r.usize()?;
        let cursor = r.usize()?;
        let wipe = match wipe_flag {
            0 => None,
            1 => Some((slice, cursor)),
            _ => return Err(CheckpointError::Corrupt("bad wipe flag")),
        };
        let state = ApbfState {
            base,
            in_gen,
            wipe,
            bit_words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent APBF state"))
    }
}

impl Swbf {
    /// Serializes the complete detector state, including both sweep
    /// cursors and the side-filter liveness bookkeeping.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_SWBF);
        w.usize(cfg.n);
        w.usize(cfg.total_bits);
        w.u64(u64::from(cfg.fingerprint_bits));
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.u64(state.now);
        w.u64(state.arrivals);
        w.opt_u64(state.last_side_insert);
        w.usize(state.clean_next);
        w.usize(state.side_clean_next);
        w.words(&state.cell_words);
        w.words(&state.side_words);
        w.0
    }

    /// Restores a detector from a [`Swbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_SWBF)?;
        let cfg = SwbfConfig {
            n: r.usize()?,
            total_bits: r.usize()?,
            fingerprint_bits: u32::try_from(r.u64()?)
                .map_err(|_| CheckpointError::Corrupt("fingerprint bits"))?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let state = SwbfState {
            now: r.u64()?,
            arrivals: r.u64()?,
            last_side_insert: r.opt_u64()?,
            clean_next: r.usize()?,
            side_clean_next: r.usize()?,
            cell_words: r.words()?,
            side_words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent SWBF state"))
    }
}

/// Detectors whose complete state round-trips through the `CFDS` binary
/// format.
///
/// Implemented by [`Tbf`], [`Gbf`], [`TimeTbf`] and [`TimeGbf`]
/// (delegating to their inherent methods) and generically by
/// [`ShardedDetector`] over any checkpointable shard type, so a sharded
/// gateway restarts with identical future verdicts just like a
/// single-detector one.
pub trait CheckpointState: Sized {
    /// Serializes the complete detector state.
    fn checkpoint(&self) -> Vec<u8>;

    /// Restores a detector from a [`CheckpointState::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError>;
}

impl CheckpointState for Tbf {
    fn checkpoint(&self) -> Vec<u8> {
        Tbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        Tbf::restore(buf)
    }
}

impl CheckpointState for Gbf {
    fn checkpoint(&self) -> Vec<u8> {
        Gbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        Gbf::restore(buf)
    }
}

impl CheckpointState for TimeTbf {
    fn checkpoint(&self) -> Vec<u8> {
        TimeTbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        TimeTbf::restore(buf)
    }
}

impl CheckpointState for TimeGbf {
    fn checkpoint(&self) -> Vec<u8> {
        TimeGbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        TimeGbf::restore(buf)
    }
}

impl JumpingTbf {
    /// Serializes the complete detector state, including the sub-window
    /// clock position and sweep cursor.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_JUMPING_TBF);
        w.usize(cfg.n);
        w.usize(cfg.q);
        w.usize(cfg.m);
        w.usize(cfg.k);
        w.usize(cfg.c_q);
        w.u64(cfg.seed);
        w.u8(probe_tag(cfg.probe));
        w.u64(state.sub_now);
        w.usize(state.slot);
        w.usize(state.filled);
        w.u64(state.completed_subwindows);
        w.usize(state.clean_next);
        w.words(&state.entry_words);
        w.0
    }

    /// Restores a detector from a [`JumpingTbf::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_JUMPING_TBF)?;
        let cfg = JumpingTbfConfig {
            n: r.usize()?,
            q: r.usize()?,
            m: r.usize()?,
            k: r.usize()?,
            c_q: r.usize()?,
            seed: r.u64()?,
            probe: probe_from_tag(r.u8()?)?,
        };
        let state = JumpingTbfState {
            sub_now: r.u64()?,
            slot: r.usize()?,
            filled: r.usize()?,
            completed_subwindows: r.u64()?,
            clean_next: r.usize()?,
            entry_words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent jumping-TBF state"))
    }
}

impl CheckpointState for JumpingTbf {
    fn checkpoint(&self) -> Vec<u8> {
        JumpingTbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        JumpingTbf::restore(buf)
    }
}

impl CheckpointState for Apbf {
    fn checkpoint(&self) -> Vec<u8> {
        Apbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        Apbf::restore(buf)
    }
}

impl CheckpointState for Swbf {
    fn checkpoint(&self) -> Vec<u8> {
        Swbf::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        Swbf::restore(buf)
    }
}

impl TenantArena {
    /// Serializes the whole arena: shared tenant geometry, global decay
    /// clock, every live tenant's meta, the free-slot stack, and the
    /// slab words. The prefix→slot map is *not* serialized — restore
    /// re-derives it from the metas.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, state) = self.checkpoint_parts();
        let mut w = Writer::new(KIND_ARENA);
        w.usize(cfg.tenant_window);
        w.usize(cfg.tenant_entries);
        w.usize(cfg.hash_count);
        w.u64(cfg.seed);
        w.usize(cfg.initial_slots);
        w.opt_u64(cfg.idle_eviction);
        w.u8(probe_tag(cfg.probe));
        w.u64(state.arrivals);
        w.u64(state.scan_cursor);
        w.u64(state.evictions);
        w.u64(state.slots);
        for meta in &state.metas {
            match meta {
                None => w.u8(0),
                Some((prefix, now, clean_next, last_touch)) => {
                    w.u8(1);
                    w.u64(*prefix);
                    w.u64(*now);
                    w.u64(*clean_next);
                    w.u64(*last_touch);
                }
            }
        }
        w.words(&state.free);
        w.words(&state.words);
        w.0
    }

    /// Restores an arena from a [`TenantArena::checkpoint`] buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input.
    pub fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_ARENA)?;
        let mut cfg = ArenaConfig::new(r.usize()?, r.usize()?, r.usize()?, r.u64()?)
            .with_initial_slots(r.usize()?);
        cfg.idle_eviction = r.opt_u64()?;
        cfg.probe = probe_from_tag(r.u8()?)?;
        let arrivals = r.u64()?;
        let scan_cursor = r.u64()?;
        let evictions = r.u64()?;
        let slots = r.u64()?;
        let mut metas = Vec::new();
        for _ in 0..slots {
            metas.push(match r.u8()? {
                0 => None,
                1 => Some((r.u64()?, r.u64()?, r.u64()?, r.u64()?)),
                _ => return Err(CheckpointError::Corrupt("bad tenant liveness flag")),
            });
        }
        let state = ArenaState {
            arrivals,
            scan_cursor,
            evictions,
            slots,
            metas,
            free: r.words()?,
            words: r.words()?,
        };
        r.finish()?;
        Self::from_checkpoint_parts(cfg, state)
            .ok_or(CheckpointError::Corrupt("inconsistent arena state"))
    }
}

impl CheckpointState for TenantArena {
    fn checkpoint(&self) -> Vec<u8> {
        TenantArena::checkpoint(self)
    }
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        TenantArena::restore(buf)
    }
}

impl<D: CheckpointState> CheckpointState for ShardedDetector<D> {
    /// Format: header (kind 3) | router seed | shard count |
    /// length-prefixed per-shard `CFDS` blobs, in router order.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_SHARDED);
        w.u64(self.router_seed());
        w.usize(self.shard_count());
        for shard in self.shards() {
            w.bytes(&shard.checkpoint());
        }
        w.0
    }

    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::open(buf, KIND_SHARDED)?;
        let router_seed = r.u64()?;
        let count = r.usize()?;
        if count == 0 || count > MAX_SHARDS {
            return Err(CheckpointError::Corrupt("shard count out of range"));
        }
        let shards = (0..count)
            .map(|_| D::restore(r.bytes()?))
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        ShardedDetector::new(router_seed, shards)
            .map_err(|_| CheckpointError::Corrupt("inconsistent sharded state"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::DuplicateDetector;

    fn tbf() -> Tbf {
        Tbf::new(
            TbfConfig::builder(512)
                .entries(2_048)
                .hash_count(5)
                .seed(7)
                .build()
                .expect("cfg"),
        )
        .expect("detector")
    }

    fn gbf(layout: GbfLayout) -> Gbf {
        Gbf::new(
            GbfConfig::builder(512, 8)
                .filter_bits(1_024)
                .hash_count(5)
                .seed(7)
                .layout(layout)
                .build()
                .expect("cfg"),
        )
        .expect("detector")
    }

    #[test]
    fn tbf_roundtrip_preserves_every_future_verdict() {
        let mut original = tbf();
        for i in 0..5_000u64 {
            original.observe(&(i % 700).to_le_bytes());
        }
        let buf = original.checkpoint();
        let mut restored = Tbf::restore(&buf).expect("valid checkpoint");
        for i in 5_000..15_000u64 {
            let key = (i % 700).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    #[test]
    fn gbf_roundtrip_preserves_every_future_verdict_both_layouts() {
        for layout in [GbfLayout::Padded, GbfLayout::Tight] {
            let mut original = gbf(layout);
            for i in 0..5_000u64 {
                original.observe(&(i % 700).to_le_bytes());
            }
            let buf = original.checkpoint();
            let mut restored = Gbf::restore(&buf).expect("valid checkpoint");
            for i in 5_000..15_000u64 {
                let key = (i % 700).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "layout {layout:?}, i={i}"
                );
            }
        }
    }

    #[test]
    fn blocked_probe_layout_survives_roundtrip() {
        // The probe byte must restore the blocked geometry, or every
        // future probe would read different cells than the original.
        let mut original = Tbf::new(
            TbfConfig::builder(512)
                .entries(8_192)
                .hash_count(5)
                .seed(7)
                .probe(ProbeLayout::Blocked)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        for i in 0..5_000u64 {
            original.observe(&(i % 700).to_le_bytes());
        }
        let buf = original.checkpoint();
        let mut restored = Tbf::restore(&buf).expect("valid checkpoint");
        assert_eq!(restored.config().probe, ProbeLayout::Blocked);
        for i in 5_000..15_000u64 {
            let key = (i % 700).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }

        for layout in [GbfLayout::Padded, GbfLayout::Tight] {
            let mut original = Gbf::new(
                GbfConfig::builder(512, 8)
                    .filter_bits(4_096)
                    .hash_count(5)
                    .seed(7)
                    .layout(layout)
                    .probe(ProbeLayout::Blocked)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector");
            for i in 0..5_000u64 {
                original.observe(&(i % 700).to_le_bytes());
            }
            let buf = original.checkpoint();
            let mut restored = Gbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, ProbeLayout::Blocked);
            for i in 5_000..15_000u64 {
                let key = (i % 700).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "layout {layout:?}, i={i}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_mid_cleaning_is_faithful() {
        // Snapshot right after a rotation, while the spare lane wipe is
        // in progress: the wipe pointer must survive the roundtrip.
        let mut original = gbf(GbfLayout::Padded);
        for i in 0..65u64 {
            original.observe(&i.to_le_bytes()); // 64 = one sub-window
        }
        let buf = original.checkpoint();
        let mut restored = Gbf::restore(&buf).expect("valid checkpoint");
        for i in 65..3_000u64 {
            let key = (i % 90).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    #[test]
    fn rejects_malformed_buffers() {
        assert!(matches!(
            Tbf::restore(b"nope"),
            Err(CheckpointError::BadMagic)
        ));
        let mut buf = tbf().checkpoint();
        buf[4] = 0xFF;
        assert!(matches!(
            Tbf::restore(&buf),
            Err(CheckpointError::BadVersion(_))
        ));
        let buf = tbf().checkpoint();
        assert!(matches!(
            Gbf::restore(&buf),
            Err(CheckpointError::WrongKind { .. })
        ));
        let mut buf = tbf().checkpoint();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            Tbf::restore(&buf),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut buf = tbf().checkpoint();
        buf.push(0);
        assert!(matches!(
            Tbf::restore(&buf),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn errors_display() {
        assert!(CheckpointError::BadMagic.to_string().contains("CFDS"));
        assert!(CheckpointError::WrongKind {
            found: 2,
            expected: 1
        }
        .to_string()
        .contains('2'));
    }

    fn sharded_tbf() -> ShardedDetector<Tbf> {
        ShardedDetector::from_fn(17, 4, |_| {
            Tbf::new(
                TbfConfig::builder(128)
                    .entries(2_048)
                    .hash_count(5)
                    .seed(7)
                    .build()
                    .expect("cfg"),
            )
        })
        .expect("sharded")
    }

    #[test]
    fn sharded_roundtrip_preserves_every_future_verdict() {
        let mut original = sharded_tbf();
        for i in 0..5_000u64 {
            original.observe(&(i % 700).to_le_bytes());
        }
        let buf = CheckpointState::checkpoint(&original);
        let mut restored =
            <ShardedDetector<Tbf> as CheckpointState>::restore(&buf).expect("valid checkpoint");
        assert_eq!(restored.shard_count(), 4);
        for i in 5_000..15_000u64 {
            let key = (i % 700).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    #[test]
    fn sharded_gbf_roundtrip() {
        let mut original: ShardedDetector<Gbf> = ShardedDetector::from_fn(3, 2, |_| {
            Gbf::new(
                GbfConfig::builder(256, 8)
                    .filter_bits(1_024)
                    .hash_count(5)
                    .seed(9)
                    .build()
                    .expect("cfg"),
            )
        })
        .expect("sharded");
        for i in 0..2_000u64 {
            original.observe(&(i % 300).to_le_bytes());
        }
        let buf = CheckpointState::checkpoint(&original);
        let mut restored =
            <ShardedDetector<Gbf> as CheckpointState>::restore(&buf).expect("valid checkpoint");
        for i in 2_000..6_000u64 {
            let key = (i % 300).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    // ---- time-based detectors ------------------------------------------

    use cfd_windows::{TimedDuplicateDetector, Verdict};

    /// Irregular ticks with occasional regressions, cyclic keys.
    fn timed_stream(range: std::ops::Range<u64>) -> impl Iterator<Item = ([u8; 8], u64)> {
        let mut tick = range.start * 5;
        range.map(move |i| {
            tick += (i * 7 + 3) % 11;
            if i % 97 == 96 {
                tick = tick.saturating_sub(25);
            }
            ((i % 700).to_le_bytes(), tick)
        })
    }

    fn time_tbf() -> TimeTbf {
        TimeTbf::new(TimeTbfConfig::new(32, 10, 2_048, 5, 7).expect("cfg")).expect("detector")
    }

    fn time_gbf() -> TimeGbf {
        TimeGbf::new(TimeGbfConfig::new(6, 5, 10, 1_024, 4, 7).expect("cfg")).expect("detector")
    }

    #[test]
    fn time_tbf_roundtrip_preserves_every_future_verdict() {
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let cfg = TimeTbfConfig::new(32, 10, 2_048, 5, 7)
                .and_then(|c| c.with_probe(probe))
                .expect("cfg");
            let mut original = TimeTbf::new(cfg).expect("detector");
            for (key, tick) in timed_stream(0..5_000) {
                original.observe_at(&key, tick);
            }
            let buf = original.checkpoint();
            let mut restored = TimeTbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, probe);
            for (key, tick) in timed_stream(5_000..15_000) {
                assert_eq!(
                    original.observe_at(&key, tick),
                    restored.observe_at(&key, tick),
                    "probe {probe:?}, tick {tick}"
                );
            }
        }
    }

    #[test]
    fn time_gbf_roundtrip_preserves_every_future_verdict() {
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let cfg = TimeGbfConfig::new(6, 5, 10, 1_024, 4, 7)
                .and_then(|c| c.with_probe(probe))
                .expect("cfg");
            let mut original = TimeGbf::new(cfg).expect("detector");
            for (key, tick) in timed_stream(0..5_000) {
                original.observe_at(&key, tick);
            }
            let buf = original.checkpoint();
            let mut restored = TimeGbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, probe);
            for (key, tick) in timed_stream(5_000..15_000) {
                assert_eq!(
                    original.observe_at(&key, tick),
                    restored.observe_at(&key, tick),
                    "probe {probe:?}, tick {tick}"
                );
            }
        }
    }

    #[test]
    fn time_gbf_checkpoint_mid_wipe_is_faithful() {
        // Snapshot right after a rotation starts a spare-lane wipe: the
        // wipe cursor must survive the roundtrip, or restored cleaning
        // would fall behind and leave stale bits.
        let mut original = time_gbf();
        for u in 0..6u64 {
            original.observe_at(&u.to_le_bytes(), u * 10); // one obs per unit
        }
        // Crossing into unit 5*... triggers rotations; wipe in flight.
        let buf = original.checkpoint();
        let mut restored = TimeGbf::restore(&buf).expect("valid checkpoint");
        for (key, tick) in timed_stream(6..4_000) {
            assert_eq!(
                original.observe_at(&key, tick),
                restored.observe_at(&key, tick),
                "tick {tick}"
            );
        }
    }

    #[test]
    fn time_tbf_high_water_at_u64_max_roundtrips() {
        // With unit_ticks == 1 the high-water unit can legitimately be
        // u64::MAX; the flag-byte encoding must not confuse it with the
        // never-observed state.
        let mut original =
            TimeTbf::new(TimeTbfConfig::new(32, 1, 256, 3, 7).expect("cfg")).expect("detector");
        original.observe_at(b"edge", u64::MAX);
        let buf = original.checkpoint();
        let mut restored = TimeTbf::restore(&buf).expect("valid checkpoint");
        assert_eq!(restored.observe_at(b"edge", u64::MAX), Verdict::Duplicate);
        // And a fresh detector's None survives too.
        let fresh = time_tbf();
        let restored_fresh = TimeTbf::restore(&fresh.checkpoint()).expect("valid checkpoint");
        assert_eq!(restored_fresh.checkpoint(), fresh.checkpoint());
    }

    #[test]
    fn timed_restores_reject_malformed_buffers() {
        // Every truncation must fail cleanly, never panic or OOM.
        let mut d = time_tbf();
        for (key, tick) in timed_stream(0..1_000) {
            d.observe_at(&key, tick);
        }
        let full = d.checkpoint();
        for cut in (0..full.len()).step_by(97) {
            assert!(
                TimeTbf::restore(&full[..cut]).is_err(),
                "tbf truncation at {cut} accepted"
            );
        }
        let mut g = time_gbf();
        for (key, tick) in timed_stream(0..1_000) {
            g.observe_at(&key, tick);
        }
        let full = g.checkpoint();
        for cut in (0..full.len()).step_by(97) {
            assert!(
                TimeGbf::restore(&full[..cut]).is_err(),
                "gbf truncation at {cut} accepted"
            );
        }
        // Kind confusion between the timed pair is rejected.
        assert!(matches!(
            TimeGbf::restore(&time_tbf().checkpoint()),
            Err(CheckpointError::WrongKind {
                found: 4,
                expected: 5
            })
        ));
        // A corrupt option flag is rejected (flag byte is right after
        // the 7-byte header + 49 config bytes for time-TBF).
        let mut bad_flag = time_tbf().checkpoint();
        bad_flag[7 + 49] = 2;
        assert!(matches!(
            TimeTbf::restore(&bad_flag),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn timed_sharded_roundtrip_preserves_every_future_verdict() {
        let mut original: ShardedDetector<TimeTbf> = ShardedDetector::from_fn(17, 4, |_| {
            TimeTbf::new(TimeTbfConfig::new(32, 10, 2_048, 5, 7)?)
        })
        .expect("sharded");
        for (key, tick) in timed_stream(0..5_000) {
            original.observe_at(&key, tick);
        }
        let buf = CheckpointState::checkpoint(&original);
        let mut restored =
            <ShardedDetector<TimeTbf> as CheckpointState>::restore(&buf).expect("valid checkpoint");
        assert_eq!(restored.shard_count(), 4);
        for (key, tick) in timed_stream(5_000..15_000) {
            assert_eq!(
                original.observe_at(&key, tick),
                restored.observe_at(&key, tick),
                "tick {tick}"
            );
        }
    }

    #[test]
    fn sharded_rejects_malformed_buffers() {
        type Sharded = ShardedDetector<Tbf>;
        assert!(matches!(
            <Sharded as CheckpointState>::restore(b"junk"),
            Err(CheckpointError::BadMagic)
        ));
        // A plain TBF checkpoint is the wrong kind.
        assert!(matches!(
            <Sharded as CheckpointState>::restore(&tbf().checkpoint()),
            Err(CheckpointError::WrongKind {
                found: 1,
                expected: 3
            })
        ));
        let full = CheckpointState::checkpoint(&sharded_tbf());
        // Every truncation must fail cleanly, never panic or OOM.
        for cut in (0..full.len()).step_by(97) {
            assert!(
                <Sharded as CheckpointState>::restore(&full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Trailing garbage is rejected.
        let mut extended = full.clone();
        extended.extend_from_slice(&[0xAB; 9]);
        assert!(<Sharded as CheckpointState>::restore(&extended).is_err());
        // An absurd shard count in the header is rejected before any
        // allocation (offset 7 header + 8 seed = count field at 15).
        let mut bad_count = full;
        bad_count[15..23].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            <Sharded as CheckpointState>::restore(&bad_count),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn jumping_tbf_roundtrip_preserves_every_future_verdict() {
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let cfg = crate::tbf_jumping::JumpingTbfConfig::new(512, 64, 8_192, 5, 7)
                .and_then(|c| c.with_probe(probe))
                .expect("cfg");
            let mut original = JumpingTbf::new(cfg).expect("detector");
            // Stop mid-sub-window so the clock phase is non-trivial.
            for i in 0..5_003u64 {
                original.observe(&(i % 700).to_le_bytes());
            }
            let buf = original.checkpoint();
            let mut restored = JumpingTbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, probe);
            for i in 5_003..15_000u64 {
                let key = (i % 700).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "probe {probe:?}, i={i}"
                );
            }
            // Truncations fail cleanly.
            for cut in (0..buf.len()).step_by(97) {
                assert!(
                    JumpingTbf::restore(&buf[..cut]).is_err(),
                    "truncation at {cut} accepted"
                );
            }
        }
    }

    // ---- APBF / SWBF ---------------------------------------------------

    fn apbf(probe: ProbeLayout) -> Apbf {
        Apbf::new(ApbfConfig::for_budget(512, 512 * 24, 7, probe).expect("cfg")).expect("detector")
    }

    fn swbf(probe: ProbeLayout) -> Swbf {
        Swbf::new(SwbfConfig::for_budget(512, 512 * 48, 7, probe).expect("cfg")).expect("detector")
    }

    #[test]
    fn apbf_roundtrip_preserves_every_future_verdict() {
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let mut original = apbf(probe);
            // Stop mid-generation so base/in_gen/wipe are all non-trivial.
            for i in 0..5_003u64 {
                original.observe(&(i % 700).to_le_bytes());
            }
            let buf = original.checkpoint();
            let mut restored = Apbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, probe);
            for i in 5_003..15_000u64 {
                let key = (i % 700).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "probe {probe:?}, i={i}"
                );
            }
        }
    }

    #[test]
    fn swbf_roundtrip_preserves_every_future_verdict() {
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let mut original = swbf(probe);
            for i in 0..5_003u64 {
                original.observe(&(i % 700).to_le_bytes());
            }
            let buf = original.checkpoint();
            let mut restored = Swbf::restore(&buf).expect("valid checkpoint");
            assert_eq!(restored.config().probe, probe);
            for i in 5_003..15_000u64 {
                let key = (i % 700).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "probe {probe:?}, i={i}"
                );
            }
        }
    }

    #[test]
    fn swbf_roundtrip_preserves_side_filter_state() {
        // Crowd a tiny filter until inserts spill into the side filter,
        // then checkpoint: side table and liveness stamp must survive.
        let mut original =
            Swbf::new(SwbfConfig::for_budget(128, 2_048, 7, ProbeLayout::Scattered).expect("cfg"))
                .expect("detector");
        for i in 0..2_000u64 {
            original.observe(&i.to_le_bytes());
        }
        assert!(
            original.side_inserted(),
            "crowding should hit the side path"
        );
        let buf = original.checkpoint();
        let mut restored = Swbf::restore(&buf).expect("valid checkpoint");
        for i in 2_000..6_000u64 {
            let key = (i % 160).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    #[test]
    fn apbf_swbf_reject_malformed_buffers() {
        // Kind confusion between the two new backends is rejected.
        assert!(matches!(
            Swbf::restore(&apbf(ProbeLayout::Scattered).checkpoint()),
            Err(CheckpointError::WrongKind {
                found: 6,
                expected: 7
            })
        ));
        assert!(matches!(
            Apbf::restore(&swbf(ProbeLayout::Scattered).checkpoint()),
            Err(CheckpointError::WrongKind {
                found: 7,
                expected: 6
            })
        ));
        // Every truncation must fail cleanly, never panic or OOM.
        let mut a = apbf(ProbeLayout::Scattered);
        let mut s = swbf(ProbeLayout::Scattered);
        for i in 0..1_000u64 {
            a.observe(&i.to_le_bytes());
            s.observe(&i.to_le_bytes());
        }
        let full = a.checkpoint();
        for cut in (0..full.len()).step_by(97) {
            assert!(
                Apbf::restore(&full[..cut]).is_err(),
                "apbf truncation at {cut} accepted"
            );
        }
        let full = s.checkpoint();
        for cut in (0..full.len()).step_by(97) {
            assert!(
                Swbf::restore(&full[..cut]).is_err(),
                "swbf truncation at {cut} accepted"
            );
        }
        // A corrupt wipe flag is rejected (flag byte sits after the
        // 7-byte header, 4 usize config fields + seed + probe byte, and
        // base/in_gen).
        let mut bad_flag = a.checkpoint();
        bad_flag[7 + 4 * 8 + 8 + 1 + 2 * 8] = 3;
        assert!(matches!(
            Apbf::restore(&bad_flag),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn arena_roundtrip_preserves_every_future_verdict() {
        use crate::arena::{ArenaConfig, TenantArena};
        let mut original = TenantArena::new(
            ArenaConfig::new(64, 512, 4, 7)
                .with_initial_slots(2)
                .with_idle_eviction(4_096),
        )
        .expect("arena");
        let key = |i: u64| {
            let mut k = (i % 37).to_le_bytes().to_vec();
            k.extend_from_slice(&(i % 300).to_le_bytes());
            k
        };
        for i in 0..5_000u64 {
            original.observe(&key(i));
        }
        let buf = original.checkpoint();
        assert_eq!(peek_kind(&buf), Ok(KIND_ARENA));
        let mut restored = TenantArena::restore(&buf).expect("valid checkpoint");
        assert_eq!(original.memory_bits(), restored.memory_bits());
        assert_eq!(original.live_tenants(), restored.live_tenants());
        for i in 5_000..15_000u64 {
            assert_eq!(
                original.observe(&key(i)),
                restored.observe(&key(i)),
                "i={i}"
            );
        }
    }

    #[test]
    fn arena_restore_rejects_malformed_buffers() {
        use crate::arena::{ArenaConfig, TenantArena};
        let mut a = TenantArena::new(ArenaConfig::new(64, 512, 4, 7)).expect("arena");
        for i in 0..2_000u64 {
            a.observe(&(i % 90).to_le_bytes());
        }
        let full = a.checkpoint();
        for cut in (0..full.len()).step_by(97) {
            assert!(
                TenantArena::restore(&full[..cut]).is_err(),
                "arena truncation at {cut} accepted"
            );
        }
        // A corrupt tenant liveness flag is rejected (first flag byte
        // sits after the 7-byte header, 4 usize + seed config fields,
        // the idle option, the probe byte, and 4 u64 globals).
        let mut bad_flag = full.clone();
        bad_flag[7 + 4 * 8 + 8 + 9 + 1 + 4 * 8] = 9;
        assert!(matches!(
            TenantArena::restore(&bad_flag),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            Tbf::restore(&full),
            Err(CheckpointError::WrongKind {
                found: KIND_ARENA,
                expected: KIND_TBF
            })
        ));
    }

    #[test]
    fn peek_kind_reads_the_backend_tag() {
        assert_eq!(peek_kind(&tbf().checkpoint()), Ok(KIND_TBF));
        assert_eq!(
            peek_kind(&apbf(ProbeLayout::Scattered).checkpoint()),
            Ok(KIND_APBF)
        );
        assert_eq!(
            peek_kind(&swbf(ProbeLayout::Scattered).checkpoint()),
            Ok(KIND_SWBF)
        );
        assert_eq!(peek_kind(b"junk"), Err(CheckpointError::BadMagic));
        let mut buf = tbf().checkpoint();
        buf[5] = 0xEE;
        assert!(matches!(
            peek_kind(&buf),
            Err(CheckpointError::BadVersion(_))
        ));
    }
}
