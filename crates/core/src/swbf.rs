//! The SWBF backend: a dictionary-based sliding-window Bloom filter
//! (after Naor & Yogev, "Sliding Bloom Filters").
//!
//! Where Bloom-style backends smear each element across `k` shared
//! bits, the SWBF stores each element in **one cell** of a packed
//! dictionary: a cell holds an `f`-bit fingerprint next to a wraparound
//! timestamp (the TBF's timestamp discipline, all-ones = empty). An
//! element hashes to `b` candidate cells; it is a duplicate iff some
//! candidate holds its fingerprint with an in-window timestamp. A
//! distinct element claims the first empty-or-expired candidate —
//! active cells are **never overwritten**, so an element inserted into
//! the dictionary stays queryable for its full window: zero false
//! negatives by construction, with false positives only from
//! fingerprint collisions (`≈ b·load·2⁻ᶠ`).
//!
//! When all `b` candidates are active (a crowd of recent elements), the
//! element overflows into a small **side filter** — a plain timestamp
//! mini-TBF probed with independent hashes. The side path preserves
//! zero false negatives (timestamp overwrites only refresh activity)
//! and adds a second FP term gated by the overflow probability
//! (`load^b · side_load^k`). An absolute arrival counter lets queries
//! skip the side filter entirely once every side insertion has aged
//! out of the window — the common case for well-sized tables.
//!
//! Both tables expire entries with the TBF's incremental sweep (range
//! `2N−1`, quota `⌈m/N⌉` cells per arrival), so maintenance is O(1)
//! amortized and timestamps never alias.

use crate::backend::{self, BatchBufs, CountCore, ProbeCore};
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::words::bits_for_value;
use cfd_bits::PackedIntVec;
use cfd_hash::mix::splitmix64;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, HashPair, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec, WrapCounter};
use std::cell::Cell;

/// Candidate cells probed per element in the main dictionary.
const B_CANDIDATES: usize = 4;

/// Probes per element in the side mini-TBF.
const K_SIDE: usize = 4;

/// Fraction of the budget (as a divisor) given to the side filter.
const SIDE_DIVISOR: usize = 32;

/// Validated SWBF shape. [`SwbfConfig::for_budget`] derives the
/// fingerprint width and cell counts from a memory budget; [`Swbf::new`]
/// validates the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwbfConfig {
    /// Sliding-window length in arrivals (`N`).
    pub n: usize,
    /// Total memory budget in bits (main dictionary + side filter).
    pub total_bits: usize,
    /// Fingerprint bits per cell ([`SwbfConfig::for_budget`] searches
    /// this for the lowest modeled false-positive rate).
    pub fingerprint_bits: u32,
    /// Hash seed shared with every detector of the same family.
    pub seed: u64,
    /// Probe derivation layout for the main dictionary (the side
    /// filter is always scattered).
    pub probe: ProbeLayout,
}

impl SwbfConfig {
    /// Derives an SWBF shape from a memory budget: `1/32` of the budget
    /// funds the side filter; the fingerprint width is searched over
    /// `8..=24` bits for the lowest modeled false-positive rate.
    ///
    /// Wider fingerprints shrink the collision term `b·load·2⁻ᶠ` but
    /// leave fewer cells, raising the load — and with it the overflow
    /// rate `load^b` that feeds (and can saturate) the side filter,
    /// whose own term `side_load^k` is *not* gated by the main load at
    /// query time. The search balances the two; it is deterministic for
    /// fixed inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WindowTooSmall`] for `n < 2` and
    /// [`ConfigError::MemoryTooSmall`] when no searched width can fund
    /// the minimum candidate and side-probe counts.
    pub fn for_budget(
        n: usize,
        total_bits: usize,
        seed: u64,
        probe: ProbeLayout,
    ) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::WindowTooSmall(n));
        }
        let probe_cfg = |f: u32| Self {
            n,
            total_bits,
            fingerprint_bits: f,
            seed,
            probe,
        };
        let mut best: Option<(f64, u32)> = None;
        for f in 8..=24u32 {
            let cfg = probe_cfg(f);
            if cfg.validate().is_err() {
                continue;
            }
            let load = (n as f64 / cfg.cells() as f64).min(1.0);
            let collision = B_CANDIDATES as f64 * load * 0.5f64.powi(f as i32);
            // Expected active side stamps: overflow rate × window × probes.
            let stamps = K_SIDE as f64 * load.powi(B_CANDIDATES as i32) * n as f64;
            let side_load = 1.0 - (-stamps / cfg.side_cells() as f64).exp();
            let fp = collision + side_load.powi(K_SIDE as i32);
            if best.is_none_or(|(bf, _)| fp < bf) {
                best = Some((fp, f));
            }
        }
        let (_, f) = best.ok_or(ConfigError::MemoryTooSmall {
            provided: total_bits,
            required: (B_CANDIDATES * (8 + bits_for_value(2 * n as u64 - 1) as usize)
                + K_SIDE * bits_for_value(2 * n as u64 - 1) as usize)
                * 2,
        })?;
        Ok(probe_cfg(f))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::WindowTooSmall(self.n));
        }
        if !(1..=40).contains(&self.fingerprint_bits) || self.cell_bits() > 64 {
            return Err(ConfigError::BadHashCount(self.fingerprint_bits as usize));
        }
        if self.cells() < B_CANDIDATES || self.side_cells() < K_SIDE {
            return Err(ConfigError::MemoryTooSmall {
                provided: self.total_bits,
                required: (B_CANDIDATES * self.cell_bits() as usize
                    + K_SIDE * self.ts_bits() as usize)
                    * SIDE_DIVISOR,
            });
        }
        Ok(())
    }

    /// Wraparound timestamp range `2N − 1` (the TBF's default `C = N−1`
    /// slack, so the proven sweep schedule transfers unchanged).
    #[must_use]
    pub fn range(&self) -> u64 {
        2 * self.n as u64 - 1
    }

    /// Bits per timestamp; the all-ones value is the empty sentinel and
    /// exceeds every valid timestamp.
    #[must_use]
    pub fn ts_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Bits given to the side filter.
    #[must_use]
    pub fn side_bits(&self) -> usize {
        self.total_bits / SIDE_DIVISOR
    }

    /// Bits per main-dictionary cell (`fingerprint + timestamp`).
    #[must_use]
    pub fn cell_bits(&self) -> u32 {
        self.fingerprint_bits + self.ts_bits()
    }

    /// Main-dictionary cell count.
    #[must_use]
    pub fn cells(&self) -> usize {
        (self.total_bits - self.side_bits()) / self.cell_bits() as usize
    }

    /// Side-filter entry count.
    #[must_use]
    pub fn side_cells(&self) -> usize {
        self.side_bits() / self.ts_bits() as usize
    }
}

/// Dynamic SWBF state captured by a checkpoint.
pub(crate) struct SwbfState {
    pub now: u64,
    pub arrivals: u64,
    pub last_side_insert: Option<u64>,
    pub clean_next: usize,
    pub side_clean_next: usize,
    pub cell_words: Vec<u64>,
    pub side_words: Vec<u64>,
}

/// Dictionary-based sliding-window Bloom-filter duplicate detector over
/// count-based windows.
///
/// ```rust
/// use cfd_core::{Swbf, SwbfConfig, ProbeLayout};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// let cfg = SwbfConfig::for_budget(1 << 12, 1 << 20, 7, ProbeLayout::Scattered)?;
/// let mut d = Swbf::new(cfg)?;
/// assert_eq!(d.observe(b"198.51.100.4|beef|ad-3"), Verdict::Distinct);
/// assert_eq!(d.observe(b"198.51.100.4|beef|ad-3"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Swbf {
    cfg: SwbfConfig,
    /// Main dictionary: `fingerprint << ts_bits | timestamp` per cell.
    cells: PackedIntVec,
    /// Side mini-TBF: timestamps only.
    side: PackedIntVec,
    wrap: WrapCounter,
    family: DoubleHashFamily,
    ts_bits: u32,
    ts_mask: u64,
    empty_cell: u64,
    side_empty: u64,
    /// Incremental sweep cursors and per-arrival quotas.
    clean_next: usize,
    quota: usize,
    side_clean_next: usize,
    side_quota: usize,
    /// Absolute arrivals processed (side-skip bookkeeping).
    arrivals: u64,
    /// Arrival index of the most recent side insertion, if any.
    last_side_insert: Option<u64>,
    /// Duplicates observed (insert width varies, so this is tracked
    /// directly rather than derived from op counters).
    dups: u64,
    /// Elements that overflowed into the side filter (diagnostics).
    side_distinct: u64,
    ops: OpCounters,
    bufs: BatchBufs,
    /// Blocked-probe geometry for the main dictionary; `None` scattered.
    geo: Option<BlockGeometry>,
    /// Candidates actually probed: `B_CANDIDATES`, saturation-capped in
    /// blocked mode.
    b_eff: usize,
    /// `O(m)` occupancy scans performed (snapshot-cadence only).
    scans: Cell<u64>,
}

impl Swbf {
    /// Creates a detector from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the shape is invalid — window or
    /// budget too small, or blocked probing unsupported for the cell
    /// width.
    pub fn new(cfg: SwbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let m = cfg.cells();
        let cell_bits = cfg.cell_bits();
        let geo = match cfg.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => Some(BlockGeometry::for_line(m, cell_bits as usize).ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cell_bits as usize,
                    m,
                },
            )?),
        };
        let b_eff = backend::effective_k(B_CANDIDATES, geo.as_ref());
        let cells = PackedIntVec::new_all_ones(m, cell_bits);
        let side = PackedIntVec::new_all_ones(cfg.side_cells(), cfg.ts_bits());
        let ts_bits = cfg.ts_bits();
        Ok(Self {
            empty_cell: cells.max_value(),
            side_empty: side.max_value(),
            wrap: WrapCounter::new(cfg.range()),
            family: DoubleHashFamily::new(cfg.seed),
            ts_bits,
            ts_mask: (1u64 << ts_bits) - 1,
            clean_next: 0,
            quota: m.div_ceil(cfg.n),
            side_clean_next: 0,
            side_quota: cfg.side_cells().div_ceil(cfg.n),
            arrivals: 0,
            last_side_insert: None,
            dups: 0,
            side_distinct: 0,
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            geo,
            b_eff,
            scans: Cell::new(0),
            cells,
            side,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> SwbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// The sliding window in elements (`N`).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.cfg.n
    }

    /// Candidate cells actually probed per element.
    #[must_use]
    pub fn effective_candidates(&self) -> usize {
        self.b_eff
    }

    /// Elements routed to the side filter so far.
    #[must_use]
    pub fn side_inserts(&self) -> u64 {
        self.side_distinct
    }

    /// `true` once any element has overflowed into the side filter.
    #[must_use]
    pub fn side_inserted(&self) -> bool {
        self.side_distinct > 0
    }

    #[inline]
    fn is_active(&self, t: u64) -> bool {
        self.wrap.is_active(t, self.cfg.n as u64 - 1)
    }

    /// `f`-bit fingerprint from a remix of the pair, independent of the
    /// candidate-index derivation (and of the blocked line pick, which
    /// mixes the halves in the opposite order).
    #[inline]
    fn fingerprint(&self, pair: HashPair) -> u64 {
        splitmix64(pair.h2 ^ pair.h1.rotate_left(32)) & ((1u64 << self.cfg.fingerprint_bits) - 1)
    }

    /// Side-filter probe indices from an independent remix of the pair.
    #[inline]
    fn side_probes(&self, pair: HashPair) -> [usize; K_SIDE] {
        let h1 = splitmix64(pair.h1 ^ 0x9E37_79B9_7F4A_7C15);
        let stride = splitmix64(pair.h2 ^ 0xD1B5_4A32_D192_ED03) | 1;
        let m = self.side.len() as u64;
        let mut out = [0usize; K_SIDE];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (h1.wrapping_add((i as u64).wrapping_mul(stride)) % m) as usize;
        }
        out
    }

    /// `true` while some side insertion may still be inside the window,
    /// so side queries cannot be skipped.
    #[inline]
    fn side_live(&self) -> bool {
        self.last_side_insert
            .is_some_and(|t| self.arrivals - t < self.cfg.n as u64)
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (SwbfConfig, SwbfState) {
        (
            self.cfg,
            SwbfState {
                now: self.wrap.now(),
                arrivals: self.arrivals,
                last_side_insert: self.last_side_insert,
                clean_next: self.clean_next,
                side_clean_next: self.side_clean_next,
                cell_words: self.cells.as_words().to_vec(),
                side_words: self.side.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(cfg: SwbfConfig, state: SwbfState) -> Option<Self> {
        let mut d = Self::new(cfg).ok()?;
        if state.clean_next >= cfg.cells() || state.side_clean_next >= cfg.side_cells() {
            return None;
        }
        if let Some(t) = state.last_side_insert {
            if t > state.arrivals {
                return None;
            }
        }
        d.wrap = WrapCounter::from_parts(cfg.range(), state.now)?;
        d.cells = PackedIntVec::from_words(state.cell_words, cfg.cells(), cfg.cell_bits())?;
        d.side = PackedIntVec::from_words(state.side_words, cfg.side_cells(), cfg.ts_bits())?;
        d.arrivals = state.arrivals;
        d.last_side_insert = state.last_side_insert;
        d.clean_next = state.clean_next;
        d.side_clean_next = state.side_clean_next;
        Some(d)
    }

    /// Incremental expiry sweep over both tables: `⌈m/N⌉` cells per
    /// arrival each, so expired timestamps are erased before their
    /// wraparound values can alias fresh ones (the TBF schedule).
    ///
    /// Both sweeps run through [`PackedIntVec::expire_timestamps`] — the
    /// wide compare-and-store the TBF sweep uses — split at each table's
    /// boundary so every segment is a contiguous cell range.
    fn clean_step(&mut self) {
        let now = self.wrap.now();
        let range = self.cfg.range();
        let hi = self.cfg.n as u64 - 1;
        let m = self.cells.len();
        let mut remaining = self.quota;
        while remaining > 0 {
            let seg = remaining.min(m - self.clean_next);
            let cleaned = self.cells.expire_timestamps(
                self.clean_next,
                seg,
                self.ts_mask,
                self.empty_cell,
                now,
                range,
                1,
                hi,
            );
            self.ops.clean_reads += seg as u64;
            self.ops.clean_writes += cleaned as u64;
            self.clean_next += seg;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            remaining -= seg;
        }
        let ms = self.side.len();
        let mut remaining = self.side_quota;
        while remaining > 0 {
            let seg = remaining.min(ms - self.side_clean_next);
            let cleaned = self.side.expire_timestamps(
                self.side_clean_next,
                seg,
                self.side_empty,
                self.side_empty,
                now,
                range,
                1,
                hi,
            );
            self.ops.clean_reads += seg as u64;
            self.ops.clean_writes += cleaned as u64;
            self.side_clean_next += seg;
            if self.side_clean_next == ms {
                self.side_clean_next = 0;
            }
            remaining -= seg;
        }
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation: sweep, candidate probe,
    /// insert-or-overflow when distinct, advance the clock.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan(self, &mut bufs, plan);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans with lookahead prefetch.
    pub fn apply_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_into(plans, &mut out);
        out
    }

    /// Allocation-free [`Swbf::apply_batch`]: verdicts go into `out`
    /// (cleared first, capacity reused).
    pub fn apply_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_into(self, &mut bufs, plans, out);
        self.bufs = bufs;
    }

    /// Live load of the main dictionary: active cells / cells (`O(m)`).
    #[must_use]
    pub fn active_load(&self) -> f64 {
        self.scans.set(self.scans.get() + 1);
        let active = self
            .cells
            .iter()
            .filter(|&c| {
                let ts = c & self.ts_mask;
                ts != self.ts_mask && self.is_active(ts)
            })
            .count();
        active as f64 / self.cells.len().max(1) as f64
    }

    /// Live load of the side filter (`O(m_side)`; no scan counted —
    /// the side table is a fixed small fraction of the budget).
    fn side_load(&self) -> f64 {
        let active = self
            .side
            .iter()
            .filter(|&t| t != self.side_empty && self.is_active(t))
            .count();
        active as f64 / self.side.len().max(1) as f64
    }

    /// The model FP at the given loads:
    /// `b·load·2⁻ᶠ + load^b · side_load^k`.
    fn fp_from_loads(&self, load: f64, side_load: f64) -> f64 {
        let b = self.b_eff as f64;
        let collision = b * load * 0.5f64.powi(self.cfg.fingerprint_bits as i32);
        let overflow = load.powi(self.b_eff as i32) * side_load.powi(K_SIDE as i32);
        collision + overflow
    }
}

impl ProbeCore for Swbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.b_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.cells.prefetch(idx);
    }
}

impl CountCore for Swbf {
    fn apply_probes(&mut self, plan: ProbePlan, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.clean_step();

        let pair = plan.pair();
        let fp = self.fingerprint(pair);
        let now = self.wrap.now();

        // Query the candidates; remember the first claimable cell.
        let mut dup = false;
        let mut open: Option<usize> = None;
        if cfd_bits::simd::wide_enabled() && (4..=31).contains(&probes.len()) {
            // Wide path: decode every candidate, then one activity
            // classify plus one shifted-compare give the duplicate and
            // claimable lanes as bitmasks. Bit-identical to the loop
            // below, including early-exit `probe_reads` accounting (a
            // duplicate at lane `d` counts `d + 1` reads).
            let mut vals = [0u64; 32];
            for (slot, &i) in probes.iter().enumerate() {
                vals[slot] = self.cells.get(i);
            }
            let b = probes.len();
            let masks = cfd_bits::simd::classify_stamps(
                &vals[..b],
                self.ts_mask,
                now,
                self.cfg.range(),
                1,
                self.cfg.n as u64 - 1,
                0,
            );
            let fpm = cfd_bits::simd::eq_shifted_mask(&vals[..b], self.ts_bits, fp) & masks.active;
            let claimable = !masks.active & ((1u32 << b) - 1);
            if fpm != 0 {
                dup = true;
                let scanned = fpm.trailing_zeros();
                self.ops.probe_reads += u64::from(scanned) + 1;
                if claimable & ((1u32 << scanned) - 1) != 0 {
                    open = Some(probes[(claimable.trailing_zeros()) as usize]);
                }
            } else {
                self.ops.probe_reads += b as u64;
                if claimable != 0 {
                    open = Some(probes[claimable.trailing_zeros() as usize]);
                }
            }
        } else {
            for &i in probes {
                let cell = self.cells.get(i);
                self.ops.probe_reads += 1;
                let ts = cell & self.ts_mask;
                if ts == self.ts_mask || !self.is_active(ts) {
                    if open.is_none() {
                        open = Some(i);
                    }
                } else if cell >> self.ts_bits == fp {
                    dup = true;
                    break;
                }
            }
        }

        // The side filter only matters while one of its insertions can
        // still be in-window; otherwise skip the four extra reads.
        let mut side_probes = None;
        if !dup && self.side_live() {
            let sp = self.side_probes(pair);
            self.ops.probe_reads += K_SIDE as u64;
            dup = sp.iter().all(|&i| {
                let t = self.side.get(i);
                t != self.side_empty && self.is_active(t)
            });
            side_probes = Some(sp);
        }

        let verdict = if dup {
            // Duplicates are not valid clicks and must not refresh the
            // stored element (Definition 1).
            self.dups += 1;
            Verdict::Duplicate
        } else if let Some(i) = open {
            self.cells.set(i, fp << self.ts_bits | now);
            self.ops.insert_writes += 1;
            Verdict::Distinct
        } else {
            // All candidates are occupied by active elements: overflow
            // into the side filter (timestamp refreshes there only ever
            // extend activity, so zero false negatives are preserved).
            let sp = side_probes.unwrap_or_else(|| self.side_probes(pair));
            for &i in &sp {
                self.side.set(i, now);
            }
            self.ops.insert_writes += K_SIDE as u64;
            self.side_distinct += 1;
            self.last_side_insert = Some(self.arrivals);
            Verdict::Distinct
        };
        self.wrap.advance();
        self.arrivals += 1;
        verdict
    }
}

impl DuplicateDetector for Swbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_into(ids, &mut out);
        out
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_into(self, &mut bufs, planner, ids, out);
        self.bufs = bufs;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_into(self, &mut bufs, planner, keys, key_len, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding { n: self.cfg.n }
    }

    fn memory_bits(&self) -> usize {
        self.cells.memory_bits() + self.side.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "swbf"
    }
}

impl DetectorStats for Swbf {
    fn stats_name(&self) -> &'static str {
        "swbf"
    }

    /// Two entries: main-dictionary active load, side-filter active
    /// load (`O(m)`, one scan).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.active_load(), self.side_load()]
    }

    /// Normalized position of the main sweep through the dictionary.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cells.len().max(1) as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    fn observed_duplicates(&self) -> u64 {
        self.dups
    }

    /// `b·load·2⁻ᶠ + load^b·side_load^k` at the live loads (`O(m)`).
    fn estimated_fp(&self) -> f64 {
        self.fp_from_loads(self.active_load(), self.side_load())
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// Single-scan override: the loads feeding `fill_ratios` and
    /// `estimated_fp` are computed once.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let load = self.active_load();
        let side_load = self.side_load();
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![load, side_load],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: self.fp_from_loads(load, side_load),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactSlidingDedup;

    fn swbf(n: usize, total_bits: usize) -> Swbf {
        Swbf::new(SwbfConfig::for_budget(n, total_bits, 77, ProbeLayout::Scattered).unwrap())
            .unwrap()
    }

    fn blocked_swbf(n: usize, total_bits: usize) -> Swbf {
        Swbf::new(SwbfConfig::for_budget(n, total_bits, 77, ProbeLayout::Blocked).unwrap()).unwrap()
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = swbf(16, 1 << 16);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
    }

    #[test]
    fn element_slides_out_after_n() {
        let n = 8;
        let mut d = swbf(n, 1 << 16);
        d.observe(b"first"); // position 0
        for i in 0..n as u32 - 1 {
            d.observe(&i.to_le_bytes()); // positions 1..=7
        }
        // Position 8: "first" is exactly N back -> out of window.
        assert_eq!(d.observe(b"first"), Verdict::Distinct);
    }

    #[test]
    fn element_still_in_window_at_n_minus_1() {
        let n = 8;
        let mut d = swbf(n, 1 << 16);
        d.observe(b"first"); // position 0
        for i in 0..n as u32 - 2 {
            d.observe(&i.to_le_bytes()); // positions 1..=6
        }
        // Position 7: "first" has age 7 = N-1 -> still inside.
        assert_eq!(d.observe(b"first"), Verdict::Duplicate);
    }

    #[test]
    fn duplicates_do_not_refresh_validity() {
        let n = 4;
        let mut d = swbf(n, 1 << 16);
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // pos 0 (valid)
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 1
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 2
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 3
                                                         // pos 4: the valid a@0 slid out; duplicates never extended it.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let n = 64;
        let mut d = swbf(n, 1 << 16);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn blocked_mode_has_zero_false_negatives() {
        let n = 64;
        let mut d = blocked_swbf(n, 1 << 16);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn zero_false_negatives_under_crowding() {
        // A tiny budget forces candidate crowding and side-filter
        // overflow; zero FN must survive the overflow path and many
        // timestamp wraparounds.
        let n = 128;
        let mut d = swbf(n, 2048);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..50_000u64 {
            let key = (i % 150).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
        assert!(d.side_inserted(), "crowding must exercise the side path");
    }

    #[test]
    fn batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = swbf(256, 1 << 18);
        let mut batched = swbf(256, 1 << 18);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = blocked_swbf(256, 1 << 18);
        let mut batched = blocked_swbf(256, 1 << 18);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn false_positive_rate_is_very_low_with_adequate_memory() {
        // Fingerprinting buys orders of magnitude over bit-smearing
        // backends: at ~128 bits per element the model sits around
        // 1e-5, so a distinct stream should barely ever collide.
        let n = 1 << 12;
        let mut d = swbf(n, n * 128);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 1e-3, "fp rate {rate} too high ({fps} hits)");
    }

    #[test]
    fn side_queries_are_skipped_once_quiet() {
        let n = 32;
        let mut d = swbf(n, 1 << 16);
        // A comfortable budget never overflows: the side stays unused
        // and probe reads stay at b_eff per element plus sweep quota.
        for i in 0..5000u64 {
            d.observe(&i.to_le_bytes());
        }
        assert!(!d.side_inserted(), "well-sized table must not overflow");
        assert_eq!(
            d.ops().probe_reads,
            5000 * d.effective_candidates() as u64,
            "side reads must be skipped while the side filter is idle"
        );
    }

    #[test]
    fn checkpoint_parts_roundtrip() {
        let mut d = swbf(64, 1 << 16);
        for i in 0..1000u64 {
            d.observe(&(i % 100).to_le_bytes());
        }
        let (cfg, state) = d.checkpoint_parts();
        let mut restored = Swbf::from_checkpoint_parts(cfg, state).expect("valid parts");
        for i in 0..500u64 {
            let key = (i % 70).to_le_bytes();
            assert_eq!(d.observe(&key), restored.observe(&key), "element {i}");
        }
    }

    #[test]
    fn checkpoint_parts_reject_inconsistent_state() {
        let d = swbf(64, 1 << 16);
        let (cfg, mut state) = d.checkpoint_parts();
        state.clean_next = cfg.cells();
        assert!(Swbf::from_checkpoint_parts(cfg, state).is_none());
        let (cfg, mut state) = d.checkpoint_parts();
        state.cell_words.pop();
        assert!(Swbf::from_checkpoint_parts(cfg, state).is_none());
        let (cfg, mut state) = d.checkpoint_parts();
        state.last_side_insert = Some(state.arrivals + 1);
        assert!(Swbf::from_checkpoint_parts(cfg, state).is_none());
    }

    #[test]
    fn occupancy_scans_counts_table_passes_only() {
        let mut d = swbf(256, 1 << 16);
        let keys: Vec<Vec<u8>> = (0..2000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        d.observe_batch(&slices);
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let _ = d.fill_ratios();
        assert_eq!(d.occupancy_scans(), 1);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 2, "health pays exactly one scan");
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = swbf(16, 1 << 16);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
    }
}
