//! The GBF algorithm: group Bloom filters over jumping windows (§3).
//!
//! Memory is organized as an [`InterleavedBitMatrix`] of `m` groups ×
//! `Q + 1` lanes. At any moment `Q` lanes are *active* (the current
//! partial sub-window plus the `Q − 1` most recent full ones) and one
//! lane is the *spare* — the most recently expired filter, wiped
//! incrementally at `⌈m / (N/Q)⌉` groups per arriving element so the wipe
//! finishes before the lane is needed again (§3.1's `Q + 1` pieces trick).
//!
//! Per element the algorithm performs:
//!
//! * one hash evaluation (`k` indices by double hashing),
//! * `k × ⌈(Q+1)/64⌉` word reads + one AND-reduce + one mask for the
//!   duplicate probe across **all** active sub-windows at once,
//! * `k` word writes when the element is distinct,
//! * `⌈m/(N/Q)⌉` word writes of incremental cleaning.
//!
//! This matches Theorem 1: zero false negatives, false-positive rate of a
//! `Q`-filter union, and `O((Q/D) · (M/N))`-ish per-element cost in D-bit
//! word operations.

use crate::backend::{self, BatchBufs, CountCore, ProbeCore};
use crate::config::{ConfigError, GbfConfig, GbfLayout, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::{InterleavedBitMatrix, TightBitMatrix};
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, JumpingClock, Verdict, WindowSpec};
use std::cell::Cell;

/// Dynamic GBF state captured by a checkpoint.
pub(crate) struct GbfState {
    pub slot: usize,
    pub filled: usize,
    pub completed: u64,
    pub spare: Option<usize>,
    pub clean_next: usize,
    pub active_mask: Vec<u64>,
    pub matrix_words: Vec<u64>,
}

/// The group matrix in either memory layout (verdict-identical; see
/// [`GbfLayout`]).
#[derive(Debug, Clone)]
enum GroupMatrix {
    Padded(InterleavedBitMatrix),
    Tight(TightBitMatrix),
}

impl GroupMatrix {
    fn new(groups: usize, lanes: usize, layout: GbfLayout) -> Self {
        match layout {
            GbfLayout::Padded => GroupMatrix::Padded(InterleavedBitMatrix::new(groups, lanes)),
            GbfLayout::Tight => GroupMatrix::Tight(TightBitMatrix::new(groups, lanes)),
        }
    }

    fn lane_words(&self) -> usize {
        match self {
            GroupMatrix::Padded(mx) => mx.lane_words(),
            GroupMatrix::Tight(_) => 1,
        }
    }

    fn set(&mut self, group: usize, lane: usize) {
        match self {
            GroupMatrix::Padded(mx) => mx.set(group, lane),
            GroupMatrix::Tight(mx) => mx.set(group, lane),
        }
    }

    fn clear_lane_range(&mut self, lane: usize, start: usize, count: usize) -> usize {
        match self {
            GroupMatrix::Padded(mx) => mx.clear_lane_range(lane, start, count),
            GroupMatrix::Tight(mx) => mx.clear_lane_range(lane, start, count),
        }
    }

    fn memory_bits(&self) -> usize {
        match self {
            GroupMatrix::Padded(mx) => mx.memory_bits(),
            GroupMatrix::Tight(mx) => mx.memory_bits(),
        }
    }

    fn count_ones_in_lane(&self, lane: usize) -> usize {
        match self {
            GroupMatrix::Padded(mx) => mx.count_ones_in_lane(lane),
            GroupMatrix::Tight(mx) => mx.count_ones_in_lane(lane),
        }
    }

    #[inline]
    fn prefetch(&self, group: usize) {
        match self {
            GroupMatrix::Padded(mx) => mx.prefetch(group),
            GroupMatrix::Tight(mx) => mx.prefetch(group),
        }
    }
}

/// Group-Bloom-filter duplicate detector over count-based jumping windows.
///
/// ```rust
/// use cfd_core::{Gbf, GbfConfig};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// let cfg = GbfConfig::builder(1 << 12, 8)
///     .total_memory_bits(1 << 18)
///     .build()?;
/// let mut gbf = Gbf::new(cfg)?;
/// assert_eq!(gbf.observe(b"203.0.113.9|c0ffee|ad-17"), Verdict::Distinct);
/// assert_eq!(gbf.observe(b"203.0.113.9|c0ffee|ad-17"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gbf {
    cfg: GbfConfig,
    matrix: GroupMatrix,
    clock: JumpingClock,
    family: DoubleHashFamily,
    /// Lane mask of the currently active (queryable) sub-window filters.
    active_mask: Vec<u64>,
    /// Lane being cleaned, if a wipe is in progress.
    spare: Option<usize>,
    /// Next group index the cleaning sweep will visit.
    clean_next: usize,
    clean_quota: usize,
    ops: OpCounters,
    bufs: BatchBufs,
    acc: Vec<u64>,
    /// Blocked-probe geometry; `None` in scattered mode.
    geo: Option<BlockGeometry>,
    /// Probes actually issued per element: `k` scattered, capped at
    /// half the block in blocked mode (`min(k, slots/2)`, at least 1) —
    /// a single insertion must never saturate its block, or every later
    /// key landing on a touched block would be a false positive.
    k_eff: usize,
    /// `O(m)` occupancy passes performed (snapshot cadence only; the
    /// `throughput` bench asserts this never moves inside a timed loop).
    scans: Cell<u64>,
}

impl Gbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is internally
    /// inconsistent (normally impossible after `GbfConfig::build`).
    pub fn new(cfg: GbfConfig) -> Result<Self, ConfigError> {
        if cfg.n == 0 || cfg.q == 0 || cfg.m == 0 {
            return Err(ConfigError::ZeroDimension("GBF dimension"));
        }
        if !(1..=64).contains(&cfg.k) {
            return Err(ConfigError::BadHashCount(cfg.k));
        }
        if cfg.layout == GbfLayout::Tight && cfg.q + 1 > 32 {
            return Err(ConfigError::LayoutTooWide { q: cfg.q });
        }
        let geo = cfg.block_geometry();
        if cfg.probe == ProbeLayout::Blocked && geo.is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: cfg.group_bits(),
                m: cfg.m,
            });
        }
        let k_eff = backend::effective_k(cfg.k, geo.as_ref());
        let matrix = GroupMatrix::new(cfg.m, cfg.q + 1, cfg.layout);
        let mut active_mask = vec![0u64; matrix.lane_words()];
        active_mask[0] |= 1; // slot 0 is current at stream start
        Ok(Self {
            clock: JumpingClock::new(cfg.q, cfg.sub_len()),
            family: DoubleHashFamily::new(cfg.seed),
            active_mask,
            spare: None,
            clean_next: 0,
            clean_quota: cfg.clean_quota(),
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            acc: vec![0; matrix.lane_words()],
            geo,
            k_eff,
            scans: Cell::new(0),
            matrix,
            cfg,
        })
    }

    /// Probes issued per element: `k` in scattered mode, `min(k,
    /// slots/2)` in blocked mode (see the saturation cap on `k_eff`).
    #[must_use]
    pub fn effective_hash_count(&self) -> usize {
        self.k_eff
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> GbfConfig {
        self.cfg
    }

    /// Memory-operation counters (Theorem 1 accounting).
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Words per group access (`⌈(Q+1)/64⌉`, the `D`-bit-word factor).
    #[must_use]
    pub fn lane_words(&self) -> usize {
        self.matrix.lane_words()
    }

    /// Fraction of set bits in the lane currently receiving insertions
    /// (diagnostics).
    #[must_use]
    pub fn current_fill_ratio(&self) -> f64 {
        self.scans.set(self.scans.get() + 1);
        self.matrix.count_ones_in_lane(self.clock.slot()) as f64 / self.cfg.m as f64
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (GbfConfig, GbfState) {
        let matrix_words = match &self.matrix {
            GroupMatrix::Padded(mx) => mx.as_words().to_vec(),
            GroupMatrix::Tight(mx) => mx.as_words().to_vec(),
        };
        (
            self.cfg,
            GbfState {
                slot: self.clock.slot(),
                filled: self.clock.filled(),
                completed: self.clock.completed_subwindows(),
                spare: self.spare,
                clean_next: self.clean_next,
                active_mask: self.active_mask.clone(),
                matrix_words,
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_checkpoint_parts(
        cfg: GbfConfig,
        slot: usize,
        filled: usize,
        completed: u64,
        spare: Option<usize>,
        clean_next: usize,
        active_mask: Vec<u64>,
        matrix_words: Vec<u64>,
    ) -> Option<Self> {
        // Size-check against the provided payload BEFORE allocating: a
        // corrupt header could otherwise request an absurd matrix.
        let lanes = cfg.q.checked_add(1)?;
        let expected_words = match cfg.layout {
            GbfLayout::Padded => cfg.m.checked_mul(lanes.div_ceil(64))?,
            GbfLayout::Tight => {
                if lanes > 32 {
                    return None;
                }
                cfg.m.div_ceil(64 / lanes)
            }
        };
        let expected_mask_words = lanes.div_ceil(64);
        if matrix_words.len() != expected_words
            || active_mask.len() != expected_mask_words
            || clean_next > cfg.m
        {
            return None;
        }
        let mut d = Self::new(cfg).ok()?;
        d.clock =
            cfd_windows::JumpingClock::from_parts(cfg.q, cfg.sub_len(), slot, filled, completed)?;
        if let Some(s) = spare {
            if s > cfg.q {
                return None;
            }
        }
        d.active_mask = active_mask;
        d.spare = spare;
        d.clean_next = clean_next;
        d.matrix =
            match cfg.layout {
                GbfLayout::Padded => GroupMatrix::Padded(
                    cfd_bits::InterleavedBitMatrix::from_words(matrix_words, cfg.m, cfg.q + 1)?,
                ),
                GbfLayout::Tight => GroupMatrix::Tight(cfd_bits::TightBitMatrix::from_words(
                    matrix_words,
                    cfg.m,
                    cfg.q + 1,
                )?),
            };
        Some(d)
    }

    #[inline]
    fn mask_set(mask: &mut [u64], lane: usize) {
        mask[lane / 64] |= 1u64 << (lane % 64);
    }

    #[inline]
    fn mask_clear(mask: &mut [u64], lane: usize) {
        mask[lane / 64] &= !(1u64 << (lane % 64));
    }

    /// Advances the incremental wipe of the spare lane.
    fn clean_step(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            let count = self.clean_quota.min(remaining);
            let touched = self.matrix.clear_lane_range(spare, self.clean_next, count);
            self.ops.clean_writes += touched as u64;
            self.clean_next += count;
            if self.clean_next == self.cfg.m {
                self.spare = None;
                self.clean_next = 0;
            }
        }
    }

    /// Finishes any in-progress wipe immediately (used at rotation as a
    /// defensive fallback; the quota guarantees this is a no-op).
    fn clean_finish(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            if remaining > 0 {
                let touched = self
                    .matrix
                    .clear_lane_range(spare, self.clean_next, remaining);
                self.ops.clean_writes += touched as u64;
            }
            self.spare = None;
            self.clean_next = 0;
        }
    }

    /// The pure hashing half of this detector, shareable across threads.
    ///
    /// Plans it produces are valid for any GBF/TBF built with the same
    /// seed.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation: clean, probe all active
    /// sub-windows, insert when distinct, rotate sub-windows.
    ///
    /// `observe(id)` ≡ `apply(plan(id))`; the split lets callers hash
    /// batches (or hash on another thread) before replaying here. The
    /// one hash evaluation is accounted to this element regardless of
    /// where it was computed, keeping Theorem 1's per-element op counts.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan(self, &mut bufs, plan);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans with the same lookahead
    /// prefetch as `observe_batch` — the stateful half of the sharded
    /// hash-once path, where plans were produced while routing.
    pub fn apply_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_into(plans, &mut out);
        out
    }

    /// Allocation-free [`Gbf::apply_batch`]: verdicts go into `out`
    /// (cleared first, capacity reused).
    pub fn apply_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_into(self, &mut bufs, plans, out);
        self.bufs = bufs;
    }

    /// [`Gbf::apply`] with the plan's probe groups already expanded —
    /// the innermost stateful step, shared by the per-click and batch
    /// paths.
    fn apply_at(&mut self, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;

        // Step 1 (§3.1): incremental cleaning of the expired filter.
        self.clean_step();

        // Step 2: probe all active sub-window filters with one AND-chain.
        let duplicate = match &self.matrix {
            GroupMatrix::Padded(mx) => {
                self.acc.copy_from_slice(&self.active_mask);
                for &g in probes {
                    mx.and_group_into(g, &mut self.acc);
                }
                self.acc.iter().any(|&w| w != 0)
            }
            GroupMatrix::Tight(mx) => {
                let mut acc = self.active_mask[0];
                for &g in probes {
                    acc &= mx.read_group(g);
                }
                acc != 0
            }
        };
        self.ops.probe_reads += (probes.len() * self.matrix.lane_words()) as u64;

        let verdict = if duplicate {
            Verdict::Duplicate
        } else {
            let cur = self.clock.slot();
            for &g in probes {
                self.matrix.set(g, cur);
            }
            self.ops.insert_writes += probes.len() as u64;
            Verdict::Distinct
        };

        // Step 3: sub-window bookkeeping.
        if let Some(rot) = self.clock.record_arrival() {
            // The new current slot must be fully clean; the quota
            // guarantees the previous wipe already finished.
            self.clean_finish();
            Self::mask_set(&mut self.active_mask, rot.new_slot);
            if let Some(expired) = rot.expired_slot {
                Self::mask_clear(&mut self.active_mask, expired);
                self.spare = Some(expired);
                self.clean_next = 0;
            }
        }
        verdict
    }
}

impl ProbeCore for Gbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cfg.m
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.k_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.matrix.prefetch(idx);
    }
}

impl CountCore for Gbf {
    #[inline]
    fn apply_probes(&mut self, _plan: ProbePlan, probes: &[usize]) -> Verdict {
        self.apply_at(probes)
    }
}

impl DuplicateDetector for Gbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_into(ids, &mut out);
        out
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        // Hash the whole batch first (pure, multi-lane over equal-length
        // runs) and expand every plan's probe groups into one flat
        // buffer, then replay against filter state while prefetching
        // element `i + PREFETCH_AHEAD`'s cache lines — the same
        // latency-hiding replay as `Tbf::observe_batch`. In blocked mode
        // all of an element's probes share one line, so a single
        // prefetch per future element suffices.
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_into(self, &mut bufs, planner, ids, out);
        self.bufs = bufs;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_into(self, &mut bufs, planner, keys, key_len, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.cfg.n,
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.matrix.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "gbf"
    }
}

impl DetectorStats for Gbf {
    fn stats_name(&self) -> &'static str {
        "gbf"
    }

    /// Fill ratio of each *active* lane (current partial sub-window
    /// first in rotation order is not guaranteed; entries follow lane
    /// index). `O(m)` per lane — snapshot cadence only.
    fn fill_ratios(&self) -> Vec<f64> {
        (0..=self.cfg.q)
            .filter(|&lane| self.active_mask[lane / 64] >> (lane % 64) & 1 == 1)
            .map(|lane| {
                self.scans.set(self.scans.get() + 1);
                self.matrix.count_ones_in_lane(lane) as f64 / self.cfg.m as f64
            })
            .collect()
    }

    /// Fraction of the spare lane's wipe still outstanding.
    fn cleaning_backlog(&self) -> f64 {
        if self.spare.is_some() {
            (self.cfg.m - self.clean_next) as f64 / self.cfg.m as f64
        } else {
            0.0
        }
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k_eff` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// A fresh key is flagged iff some active lane has all `k` probed
    /// bits set: `1 − Π over active lanes (1 − fill^k)` — Theorem 1's
    /// `Q`-filter union evaluated at the *live* fill instead of the
    /// design-point fill (`cfd_analysis::gbf::fp_steady`).
    fn estimated_fp(&self) -> f64 {
        let miss_all: f64 = self
            .fill_ratios()
            .iter()
            .map(|fill| 1.0 - fill.powi(self.cfg.k as i32))
            .product();
        1.0 - miss_all
    }

    /// Single-scan override: `fill_ratios` costs `O(m)` per active lane
    /// and the default assembly would run the lane count twice (once
    /// for the ratios, once inside `estimated_fp`). Derive both from
    /// one pass so health sampling stays cheap enough for the pipeline
    /// reporter.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fills = self.fill_ratios();
        let miss_all: f64 = fills
            .iter()
            .map(|fill| 1.0 - fill.powi(self.cfg.k as i32))
            .product();
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: fills,
            cleaning_backlog: self.cleaning_backlog(),
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: 1.0 - miss_all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactJumpingDedup;

    fn gbf(n: usize, q: usize, m: usize, k: usize) -> Gbf {
        Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(k)
                .seed(42)
                .build()
                .expect("valid config"),
        )
        .expect("valid gbf")
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = gbf(64, 4, 1 << 12, 5);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
        assert_eq!(d.observe(b"y"), Verdict::Distinct);
    }

    #[test]
    fn duplicate_across_subwindows_detected() {
        // n = 16, q = 4 -> sub-windows of 4.
        let mut d = gbf(16, 4, 1 << 12, 5);
        d.observe(b"early");
        for i in 0..10u32 {
            d.observe(&i.to_le_bytes());
        }
        // 11 arrivals later, still within the 16-element window.
        assert_eq!(d.observe(b"early"), Verdict::Duplicate);
    }

    #[test]
    fn expired_subwindow_is_forgotten() {
        let mut d = gbf(16, 4, 1 << 14, 6);
        d.observe(b"old"); // lands in sub-window 0
        for i in 0..16u32 {
            // Fill four full sub-windows: sub-window 0 expires.
            d.observe(&(i + 1000).to_le_bytes());
        }
        assert_eq!(
            d.observe(b"old"),
            Verdict::Distinct,
            "remembered beyond window"
        );
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let (n, q) = (64, 4);
        let mut d = gbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..10_000u64 {
            // Heavy duplication: ids cycle within and beyond the window.
            let key = (i % 97).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_low_with_adequate_memory() {
        // 14 bits per sub-window element, k = 10 -> per-filter FP ~ 2^-10,
        // union of q = 8 filters ~ 0.008.
        let n = 1 << 12;
        let q = 8;
        let m = (n / q) * 14;
        let mut d = gbf(n, q, m, 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1; // stream is all-distinct: every Duplicate is an FP
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.03, "fp rate {rate} too high");
    }

    #[test]
    fn cleaning_completes_before_lane_reuse() {
        // Tiny filter with awkward sizes: quota must still finish wipes.
        let mut d = gbf(10, 5, 97, 3);
        for i in 0..1_000u32 {
            d.observe(&i.to_le_bytes());
            if let Some(spare) = d.spare {
                // The spare lane is never the current insertion lane.
                assert_ne!(spare, d.clock.slot());
            }
        }
        // After many rotations every lane has been wiped at least once and
        // no stale bits leak: an all-distinct stream keeps fill bounded by
        // the window content.
        assert!(d.ops().clean_writes > 0);
    }

    #[test]
    fn stale_bits_never_resurface_after_wrap() {
        // Insert a key, let its lane expire, be cleaned, refilled and
        // expire again several times; the key must never be reported
        // duplicate once out of window.
        let n = 32;
        let mut d = gbf(n, 4, 1 << 13, 5);
        for round in 0..50u32 {
            let key = b"phoenix";
            assert_eq!(
                d.observe(key),
                Verdict::Distinct,
                "stale bit resurfaced in round {round}"
            );
            for i in 0..n as u32 {
                d.observe(&(round * 1_000 + i).to_le_bytes());
            }
        }
    }

    #[test]
    fn probe_reads_match_theorem_1_cost_model() {
        let mut d = gbf(1 << 10, 8, 1 << 12, 7);
        let elements = 5_000u64;
        for i in 0..elements {
            d.observe(&i.to_le_bytes());
        }
        let ops = d.ops();
        assert_eq!(ops.elements, elements);
        // k word-reads per element (lane_words = 1 for q + 1 = 9 lanes).
        assert_eq!(d.lane_words(), 1);
        assert_eq!(ops.probe_reads, elements * 7);
        // Cleaning writes are bounded by quota per element.
        let quota = d.config().clean_quota() as u64;
        assert!(ops.clean_writes <= elements * quota);
        assert_eq!(ops.hash_evals, elements);
    }

    #[test]
    fn many_lanes_use_multiple_words() {
        let d = gbf(1 << 10, 100, 1 << 10, 4);
        assert_eq!(d.lane_words(), 2);
        let mut d = d;
        // Smoke: still detects duplicates with multi-word masks.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = gbf(64, 4, 1 << 10, 4);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
        assert_eq!(d.ops().elements, 1);
    }

    #[test]
    fn tight_layout_is_verdict_identical_and_smaller() {
        use crate::config::GbfLayout;
        let (n, q, m, k) = (2_048usize, 8usize, 10_000usize, 6usize);
        let mut padded = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(k)
                .seed(9)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut tight = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(k)
                .seed(9)
                .layout(GbfLayout::Tight)
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..120_000u64 {
            let key = (i % 3_000).to_le_bytes();
            assert_eq!(padded.observe(&key), tight.observe(&key), "diverged at {i}");
        }
        // 9 lanes: tight packs 7 groups per word -> ~7x less memory.
        assert!(tight.memory_bits() * 6 < padded.memory_bits());
    }

    #[test]
    fn tight_layout_rejects_wide_q() {
        use crate::config::GbfLayout;
        let err = GbfConfig::builder(1 << 12, 32)
            .filter_bits(1 << 10)
            .layout(GbfLayout::Tight)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::LayoutTooWide { q: 32 }));
        assert!(err.to_string().contains("32"));
    }

    fn blocked_gbf(n: usize, q: usize, m: usize, k: usize, layout: GbfLayout) -> Gbf {
        Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(k)
                .seed(42)
                .layout(layout)
                .probe(ProbeLayout::Blocked)
                .build()
                .expect("valid blocked config"),
        )
        .expect("valid blocked gbf")
    }

    #[test]
    fn blocked_mode_has_zero_false_negatives() {
        for layout in [GbfLayout::Padded, GbfLayout::Tight] {
            let (n, q) = (64, 4);
            let mut d = blocked_gbf(n, q, 1 << 14, 6, layout);
            let mut oracle = ExactJumpingDedup::new(n, q);
            for i in 0..10_000u64 {
                let key = (i % 97).to_le_bytes();
                let got = d.observe(&key);
                let want = oracle.observe(&key);
                if want == Verdict::Duplicate {
                    assert_eq!(got, Verdict::Duplicate, "{layout:?}: FN at element {i}");
                }
            }
        }
    }

    #[test]
    fn blocked_batch_matches_sequential() {
        let ids: Vec<Vec<u8>> = (0..6_000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut sequential = blocked_gbf(256, 8, 1 << 14, 6, GbfLayout::Padded);
        let mut batched = blocked_gbf(256, 8, 1 << 14, 6, GbfLayout::Padded);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_fp_stays_usable_with_adequate_memory() {
        // Blocked probing pays a load-variance FP penalty that grows as
        // blocks carry fewer slots. The tight layout at Q = 8 packs
        // 9-bit groups, so a 512-bit line holds 32 group slots — enough
        // for the penalty to stay moderate when memory is adequate.
        let n = 1 << 12;
        let q = 8;
        let m = (n / q) * 28;
        let mut d = blocked_gbf(n, q, m, 10, GbfLayout::Tight);
        assert_eq!(d.effective_hash_count(), 10, "32 slots keep k intact");
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.08, "blocked fp rate {rate} too high");
    }

    #[test]
    fn blocked_caps_probes_on_coarse_slots() {
        // Padded Q = 8 groups are 64-bit, so a line holds only 8 slots;
        // k is capped at slots/2 so one insert can never saturate its
        // block (uncapped, every touched block would report all later
        // arrivals as duplicates).
        let n = 1 << 12;
        let q = 8;
        let d = blocked_gbf(n, q, (n / q) * 14, 10, GbfLayout::Padded);
        assert_eq!(d.effective_hash_count(), 4);
        let scattered = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits((n / q) * 14)
                .hash_count(10)
                .layout(GbfLayout::Padded)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(scattered.effective_hash_count(), 10);
    }

    #[test]
    fn occupancy_scans_counts_fill_passes_only() {
        let mut d = gbf(64, 4, 1 << 12, 5);
        for i in 0..500u32 {
            d.observe(&i.to_le_bytes());
        }
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let lanes = d.fill_ratios().len() as u64;
        assert_eq!(d.occupancy_scans(), lanes);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 2 * lanes);
    }

    #[test]
    fn memory_bits_reports_whole_matrix() {
        let d = gbf(64, 4, 1000, 4);
        // 5 lanes -> 1 word per group, 1000 groups.
        assert_eq!(d.memory_bits(), 1000 * 64);
    }
}
