//! Memory-operation accounting.
//!
//! Theorems 1 and 2 of the paper state per-element *running time* in
//! memory operations (word reads/writes for GBF, entry reads/writes for
//! TBF), not wall-clock time. These counters let the benchmark harness
//! regenerate those claims exactly: every detector in `cfd-core`
//! increments them on the same schedule as its memory accesses.
//!
//! Accounting under the hash→apply split: counters are incremented by
//! the *stateful* half (`apply`/`apply_at`), so `hash_evals` means "hash
//! evaluations attributable to applied elements" — exactly one per
//! element — even when the hashing itself ran out-of-band (batched up
//! front, or on another thread that produced the `ProbePlan`). Plans
//! that are computed but never applied are not counted; the per-element
//! cost model of the theorems is what the counters reproduce.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Cumulative memory-operation counts of one detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// Words (GBF) or entries (TBF) read while probing.
    pub probe_reads: u64,
    /// Words/entries written while inserting a distinct element.
    pub insert_writes: u64,
    /// Words/entries read by the incremental cleaning sweep.
    pub clean_reads: u64,
    /// Words/entries written (cleared) by the incremental cleaning sweep.
    pub clean_writes: u64,
    /// Full key-hash evaluations.
    pub hash_evals: u64,
    /// Elements processed.
    pub elements: u64,
    /// Observations whose tick mapped to a unit *behind* the detector's
    /// high-water unit. Time-based detectors clamp such clicks to the
    /// current unit (the clock never moves backwards) and count the
    /// event here so operators can see how out-of-order the feed is.
    /// Always 0 for count-based detectors.
    pub clock_regressions: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total memory operations (reads + writes, probe + clean).
    #[must_use]
    pub fn total_mem_ops(&self) -> u64 {
        self.probe_reads + self.insert_writes + self.clean_reads + self.clean_writes
    }

    /// Mean memory operations per processed element (0 when empty).
    #[must_use]
    pub fn mem_ops_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.total_mem_ops() as f64 / self.elements as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Sums counters across detectors (shards, pipeline workers, audit
    /// pairs); per-element means then reflect the combined stream.
    #[must_use]
    pub fn merged(counters: impl IntoIterator<Item = Self>) -> Self {
        let mut total = Self::default();
        for c in counters {
            total += c;
        }
        total
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.probe_reads += rhs.probe_reads;
        self.insert_writes += rhs.insert_writes;
        self.clean_reads += rhs.clean_reads;
        self.clean_writes += rhs.clean_writes;
        self.hash_evals += rhs.hash_evals;
        self.elements += rhs.elements;
        self.clock_regressions += rhs.clock_regressions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut c = OpCounters::new();
        c.probe_reads = 10;
        c.insert_writes = 5;
        c.clean_reads = 3;
        c.clean_writes = 2;
        c.elements = 4;
        assert_eq!(c.total_mem_ops(), 20);
        assert!((c.mem_ops_per_element() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(OpCounters::new().mem_ops_per_element(), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = OpCounters {
            probe_reads: 1,
            insert_writes: 2,
            clean_reads: 3,
            clean_writes: 4,
            hash_evals: 5,
            elements: 6,
            clock_regressions: 7,
        };
        a += a;
        assert_eq!(a.probe_reads, 2);
        assert_eq!(a.elements, 12);
        assert_eq!(a.clock_regressions, 14);
        a.reset();
        assert_eq!(a, OpCounters::default());
    }

    #[test]
    fn merged_sums_across_shards() {
        let shard = OpCounters {
            probe_reads: 7,
            insert_writes: 2,
            clean_reads: 1,
            clean_writes: 1,
            hash_evals: 3,
            elements: 3,
            clock_regressions: 0,
        };
        let total = OpCounters::merged([shard, shard, OpCounters::default()]);
        assert_eq!(total.probe_reads, 14);
        assert_eq!(total.elements, 6);
        assert_eq!(
            OpCounters::merged(std::iter::empty::<OpCounters>()),
            OpCounters::default()
        );
    }
}
