//! GBF over *time-based* jumping windows (§3.1 extension).
//!
//! "Instead of dividing the entire jumping window equally by counting
//! elements, the time-based jumping window is divided into `Q`
//! sub-windows with the same time expansion. Then each sub-window is
//! equally divided into `R` time units. In Step 1, the cleaning procedure
//! executes once in each time unit, and scans `M/((Q+1)R)` entries."
//!
//! The per-unit cleaning daemon is replayed lazily (see
//! [`crate::tbf_time`] for the same technique): when an observation
//! advances the clock by several units, each skipped unit's wipe chunk —
//! and any sub-window rotations — are executed in order before the
//! element is processed.

use crate::config::ConfigError;
use crate::ops::OpCounters;
use cfd_bits::InterleavedBitMatrix;
use cfd_hash::{DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_windows::time::UnitClock;
use cfd_windows::{TimedDuplicateDetector, Verdict, WindowSpec};

/// Configuration of a [`TimeGbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeGbfConfig {
    /// Number of sub-windows (`Q`).
    pub q: usize,
    /// Time units per sub-window (`R`).
    pub sub_units: u64,
    /// Ticks per time unit.
    pub unit_ticks: u64,
    /// Bits per sub-window Bloom filter (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
}

impl TimeGbfConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions or bad `k`.
    pub fn new(
        q: usize,
        sub_units: u64,
        unit_ticks: u64,
        m: usize,
        k: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = Self {
            q,
            sub_units,
            unit_ticks,
            m,
            k,
            seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Window span in ticks (`Q × R × unit_ticks`).
    #[must_use]
    pub fn window_ticks(&self) -> u64 {
        self.q as u64 * self.sub_units * self.unit_ticks
    }

    /// Groups wiped per time unit (`⌈m / R⌉`): the expired filter is
    /// fully clean one sub-window after it expires, before its lane is
    /// reused.
    #[must_use]
    pub fn clean_chunk(&self) -> usize {
        self.m.div_ceil(self.sub_units as usize)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        if self.sub_units == 0 || self.unit_ticks == 0 {
            return Err(ConfigError::ZeroDimension("time granularity"));
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("filter size m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        Ok(())
    }
}

/// Group-Bloom-filter duplicate detector over time-based jumping windows.
///
/// ```rust
/// use cfd_core::gbf_time::{TimeGbf, TimeGbfConfig};
/// use cfd_windows::{TimedDuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // 6 sub-windows of 10 units of 1000 ticks: a one-minute window.
/// let cfg = TimeGbfConfig::new(6, 10, 1000, 1 << 16, 6, 0)?;
/// let mut d = TimeGbf::new(cfg)?;
/// assert_eq!(d.observe_at(b"ip|ad", 500), Verdict::Distinct);
/// assert_eq!(d.observe_at(b"ip|ad", 30_000), Verdict::Duplicate);
/// assert_eq!(d.observe_at(b"ip|ad", 200_000), Verdict::Distinct);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeGbf {
    cfg: TimeGbfConfig,
    matrix: InterleavedBitMatrix,
    units: UnitClock,
    /// Absolute unit of the last observation.
    cur_unit: Option<u64>,
    /// Current insertion lane.
    slot: usize,
    /// Completed sub-windows since the stream start.
    completed: u64,
    active_mask: Vec<u64>,
    spare: Option<usize>,
    clean_next: usize,
    clean_chunk: usize,
    ops: OpCounters,
    probe_buf: Vec<usize>,
    acc: Vec<u64>,
}

impl TimeGbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: TimeGbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let matrix = InterleavedBitMatrix::new(cfg.m, cfg.q + 1);
        let mut active_mask = vec![0u64; matrix.lane_words()];
        active_mask[0] |= 1;
        Ok(Self {
            units: UnitClock::new(cfg.unit_ticks),
            cur_unit: None,
            slot: 0,
            completed: 0,
            active_mask,
            spare: None,
            clean_next: 0,
            clean_chunk: cfg.clean_chunk(),
            ops: OpCounters::new(),
            probe_buf: vec![0; cfg.k],
            acc: vec![0; matrix.lane_words()],
            matrix,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TimeGbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    #[inline]
    fn mask_set(mask: &mut [u64], lane: usize) {
        mask[lane / 64] |= 1u64 << (lane % 64);
    }

    #[inline]
    fn mask_clear(mask: &mut [u64], lane: usize) {
        mask[lane / 64] &= !(1u64 << (lane % 64));
    }

    /// Wipes one unit's chunk of the spare lane.
    fn wipe_chunk(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            let count = self.clean_chunk.min(remaining);
            if count > 0 {
                let touched = self.matrix.clear_lane_range(spare, self.clean_next, count);
                self.ops.clean_writes += touched as u64;
                self.clean_next += count;
            }
            if self.clean_next == self.cfg.m {
                self.spare = None;
                self.clean_next = 0;
            }
        }
    }

    /// Finishes the in-progress wipe immediately.
    fn wipe_finish(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            if remaining > 0 {
                let touched = self
                    .matrix
                    .clear_lane_range(spare, self.clean_next, remaining);
                self.ops.clean_writes += touched as u64;
            }
            self.spare = None;
            self.clean_next = 0;
        }
    }

    /// One sub-window boundary: retire the oldest lane, move insertion to
    /// the (already clean) next lane.
    fn rotate(&mut self) {
        self.wipe_finish();
        let slots = self.cfg.q + 1;
        self.slot = (self.slot + 1) % slots;
        self.completed += 1;
        Self::mask_set(&mut self.active_mask, self.slot);
        if self.completed >= self.cfg.q as u64 {
            let expired = (self.slot + 1) % slots;
            Self::mask_clear(&mut self.active_mask, expired);
            self.spare = Some(expired);
            self.clean_next = 0;
        }
    }

    /// Advances the lazy per-unit daemon to `unit`.
    fn advance_to(&mut self, unit: u64) {
        let last = match self.cur_unit {
            None => {
                self.cur_unit = Some(unit);
                // Align the rotation phase with the first observation's
                // sub-window so boundaries land on absolute multiples.
                return;
            }
            Some(last) => last,
        };
        let unit = unit.max(last);
        let crossed = unit - last;
        let full_window_units = (self.cfg.q as u64 + 1) * self.cfg.sub_units;
        if crossed >= full_window_units {
            // Everything expired during the quiet gap.
            self.matrix.clear_all();
            self.ops.clean_writes += (self.cfg.m * self.matrix.lane_words()) as u64;
            self.spare = None;
            self.clean_next = 0;
            // Keep the rotation phase consistent with absolute units.
            let rotations = unit / self.cfg.sub_units - last / self.cfg.sub_units;
            self.slot =
                (self.slot + (rotations % (self.cfg.q as u64 + 1)) as usize) % (self.cfg.q + 1);
            self.completed += rotations;
            self.active_mask.iter_mut().for_each(|w| *w = 0);
            Self::mask_set(&mut self.active_mask, self.slot);
        } else {
            for u in (last + 1)..=unit {
                if u % self.cfg.sub_units == 0 {
                    self.rotate();
                } else {
                    self.wipe_chunk();
                }
            }
        }
        self.cur_unit = Some(unit);
    }
}

impl TimeGbf {
    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::new(self.cfg.seed)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(DoubleHashFamily::new(self.cfg.seed).pair(id))
    }

    /// The stateful half of a timed observation; `observe_at(id, tick)` ≡
    /// `apply_at(plan(id), tick)`. The hash evaluation is accounted to
    /// this element regardless of where it was computed.
    pub fn apply_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.advance_to(self.units.unit_of(tick));

        plan.fill(self.cfg.m, &mut self.probe_buf);
        self.acc.copy_from_slice(&self.active_mask);
        for &g in &self.probe_buf {
            self.matrix.and_group_into(g, &mut self.acc);
        }
        self.ops.probe_reads += (self.probe_buf.len() * self.matrix.lane_words()) as u64;

        if self.acc.iter().any(|&w| w != 0) {
            Verdict::Duplicate
        } else {
            let cur = self.slot;
            for &g in &self.probe_buf {
                self.matrix.set(g, cur);
            }
            self.ops.insert_writes += self.probe_buf.len() as u64;
            Verdict::Distinct
        }
    }
}

impl TimedDuplicateDetector for TimeGbf {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let plan = self.plan(id);
        self.apply_at(plan, tick)
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeJumping {
            ticks: self.cfg.window_ticks(),
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.matrix.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "time-gbf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tgbf(q: usize, sub_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeGbf {
        TimeGbf::new(TimeGbfConfig::new(q, sub_units, unit_ticks, m, k, 13).unwrap()).unwrap()
    }

    #[test]
    fn duplicate_within_window() {
        let mut d = tgbf(4, 10, 100, 1 << 14, 6);
        assert_eq!(d.observe_at(b"x", 0), Verdict::Distinct);
        assert_eq!(d.observe_at(b"x", 900), Verdict::Duplicate);
        // Still inside the 4 x 10-unit window (units 0..40).
        assert_eq!(d.observe_at(b"x", 3_500), Verdict::Duplicate);
    }

    #[test]
    fn expires_after_window_passes() {
        let mut d = tgbf(4, 10, 100, 1 << 14, 6);
        d.observe_at(b"x", 0); // unit 0, sub-window 0
                               // Advance past 4 full sub-windows (unit 40+): x's filter expired.
        assert_eq!(d.observe_at(b"x", 4_100), Verdict::Distinct);
    }

    #[test]
    fn long_gap_clears_all_state() {
        let mut d = tgbf(3, 4, 10, 1 << 12, 5);
        d.observe_at(b"a", 0);
        d.observe_at(b"b", 15);
        // Gap far beyond (q+1) sub-windows.
        assert_eq!(d.observe_at(b"a", 100_000), Verdict::Distinct);
        assert_eq!(d.observe_at(b"b", 100_010), Verdict::Distinct);
    }

    #[test]
    fn rotation_keeps_recent_subwindows_active() {
        let mut d = tgbf(3, 5, 10, 1 << 13, 5);
        d.observe_at(b"k", 0); // sub-window 0 (units 0..5)
                               // Move to sub-window 2 (units 10..15): window = subs 0,1,2.
        assert_eq!(d.observe_at(b"k", 120), Verdict::Duplicate);
        // Sub-window 3 (units 15..20): window = subs 1,2,3; k from sub 0 gone.
        assert_eq!(d.observe_at(b"k", 160), Verdict::Distinct);
    }

    #[test]
    fn stale_bits_do_not_resurface_across_lane_reuse() {
        let mut d = tgbf(2, 3, 1, 4_096, 5);
        let mut tick = 0u64;
        for round in 0..100u64 {
            // One observation per unit; the key reappears every 9 units,
            // well past the 6-unit window.
            assert_eq!(
                d.observe_at(b"cycler", tick),
                Verdict::Distinct,
                "round {round}"
            );
            for j in 0..8 {
                tick += 1;
                d.observe_at(&(round * 100 + j).to_le_bytes(), tick);
            }
            tick += 1;
        }
    }

    #[test]
    fn dense_stream_no_false_negatives_within_coverage() {
        // Jumping-window guarantee: anything valid within the last q-1
        // FULL sub-windows plus the current one is flagged.
        let mut d = tgbf(4, 10, 1, 1 << 14, 6);
        for i in 0..5_000u64 {
            let key = (i % 37).to_le_bytes();
            let v = d.observe_at(&key, i);
            // Re-observe immediately: must always be duplicate.
            assert_eq!(d.observe_at(&key, i), Verdict::Duplicate, "i={i} v={v:?}");
        }
    }

    #[test]
    fn out_of_order_ticks_clamped() {
        let mut d = tgbf(4, 10, 100, 1 << 12, 5);
        d.observe_at(b"a", 50_000);
        assert_eq!(d.observe_at(b"a", 10), Verdict::Duplicate);
    }

    #[test]
    fn config_validation() {
        assert!(TimeGbfConfig::new(0, 1, 1, 8, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 0, 1, 8, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 1, 1, 0, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 1, 1, 8, 0, 0).is_err());
        let cfg = TimeGbfConfig::new(6, 10, 1000, 1 << 10, 4, 0).unwrap();
        assert_eq!(cfg.window_ticks(), 60_000);
        assert_eq!(cfg.clean_chunk(), (1 << 10) / 10 + 1);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = tgbf(3, 5, 10, 1 << 10, 4);
        d.observe_at(b"k", 0);
        d.reset();
        assert_eq!(d.observe_at(b"k", 0), Verdict::Distinct);
    }
}
