//! GBF over *time-based* jumping windows (§3.1 extension).
//!
//! "Instead of dividing the entire jumping window equally by counting
//! elements, the time-based jumping window is divided into `Q`
//! sub-windows with the same time expansion. Then each sub-window is
//! equally divided into `R` time units. In Step 1, the cleaning procedure
//! executes once in each time unit, and scans `M/((Q+1)R)` entries."
//!
//! The per-unit cleaning daemon is replayed lazily (see
//! [`crate::tbf_time`] for the same technique): when an observation
//! advances the clock by several units, each skipped unit's wipe chunk —
//! and any sub-window rotations — are executed in order before the
//! element is processed. A quiet gap of a full `(Q+1)`-sub-window cycle
//! or more clears the matrix outright.
//!
//! # Hot path
//!
//! Mirrors the count-based [`crate::Gbf`]: pure hashing
//! ([`TimeGbf::plan`] / [`TimeGbf::planner`]) split from stateful replay.
//! The batch entry points hash the whole batch in one multi-lane pass,
//! expand probe groups into one flat buffer, and replay with
//! one-line-ahead prefetch; the unit clock (and with it all cleaning and
//! rotation work) is consulted only when an element's tick crosses into
//! a new unit. [`ProbeLayout::Blocked`] confines each element's `k`
//! groups to one cache line of the interleaved matrix, with the same
//! `k_eff = min(k, slots/2)` saturation cap as the count-based detectors.
//!
//! # Out-of-order ticks
//!
//! Same policy as [`crate::tbf_time`]: ticks behind the high-water unit
//! are clamped to the current unit and counted in
//! [`OpCounters::clock_regressions`]. The late click still probes every
//! active sub-window, so late duplicates are flagged; a late distinct
//! click is simply remembered as if it arrived now.

use crate::backend::{self, BatchBufs, ProbeCore, TimedCore};
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::InterleavedBitMatrix;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::time::UnitClock;
use cfd_windows::{TimedDuplicateDetector, Verdict, WindowSpec};
use std::cell::Cell;

/// Dynamic [`TimeGbf`] state captured by a checkpoint.
pub(crate) struct TimeGbfState {
    /// Absolute high-water unit (`None` before the first observation).
    pub cur_unit: Option<u64>,
    /// Current insertion lane.
    pub slot: usize,
    /// Completed sub-windows since the stream start.
    pub completed: u64,
    /// Lane being wiped, if a wipe is in flight.
    pub spare: Option<usize>,
    /// Next group index the incremental wipe will visit.
    pub clean_next: usize,
    /// Active-lane bitmask words.
    pub mask_words: Vec<u64>,
    /// Raw words of the interleaved matrix.
    pub matrix_words: Vec<u64>,
}

/// Configuration of a [`TimeGbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeGbfConfig {
    /// Number of sub-windows (`Q`).
    pub q: usize,
    /// Time units per sub-window (`R`).
    pub sub_units: u64,
    /// Ticks per time unit.
    pub unit_ticks: u64,
    /// Bits per sub-window Bloom filter (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
    /// Probe-index derivation scheme.
    pub probe: ProbeLayout,
}

impl TimeGbfConfig {
    /// Creates a validated configuration with scattered probing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions, bad `k`, or window
    /// parameters whose products overflow `u64`.
    pub fn new(
        q: usize,
        sub_units: u64,
        unit_ticks: u64,
        m: usize,
        k: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = Self {
            q,
            sub_units,
            unit_ticks,
            m,
            k,
            seed,
            probe: ProbeLayout::Scattered,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Returns the configuration with the probe layout replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BlockedUnsupported`] when `Blocked` is
    /// requested but the group stride / matrix shape cannot form blocks.
    pub fn with_probe(mut self, probe: ProbeLayout) -> Result<Self, ConfigError> {
        self.probe = probe;
        if probe == ProbeLayout::Blocked && self.block_geometry().is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: self.group_bits(),
                m: self.m,
            });
        }
        Ok(self)
    }

    /// Bits per group in the interleaved matrix: `Q + 1` lanes padded to
    /// whole words (the matrix stride, which is what blocked probing
    /// must respect).
    #[must_use]
    pub fn group_bits(&self) -> usize {
        (self.q + 1).div_ceil(64) * 64
    }

    /// The cache-line block geometry, when `probe` is blocked.
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        match self.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => BlockGeometry::for_line(self.m, self.group_bits()),
        }
    }

    /// Window span in ticks (`Q × R × unit_ticks`). Saturating:
    /// validation rejects configurations where the true product
    /// overflows.
    #[must_use]
    pub fn window_ticks(&self) -> u64 {
        (self.q as u64)
            .saturating_mul(self.sub_units)
            .saturating_mul(self.unit_ticks)
    }

    /// Units covered by a full `(Q+1)`-lane rotation cycle; a quiet gap
    /// of at least this many units leaves no live bit. Saturating, like
    /// [`TimeGbfConfig::window_ticks`].
    #[must_use]
    pub fn full_cycle_units(&self) -> u64 {
        (self.q as u64 + 1).saturating_mul(self.sub_units)
    }

    /// Groups wiped per time unit (`⌈m / R⌉`): the expired filter is
    /// fully clean one sub-window after it expires, before its lane is
    /// reused.
    #[must_use]
    pub fn clean_chunk(&self) -> usize {
        self.m
            .div_ceil(usize::try_from(self.sub_units.max(1)).unwrap_or(usize::MAX))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        if self.sub_units == 0 || self.unit_ticks == 0 {
            return Err(ConfigError::ZeroDimension("time granularity"));
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("filter size m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        if (self.q as u64)
            .checked_mul(self.sub_units)
            .and_then(|u| u.checked_mul(self.unit_ticks))
            .is_none()
        {
            return Err(ConfigError::ArithmeticOverflow {
                what: "window span Q * R * unit_ticks",
            });
        }
        if (self.q as u64)
            .checked_add(1)
            .and_then(|l| l.checked_mul(self.sub_units))
            .is_none()
        {
            return Err(ConfigError::ArithmeticOverflow {
                what: "rotation cycle (Q + 1) * R",
            });
        }
        Ok(())
    }
}

/// Group-Bloom-filter duplicate detector over time-based jumping windows.
///
/// ```rust
/// use cfd_core::gbf_time::{TimeGbf, TimeGbfConfig};
/// use cfd_windows::{TimedDuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // 6 sub-windows of 10 units of 1000 ticks: a one-minute window.
/// let cfg = TimeGbfConfig::new(6, 10, 1000, 1 << 16, 6, 0)?;
/// let mut d = TimeGbf::new(cfg)?;
/// assert_eq!(d.observe_at(b"ip|ad", 500), Verdict::Distinct);
/// assert_eq!(d.observe_at(b"ip|ad", 30_000), Verdict::Duplicate);
/// assert_eq!(d.observe_at(b"ip|ad", 200_000), Verdict::Distinct);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeGbf {
    cfg: TimeGbfConfig,
    matrix: InterleavedBitMatrix,
    units: UnitClock,
    family: DoubleHashFamily,
    /// Absolute unit of the last observation.
    cur_unit: Option<u64>,
    /// Current insertion lane.
    slot: usize,
    /// Completed sub-windows since the stream start.
    completed: u64,
    active_mask: Vec<u64>,
    spare: Option<usize>,
    clean_next: usize,
    clean_chunk: usize,
    ops: OpCounters,
    bufs: BatchBufs,
    acc: Vec<u64>,
    /// Blocked-probe geometry; `None` in scattered mode.
    geo: Option<BlockGeometry>,
    /// Probes actually issued per element (`k` scattered, capped in
    /// blocked mode).
    k_eff: usize,
    /// `O(m)` occupancy scans performed (snapshot-cadence only).
    scans: Cell<u64>,
}

impl TimeGbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: TimeGbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let geo = match cfg.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => Some(cfg.block_geometry().ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cfg.group_bits(),
                    m: cfg.m,
                },
            )?),
        };
        let k_eff = backend::effective_k(cfg.k, geo.as_ref());
        let matrix = InterleavedBitMatrix::new(cfg.m, cfg.q + 1);
        let mut active_mask = vec![0u64; matrix.lane_words()];
        active_mask[0] |= 1;
        Ok(Self {
            units: UnitClock::new(cfg.unit_ticks),
            family: DoubleHashFamily::new(cfg.seed),
            cur_unit: None,
            slot: 0,
            completed: 0,
            active_mask,
            spare: None,
            clean_next: 0,
            clean_chunk: cfg.clean_chunk(),
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            acc: vec![0; matrix.lane_words()],
            geo,
            k_eff,
            scans: Cell::new(0),
            matrix,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TimeGbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Probes issued per element: `k` in scattered mode, `min(k,
    /// slots/2)` in blocked mode.
    #[must_use]
    pub fn effective_hash_count(&self) -> usize {
        self.k_eff
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (TimeGbfConfig, TimeGbfState) {
        (
            self.cfg,
            TimeGbfState {
                cur_unit: self.cur_unit,
                slot: self.slot,
                completed: self.completed,
                spare: self.spare,
                clean_next: self.clean_next,
                mask_words: self.active_mask.clone(),
                matrix_words: self.matrix.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(cfg: TimeGbfConfig, state: TimeGbfState) -> Option<Self> {
        let lanes = cfg.q.checked_add(1)?;
        // Size-check against the payload BEFORE allocating.
        let lane_words = lanes.div_ceil(64);
        let expected_matrix_words = cfg.m.checked_mul(lane_words)?;
        if state.matrix_words.len() != expected_matrix_words
            || state.mask_words.len() != lane_words
            || state.slot >= lanes
            || state.spare.is_some_and(|s| s >= lanes)
        {
            return None;
        }
        // Wipe-cursor invariant: a cursor only exists while a lane is
        // being wiped; it resets to 0 the moment the wipe retires.
        match state.spare {
            Some(_) if state.clean_next >= cfg.m => return None,
            None if state.clean_next != 0 => return None,
            _ => {}
        }
        let mut d = Self::new(cfg).ok()?;
        d.cur_unit = state.cur_unit;
        d.slot = state.slot;
        d.completed = state.completed;
        d.spare = state.spare;
        d.clean_next = state.clean_next;
        d.active_mask = state.mask_words;
        d.matrix = InterleavedBitMatrix::from_words(state.matrix_words, cfg.m, lanes)?;
        Some(d)
    }

    #[inline]
    fn mask_set(mask: &mut [u64], lane: usize) {
        mask[lane / 64] |= 1u64 << (lane % 64);
    }

    #[inline]
    fn mask_clear(mask: &mut [u64], lane: usize) {
        mask[lane / 64] &= !(1u64 << (lane % 64));
    }

    /// Wipes one unit's chunk of the spare lane.
    fn wipe_chunk(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            let count = self.clean_chunk.min(remaining);
            if count > 0 {
                let touched = self.matrix.clear_lane_range(spare, self.clean_next, count);
                self.ops.clean_writes += touched as u64;
                self.clean_next += count;
            }
            if self.clean_next == self.cfg.m {
                self.spare = None;
                self.clean_next = 0;
            }
        }
    }

    /// Finishes the in-progress wipe immediately.
    fn wipe_finish(&mut self) {
        if let Some(spare) = self.spare {
            let remaining = self.cfg.m - self.clean_next;
            if remaining > 0 {
                let touched = self
                    .matrix
                    .clear_lane_range(spare, self.clean_next, remaining);
                self.ops.clean_writes += touched as u64;
            }
            self.spare = None;
            self.clean_next = 0;
        }
    }

    /// One sub-window boundary: retire the oldest lane, move insertion to
    /// the next lane. The incoming lane is guaranteed fully clean:
    /// either its wipe finished during the preceding sub-window's units,
    /// or [`TimeGbf::wipe_finish`] completes the remainder here before
    /// the lane index advances onto it.
    fn rotate(&mut self) {
        self.wipe_finish();
        let slots = self.cfg.q + 1;
        self.slot = (self.slot + 1) % slots;
        self.completed = self.completed.saturating_add(1);
        Self::mask_set(&mut self.active_mask, self.slot);
        if self.completed >= self.cfg.q as u64 {
            let expired = (self.slot + 1) % slots;
            Self::mask_clear(&mut self.active_mask, expired);
            self.spare = Some(expired);
            self.clean_next = 0;
        }
    }

    /// Advances the lazy per-unit daemon to `unit`.
    ///
    /// Out-of-order policy: a unit behind the high-water mark is clamped
    /// to it (time never moves backwards) and counted in
    /// [`OpCounters::clock_regressions`].
    fn advance_to(&mut self, unit: u64) {
        let last = match self.cur_unit {
            None => {
                self.cur_unit = Some(unit);
                // Align the rotation phase with the first observation's
                // sub-window so boundaries land on absolute multiples.
                return;
            }
            Some(last) => last,
        };
        if unit <= last {
            if unit < last {
                self.ops.clock_regressions += 1;
            }
            // `unit == last` is the common same-unit case: nothing to
            // replay, and skipping it keeps `last + 1` below from
            // overflowing when the clock sits at `u64::MAX`.
            return;
        }
        let crossed = unit - last;
        if crossed >= self.cfg.full_cycle_units() {
            // Everything expired during the quiet gap.
            self.matrix.clear_all();
            self.ops.clean_writes += (self.cfg.m * self.matrix.lane_words()) as u64;
            self.spare = None;
            self.clean_next = 0;
            // Keep the rotation phase consistent with absolute units.
            let rotations = unit / self.cfg.sub_units - last / self.cfg.sub_units;
            self.slot =
                (self.slot + (rotations % (self.cfg.q as u64 + 1)) as usize) % (self.cfg.q + 1);
            self.completed = self.completed.saturating_add(rotations);
            self.active_mask.iter_mut().for_each(|w| *w = 0);
            Self::mask_set(&mut self.active_mask, self.slot);
        } else {
            for u in (last + 1)..=unit {
                if u % self.cfg.sub_units == 0 {
                    self.rotate();
                } else {
                    self.wipe_chunk();
                }
            }
        }
        self.cur_unit = Some(unit);
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of a timed observation; `observe_at(id, tick)` ≡
    /// `apply_at(plan(id), tick)`. The hash evaluation is accounted to
    /// this element regardless of where it was computed.
    pub fn apply_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan_at(self, &mut bufs, plan, tick);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans, one tick per plan, with the
    /// same lookahead prefetch as `observe_batch_at` — the stateful half
    /// of the sharded hash-once path.
    ///
    /// # Panics
    /// Panics if `plans.len() != ticks.len()`.
    pub fn apply_batch_at(&mut self, plans: &[ProbePlan], ticks: &[u64]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_at_into(plans, ticks, &mut out);
        out
    }

    /// Allocation-free [`TimeGbf::apply_batch_at`]: verdicts go into
    /// `out` (cleared first, capacity reused).
    ///
    /// # Panics
    /// Panics if `plans.len() != ticks.len()`.
    pub fn apply_batch_at_into(
        &mut self,
        plans: &[ProbePlan],
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_at_into(self, &mut bufs, plans, ticks, out);
        self.bufs = bufs;
    }

    /// [`TimeGbf::apply_at`] with the probe groups already expanded and
    /// the clock already advanced — the innermost stateful step, shared
    /// by the per-click and batch paths: probe all active sub-windows
    /// with one AND-chain, insert into the current lane when distinct.
    fn probe_insert(&mut self, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.acc.copy_from_slice(&self.active_mask);
        for &g in probes {
            self.matrix.and_group_into(g, &mut self.acc);
        }
        self.ops.probe_reads += (probes.len() * self.matrix.lane_words()) as u64;

        if self.acc.iter().any(|&w| w != 0) {
            Verdict::Duplicate
        } else {
            let cur = self.slot;
            for &g in probes {
                self.matrix.set(g, cur);
            }
            self.ops.insert_writes += probes.len() as u64;
            Verdict::Distinct
        }
    }
}

impl ProbeCore for TimeGbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cfg.m
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.k_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.matrix.prefetch(idx);
    }
}

impl TimedCore for TimeGbf {
    #[inline]
    fn unit_of(&self, tick: u64) -> u64 {
        self.units.unit_of(tick)
    }

    #[inline]
    fn high_water(&self) -> Option<u64> {
        self.cur_unit
    }

    #[inline]
    fn advance_to(&mut self, unit: u64) -> u64 {
        Self::advance_to(self, unit);
        self.cur_unit.unwrap_or(unit)
    }

    /// The GBF matrix stores lane bits, not stamps; the replay's cached
    /// stamp is unused.
    #[inline]
    fn stamp_of(&self, _unit: u64) -> u64 {
        0
    }

    #[inline]
    fn note_regression(&mut self) {
        self.ops.clock_regressions += 1;
    }

    #[inline]
    fn apply_probes_at(&mut self, _plan: ProbePlan, probes: &[usize], _stamp_now: u64) -> Verdict {
        self.probe_insert(probes)
    }
}

impl TimedDuplicateDetector for TimeGbf {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let plan = self.plan(id);
        self.apply_at(plan, tick)
    }

    fn observe_batch_at_into(&mut self, ids: &[&[u8]], ticks: &[u64], out: &mut Vec<Verdict>) {
        // Hash the whole batch first (pure, multi-lane over equal-length
        // runs), expand to one flat probe buffer, then replay against
        // matrix state with lookahead prefetch — the same latency-hiding
        // schedule as `Gbf::observe_batch`.
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_at_into(self, &mut bufs, planner, ids, ticks, out);
        self.bufs = bufs;
    }

    fn observe_flat_at_into(
        &mut self,
        keys: &[u8],
        key_len: usize,
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_at_into(self, &mut bufs, planner, keys, key_len, ticks, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeJumping {
            ticks: self.cfg.window_ticks(),
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.matrix.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "time-gbf"
    }
}

impl DetectorStats for TimeGbf {
    fn stats_name(&self) -> &'static str {
        "time-gbf"
    }

    /// Fill ratio of each *active* lane. `O(m)` per lane — snapshot
    /// cadence only.
    fn fill_ratios(&self) -> Vec<f64> {
        (0..=self.cfg.q)
            .filter(|&lane| self.active_mask[lane / 64] >> (lane % 64) & 1 == 1)
            .map(|lane| {
                self.scans.set(self.scans.get() + 1);
                self.matrix.count_ones_in_lane(lane) as f64 / self.cfg.m as f64
            })
            .collect()
    }

    /// Fraction of the spare lane's wipe still outstanding.
    fn cleaning_backlog(&self) -> f64 {
        if self.spare.is_some() {
            (self.cfg.m - self.clean_next) as f64 / self.cfg.m as f64
        } else {
            0.0
        }
    }

    /// Normalized position of the incremental wipe through the spare lane.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cfg.m as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k_eff` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// A fresh key is flagged iff some active lane has all `k_eff`
    /// probed bits set: `1 − Π over active lanes (1 − fill^k_eff)` at
    /// the live fill.
    fn estimated_fp(&self) -> f64 {
        let miss_all: f64 = self
            .fill_ratios()
            .iter()
            .map(|fill| 1.0 - fill.powi(self.k_eff as i32))
            .product();
        1.0 - miss_all
    }

    /// Single-scan override: derive `estimated_fp` from the same lane
    /// pass as `fill_ratios` so health sampling costs one scan per lane.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fills = self.fill_ratios();
        let miss_all: f64 = fills
            .iter()
            .map(|fill| 1.0 - fill.powi(self.k_eff as i32))
            .product();
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: fills,
            cleaning_backlog: self.cleaning_backlog(),
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: 1.0 - miss_all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactTimeJumpingDedup;

    fn tgbf(q: usize, sub_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeGbf {
        TimeGbf::new(TimeGbfConfig::new(q, sub_units, unit_ticks, m, k, 13).unwrap()).unwrap()
    }

    fn blocked_tgbf(q: usize, sub_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeGbf {
        let cfg = TimeGbfConfig::new(q, sub_units, unit_ticks, m, k, 13)
            .unwrap()
            .with_probe(ProbeLayout::Blocked)
            .unwrap();
        TimeGbf::new(cfg).unwrap()
    }

    /// The satellite-3 invariant: outside the active window, no lane may
    /// hold a stale bit — retired lanes must be fully wiped before
    /// reuse, and the in-flight spare must be clean up to its cursor.
    fn assert_no_stale_bits(d: &TimeGbf, ctx: &str) {
        for lane in 0..=d.cfg.q {
            let active = d.active_mask[lane / 64] >> (lane % 64) & 1 == 1;
            if active {
                continue;
            }
            if Some(lane) == d.spare {
                for g in 0..d.clean_next {
                    assert!(
                        !d.matrix.get(g, lane),
                        "{ctx}: stale bit in wiped prefix of spare lane {lane} group {g}"
                    );
                }
            } else {
                assert_eq!(
                    d.matrix.count_ones_in_lane(lane),
                    0,
                    "{ctx}: stale bits in inactive lane {lane}"
                );
            }
        }
    }

    #[test]
    fn duplicate_within_window() {
        let mut d = tgbf(4, 10, 100, 1 << 14, 6);
        assert_eq!(d.observe_at(b"x", 0), Verdict::Distinct);
        assert_eq!(d.observe_at(b"x", 900), Verdict::Duplicate);
        // Still inside the 4 x 10-unit window (units 0..40).
        assert_eq!(d.observe_at(b"x", 3_500), Verdict::Duplicate);
    }

    #[test]
    fn expires_after_window_passes() {
        let mut d = tgbf(4, 10, 100, 1 << 14, 6);
        d.observe_at(b"x", 0); // unit 0, sub-window 0
                               // Advance past 4 full sub-windows (unit 40+): x's filter expired.
        assert_eq!(d.observe_at(b"x", 4_100), Verdict::Distinct);
    }

    #[test]
    fn long_gap_clears_all_state() {
        let mut d = tgbf(3, 4, 10, 1 << 12, 5);
        d.observe_at(b"a", 0);
        d.observe_at(b"b", 15);
        // Gap far beyond (q+1) sub-windows.
        assert_eq!(d.observe_at(b"a", 100_000), Verdict::Distinct);
        assert_eq!(d.observe_at(b"b", 100_010), Verdict::Distinct);
        assert_no_stale_bits(&d, "after quiet gap");
    }

    #[test]
    fn rotation_keeps_recent_subwindows_active() {
        let mut d = tgbf(3, 5, 10, 1 << 13, 5);
        d.observe_at(b"k", 0); // sub-window 0 (units 0..5)
                               // Move to sub-window 2 (units 10..15): window = subs 0,1,2.
        assert_eq!(d.observe_at(b"k", 120), Verdict::Duplicate);
        // Sub-window 3 (units 15..20): window = subs 1,2,3; k from sub 0 gone.
        assert_eq!(d.observe_at(b"k", 160), Verdict::Distinct);
    }

    #[test]
    fn stale_bits_do_not_resurface_across_lane_reuse() {
        let mut d = tgbf(2, 3, 1, 4_096, 5);
        let mut tick = 0u64;
        for round in 0..100u64 {
            // One observation per unit; the key reappears every 9 units,
            // well past the 6-unit window.
            assert_eq!(
                d.observe_at(b"cycler", tick),
                Verdict::Distinct,
                "round {round}"
            );
            for j in 0..8 {
                tick += 1;
                d.observe_at(&(round * 100 + j).to_le_bytes(), tick);
            }
            tick += 1;
        }
    }

    #[test]
    fn arbitrary_jumps_leave_no_stale_bits() {
        // m = 1000 is NOT a multiple of sub_units = 7 (chunk = 143,
        // 143 * 6 = 858 < 1000: the rotation-unit wipe_finish must cover
        // the 142-group remainder). Jump patterns cover: intra-unit,
        // single-unit, multi-unit within a sub-window, jumps spanning
        // 1..several rotations, and jumps just below the quiet-gap
        // threshold.
        let jumps: [u64; 12] = [0, 1, 3, 6, 7, 8, 13, 14, 20, 27, 55, 27];
        let mut d = tgbf(7, 7, 1, 1_000, 4);
        let mut tick = 0u64;
        let mut i = 0u64;
        for round in 0..200u64 {
            tick += jumps[(round % 12) as usize];
            for _ in 0..5 {
                i += 1;
                d.observe_at(&i.to_le_bytes(), tick);
            }
            assert_no_stale_bits(&d, &format!("round {round} tick {tick}"));
        }
    }

    #[test]
    fn jumps_beyond_one_rotation_wipe_every_retired_lane() {
        // Jump exactly q units (> R) repeatedly: several rotations per
        // advance, so wipe_finish (not the per-unit chunks) must do the
        // clearing.
        let mut d = tgbf(5, 3, 1, 777, 4);
        for step in 0..100u64 {
            let tick = step * 5; // 5 units per observation = R + 2
            d.observe_at(&step.to_le_bytes(), tick);
            assert_no_stale_bits(&d, &format!("step {step}"));
        }
    }

    #[test]
    fn dense_stream_no_false_negatives_within_coverage() {
        // Jumping-window guarantee: anything valid within the last q-1
        // FULL sub-windows plus the current one is flagged.
        let mut d = tgbf(4, 10, 1, 1 << 14, 6);
        for i in 0..5_000u64 {
            let key = (i % 37).to_le_bytes();
            let v = d.observe_at(&key, i);
            // Re-observe immediately: must always be duplicate.
            assert_eq!(d.observe_at(&key, i), Verdict::Duplicate, "i={i} v={v:?}");
        }
    }

    #[test]
    fn zero_false_negatives_vs_exact_timed_oracle() {
        let mut d = tgbf(4, 8, 10, 1 << 14, 6);
        let mut oracle = ExactTimeJumpingDedup::new(4, 8, 10);
        let mut tick = 0u64;
        for i in 0..30_000u64 {
            tick += match i % 7 {
                0 => 0,
                1 | 2 => 3,
                3 => 17,
                4 => 1,
                5 => 25,
                _ => 6,
            };
            let key = (i % 61).to_le_bytes();
            let got = d.observe_at(&key, tick);
            let want = oracle.observe_at(&key, tick);
            if want == Verdict::Duplicate {
                assert_eq!(
                    got,
                    Verdict::Duplicate,
                    "false negative at i={i} tick={tick}"
                );
            }
        }
    }

    #[test]
    fn out_of_order_ticks_clamped_and_counted() {
        let mut d = tgbf(4, 10, 100, 1 << 12, 5);
        d.observe_at(b"a", 50_000);
        assert_eq!(d.ops().clock_regressions, 0);
        assert_eq!(d.observe_at(b"a", 10), Verdict::Duplicate);
        assert_eq!(d.ops().clock_regressions, 1);
        d.observe_at(b"fresh", 51_000);
        assert_eq!(d.ops().clock_regressions, 1);
    }

    #[test]
    fn config_validation() {
        assert!(TimeGbfConfig::new(0, 1, 1, 8, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 0, 1, 8, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 1, 1, 0, 3, 0).is_err());
        assert!(TimeGbfConfig::new(2, 1, 1, 8, 0, 0).is_err());
        let cfg = TimeGbfConfig::new(6, 10, 1000, 1 << 10, 4, 0).unwrap();
        assert_eq!(cfg.window_ticks(), 60_000);
        assert_eq!(cfg.clean_chunk(), (1 << 10) / 10 + 1);
    }

    #[test]
    fn config_rejects_overflowing_windows() {
        // Q * R * unit_ticks overflows.
        let err = TimeGbfConfig::new(1 << 22, 1 << 22, 1 << 22, 8, 3, 0).unwrap_err();
        assert!(matches!(err, ConfigError::ArithmeticOverflow { .. }));
        // (Q + 1) * R overflows even with unit_ticks = 1... requires a
        // huge Q times huge R whose triple product with 1 also
        // overflows, so the span check fires; either way it must err.
        assert!(TimeGbfConfig::new(usize::MAX, u64::MAX, 1, 8, 3, 0).is_err());
    }

    #[test]
    fn ticks_near_u64_max_are_classified_correctly() {
        let mut d = tgbf(4, 4, 1, 1 << 12, 5);
        let base = u64::MAX - 40;
        assert_eq!(d.observe_at(b"edge", base), Verdict::Distinct);
        assert_eq!(d.observe_at(b"edge", base + 10), Verdict::Duplicate);
        // Past q full sub-windows: expired.
        assert_eq!(d.observe_at(b"edge", base + 24), Verdict::Distinct);
        assert_eq!(d.observe_at(b"last", u64::MAX), Verdict::Distinct);
        assert_eq!(d.observe_at(b"last", u64::MAX), Verdict::Duplicate);
    }

    #[test]
    fn batch_matches_sequential() {
        let ids: Vec<Vec<u8>> = (0..6_000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..6_000u64).map(|i| i * 3 / 2).collect();
        let mut sequential = tgbf(6, 32, 40, 1 << 14, 6);
        let mut batched = tgbf(6, 32, 40, 1 << 14, 6);
        let want: Vec<Verdict> = slices
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let mut got = Vec::new();
        for (chunk, tchunk) in slices.chunks(513).zip(ticks.chunks(513)) {
            got.extend(batched.observe_batch_at(chunk, tchunk));
        }
        assert_eq!(got, want);
        // Counter parity: the amortized clock cache must not change any
        // accounting, including clamp events.
        assert_eq!(batched.ops(), sequential.ops());
    }

    #[test]
    fn flat_keys_match_slice_batch() {
        let keys: Vec<[u8; 8]> = (0..4_000u64).map(|i| (i % 311).to_le_bytes()).collect();
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        let slices: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let ticks: Vec<u64> = (0..4_000u64).map(|i| i / 2).collect();
        let mut by_slices = tgbf(5, 16, 16, 1 << 14, 6);
        let mut by_flat = tgbf(5, 16, 16, 1 << 14, 6);
        let want = by_slices.observe_batch_at(&slices, &ticks);
        let mut got = Vec::new();
        by_flat.observe_flat_at_into(&flat, 8, &ticks, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn batch_counts_regressions_like_sequential() {
        let mut seq = tgbf(4, 10, 10, 1 << 12, 4);
        let mut bat = tgbf(4, 10, 10, 1 << 12, 4);
        let ids: Vec<Vec<u8>> = (0..6u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks = [500u64, 40, 41, 700, 10, 900];
        for (id, &t) in slices.iter().zip(&ticks) {
            seq.observe_at(id, t);
        }
        bat.observe_batch_at(&slices, &ticks);
        assert_eq!(seq.ops().clock_regressions, 3);
        assert_eq!(bat.ops(), seq.ops());
    }

    #[test]
    fn blocked_mode_matches_oracle_and_caps_k() {
        let mut d = blocked_tgbf(4, 8, 10, 1 << 14, 10);
        // 64-bit group stride -> 8 slots per line -> k capped at 4.
        assert_eq!(d.effective_hash_count(), 4);
        let mut oracle = ExactTimeJumpingDedup::new(4, 8, 10);
        let mut tick = 0u64;
        for i in 0..20_000u64 {
            tick += i % 5;
            let key = (i % 53).to_le_bytes();
            let got = d.observe_at(&key, tick);
            let want = oracle.observe_at(&key, tick);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "blocked FN at i={i}");
            }
        }
    }

    #[test]
    fn blocked_batch_matches_blocked_sequential() {
        let ids: Vec<Vec<u8>> = (0..5_000u64)
            .map(|i| (i % 600).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..5_000u64).map(|i| i * 2).collect();
        let mut sequential = blocked_tgbf(6, 32, 40, 1 << 14, 6);
        let mut batched = blocked_tgbf(6, 32, 40, 1 << 14, 6);
        let want: Vec<Verdict> = slices
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let got = batched.observe_batch_at(&slices, &ticks);
        assert_eq!(got, want);
    }

    #[test]
    fn occupancy_scans_count_lane_passes_only() {
        let mut d = tgbf(4, 8, 10, 1 << 12, 5);
        let ids: Vec<Vec<u8>> = (0..500u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let ticks: Vec<u64> = (0..500u64).collect();
        d.observe_batch_at(&slices, &ticks);
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let lanes = d.fill_ratios().len() as u64;
        assert_eq!(d.occupancy_scans(), lanes);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 2 * lanes);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = tgbf(3, 5, 10, 1 << 10, 4);
        d.observe_at(b"k", 0);
        d.reset();
        assert_eq!(d.observe_at(b"k", 0), Verdict::Distinct);
    }
}
