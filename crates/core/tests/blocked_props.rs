//! Property tests for the blocked probe layout: whatever the stream,
//! blocked mode keeps the paper's one-sided guarantees (Theorems 1 & 2)
//! and the batch path is a pure optimization.
//!
//! False negatives are counted *self-consistently* (paper Definition 1,
//! same as `tests/common` at the workspace root): a click is a false
//! negative iff the detector previously determined an identical click
//! valid within the current window and still answers `Distinct`. An
//! earlier false positive blocks an insertion, so a later `Distinct` on
//! that key is consistent — and blocked mode trades FP rate for speed,
//! so that chain is more common than in scattered mode.

use cfd_core::config::ProbeLayout;
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_windows::{DuplicateDetector, Verdict};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

fn blocked_tbf(n: usize, m: usize, k: usize, seed: u64) -> Tbf {
    Tbf::new(
        TbfConfig::builder(n)
            .entries(m)
            .hash_count(k)
            .seed(seed)
            .probe(ProbeLayout::Blocked)
            .build()
            .expect("valid blocked tbf config"),
    )
    .expect("valid blocked tbf")
}

fn blocked_gbf(n: usize, q: usize, m: usize, k: usize, seed: u64) -> Gbf {
    Gbf::new(
        GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(k)
            .seed(seed)
            .probe(ProbeLayout::Blocked)
            .build()
            .expect("valid blocked gbf config"),
    )
    .expect("valid blocked gbf")
}

/// Self-consistent sliding-window false negatives (see module docs).
fn sliding_false_negatives<D: DuplicateDetector>(
    detector: &mut D,
    n: usize,
    keys: impl Iterator<Item = Vec<u8>>,
) -> u64 {
    let mut ring: VecDeque<(Vec<u8>, bool)> = VecDeque::with_capacity(n);
    let mut valid: HashSet<Vec<u8>> = HashSet::new();
    let mut false_negatives = 0u64;
    for key in keys {
        let dup = detector.observe(&key).is_duplicate();
        if ring.len() == n {
            let (old, was_valid) = ring.pop_front().expect("ring full");
            if was_valid {
                valid.remove(&old);
            }
        }
        if !dup && valid.contains(&key) {
            false_negatives += 1;
        }
        let counts_as_valid = !dup && !valid.contains(&key);
        if counts_as_valid {
            valid.insert(key.clone());
        }
        ring.push_back((key, counts_as_valid));
    }
    false_negatives
}

/// Self-consistent jumping-window false negatives.
fn jumping_false_negatives<D: DuplicateDetector>(
    detector: &mut D,
    n: usize,
    q: usize,
    keys: impl Iterator<Item = Vec<u8>>,
) -> u64 {
    let sub_len = n.div_ceil(q);
    let mut subs: VecDeque<HashSet<Vec<u8>>> = VecDeque::new();
    subs.push_back(HashSet::new());
    let mut filled = 0usize;
    let mut false_negatives = 0u64;
    for key in keys {
        let dup = detector.observe(&key).is_duplicate();
        let known = subs.iter().any(|s| s.contains(&key));
        if !dup && known {
            false_negatives += 1;
        }
        if !dup && !known {
            subs.back_mut().expect("non-empty").insert(key);
        }
        filled += 1;
        if filled == sub_len {
            filled = 0;
            subs.push_back(HashSet::new());
            if subs.len() > q {
                subs.pop_front();
            }
        }
    }
    false_negatives
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked TBF never misses a click it previously validated inside
    /// the sliding window — Theorem 2's zero-FN survives the layout
    /// change (same deterministic cells written and probed per key).
    #[test]
    fn blocked_tbf_has_zero_false_negatives(
        seed in 0u64..1000,
        period in 3u64..120,
        n_shift in 4usize..9,
        stream in 1000u64..4000,
    ) {
        let n = 1 << n_shift;
        let mut d = blocked_tbf(n, 1 << 13, 6, seed);
        let keys = (0..stream).map(|i| (i % period).to_le_bytes().to_vec());
        prop_assert_eq!(sliding_false_negatives(&mut d, n, keys), 0);
    }

    /// Blocked GBF never misses a click it previously validated inside
    /// the jumping window (Theorem 1), even at starved sizings where
    /// blocked false positives are frequent.
    #[test]
    fn blocked_gbf_has_zero_false_negatives(
        seed in 0u64..1000,
        period in 3u64..120,
        stream in 1000u64..4000,
        m_factor in 3usize..40,
    ) {
        let (n, q) = (256, 8);
        let mut d = blocked_gbf(n, q, (n / q) * m_factor, 6, seed);
        let keys = (0..stream).map(|i| (i % period).to_le_bytes().to_vec());
        prop_assert_eq!(jumping_false_negatives(&mut d, n, q, keys), 0);
    }

    /// The batch path is verdict-identical to per-click observe for any
    /// chunking, in both layouts.
    #[test]
    fn batch_equals_sequential_any_chunking(
        seed in 0u64..1000,
        period in 3u64..400,
        chunk in 1usize..300,
        blocked in any::<bool>(),
    ) {
        let keys: Vec<Vec<u8>> = (0..2500u64).map(|i| (i % period).to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let cfg = TbfConfig::builder(128)
            .entries(1 << 13)
            .hash_count(5)
            .seed(seed)
            .probe(probe)
            .build()
            .expect("cfg");
        let mut sequential = Tbf::new(cfg).expect("tbf");
        let mut batched = Tbf::new(cfg).expect("tbf");
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for c in slices.chunks(chunk) {
            got.extend(batched.observe_batch(c));
        }
        prop_assert_eq!(got, want);
    }

    /// Layout parity: scattered and blocked may disagree only through
    /// extra false positives — under the self-consistent definition
    /// both uphold zero false negatives on the same stream.
    #[test]
    fn scattered_and_blocked_agree_on_true_duplicates(
        seed in 0u64..1000,
        period in 3u64..100,
    ) {
        let n = 128;
        let scattered_cfg = TbfConfig::builder(n)
            .entries(1 << 13)
            .hash_count(6)
            .seed(seed)
            .build()
            .expect("cfg");
        let mut scattered = Tbf::new(scattered_cfg).expect("tbf");
        let mut blocked = blocked_tbf(n, 1 << 13, 6, seed);
        let keys: Vec<Vec<u8>> = (0..2000u64).map(|i| (i % period).to_le_bytes().to_vec()).collect();
        prop_assert_eq!(
            sliding_false_negatives(&mut scattered, n, keys.iter().cloned()),
            0
        );
        prop_assert_eq!(
            sliding_false_negatives(&mut blocked, n, keys.iter().cloned()),
            0
        );
    }
}
