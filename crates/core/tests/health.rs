//! Detector-health integration tests: the `DetectorStats` answers must
//! agree with ground truth observable from the outside (verdict tallies,
//! an all-distinct stream's false positives, shard aggregation).

use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_windows::{DetectorStats, DuplicateDetector, Verdict};

fn gbf(n: usize, q: usize, m: usize, k: usize) -> Gbf {
    Gbf::new(
        GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(k)
            .seed(7)
            .build()
            .unwrap(),
    )
    .unwrap()
}

fn tbf(n: usize, m: usize, k: usize) -> Tbf {
    Tbf::new(
        TbfConfig::builder(n)
            .entries(m)
            .hash_count(k)
            .seed(7)
            .build()
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn observed_counts_match_verdict_tally() {
    let mut d = tbf(256, 1 << 13, 6);
    let mut duplicates = 0u64;
    let total = 5_000u64;
    for i in 0..total {
        if d.observe(&(i % 97).to_le_bytes()) == Verdict::Duplicate {
            duplicates += 1;
        }
    }
    assert_eq!(d.observed_elements(), total);
    assert_eq!(d.observed_duplicates(), duplicates);
    assert!(duplicates > 0, "stream was chosen to contain duplicates");

    let mut g = gbf(256, 8, 1 << 14, 6);
    let mut g_duplicates = 0u64;
    for i in 0..total {
        if g.observe(&(i % 97).to_le_bytes()) == Verdict::Duplicate {
            g_duplicates += 1;
        }
    }
    assert_eq!(g.observed_elements(), total);
    assert_eq!(g.observed_duplicates(), g_duplicates);
}

#[test]
fn gbf_fill_tracks_active_lanes() {
    let (n, q) = (64, 4);
    let mut d = gbf(n, q, 1 << 12, 5);
    assert_eq!(d.fill_ratios().len(), 1, "only the first lane is active");
    for i in 0..(n as u32 * 3) {
        d.observe(&i.to_le_bytes());
    }
    let fills = d.fill_ratios();
    assert_eq!(fills.len(), q, "steady state keeps q lanes active");
    assert!(fills.iter().all(|&f| (0.0..=1.0).contains(&f)));
    assert!(fills.iter().any(|&f| f > 0.0), "inserts must set bits");
    let h = d.health();
    assert_eq!(h.detector, "gbf");
    assert!(h.cleaning_backlog >= 0.0 && h.cleaning_backlog <= 1.0);
    assert!(h.cleaned_entries > 0, "rotations must have wiped lanes");
}

#[test]
fn tbf_sweep_and_occupancy_are_sane() {
    let mut d = tbf(512, 1 << 13, 6);
    for i in 0..5_000u64 {
        d.observe(&i.to_le_bytes());
    }
    let h = d.health();
    assert_eq!(h.detector, "tbf");
    assert!((0.0..1.0).contains(&h.sweep_position));
    assert!(d.active_entries() <= d.occupied_entries());
    // Steady state on a distinct stream: about k * N active entries.
    let expected = 6.0 * 512.0;
    let active = d.active_entries() as f64;
    assert!(
        active <= expected * 1.05,
        "active entries {active} above insertion bound {expected}"
    );
    assert!(h.cleaned_entries > 0, "sweep must be erasing");
}

#[test]
fn online_fp_estimate_predicts_distinct_stream_fp() {
    // All-distinct stream: every Duplicate verdict is a false positive,
    // so the measured FP rate must sit near the occupancy-based
    // estimate. Generous 3x-plus-epsilon bands; this is a cross-check,
    // not a statistics exam.
    let n = 1 << 12;
    let mut d = tbf(n, n * 8, 6);
    let mut fps = 0u64;
    let total = 12 * n as u64;
    let mut estimate_at_steady = 0.0;
    for i in 0..total {
        if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
            fps += 1;
        }
        if i == total / 2 {
            estimate_at_steady = d.estimated_fp();
        }
    }
    let measured = fps as f64 / total as f64;
    assert!(
        estimate_at_steady > 0.0,
        "steady-state estimate must be positive"
    );
    assert!(
        measured <= estimate_at_steady * 3.0 + 1e-3,
        "measured {measured} far above estimate {estimate_at_steady}"
    );
    assert!(
        estimate_at_steady <= measured * 3.0 + 1e-3,
        "estimate {estimate_at_steady} far above measured {measured}"
    );
}

#[test]
fn gbf_fp_estimate_is_union_of_lane_estimates() {
    let n = 1 << 10;
    let mut d = gbf(n, 8, n * 10, 6);
    for i in 0..(3 * n as u64) {
        d.observe(&i.to_le_bytes());
    }
    let fills = d.fill_ratios();
    let expect: f64 = 1.0 - fills.iter().map(|f| 1.0 - f.powi(6)).product::<f64>();
    assert!((d.estimated_fp() - expect).abs() < 1e-12);
    assert!(d.estimated_fp() > 0.0);
    assert!(d.estimated_fp() < 0.05, "healthy sizing keeps FP small");
}

#[test]
fn jumping_tbf_reports_health() {
    let mut d = JumpingTbf::new(JumpingTbfConfig::new(256, 64, 1 << 13, 6, 3).unwrap()).unwrap();
    for i in 0..4_000u64 {
        // Period 100 < window 256: repeats stay inside the window.
        d.observe(&(i % 100).to_le_bytes());
    }
    let h = d.health();
    assert_eq!(h.detector, "jumping-tbf");
    assert_eq!(h.fill_ratios.len(), 1);
    assert!(h.fill_ratios[0] > 0.0);
    assert!((0.0..1.0).contains(&h.sweep_position));
    assert!(h.observed_duplicates > 0);
    assert!(h.estimated_fp >= 0.0);
}

#[test]
fn hot_paths_never_trigger_occupancy_scans() {
    // The O(m) occupancy passes (fill ratios, active-entry counts) are
    // snapshot-cadence operations; if one creeps into observe or
    // observe_batch, per-click cost silently becomes O(m). The scan
    // counters are the regression guard: a pure observe workload must
    // leave them at zero, and only explicit health sampling moves them.
    let mut g = gbf(256, 8, 1 << 14, 6);
    let mut t = tbf(512, 1 << 13, 6);
    let mut j = JumpingTbf::new(JumpingTbfConfig::new(256, 64, 1 << 13, 6, 3).unwrap()).unwrap();
    let keys: Vec<Vec<u8>> = (0..5_000u64)
        .map(|i| (i % 700).to_le_bytes().to_vec())
        .collect();
    let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    for chunk in slices.chunks(257) {
        g.observe_batch(chunk);
        t.observe_batch(chunk);
        j.observe_batch(chunk);
    }
    for id in &slices[..500] {
        g.observe(id);
        t.observe(id);
        j.observe(id);
    }
    assert_eq!(g.occupancy_scans(), 0, "gbf hot path scanned");
    assert_eq!(t.occupancy_scans(), 0, "tbf hot path scanned");
    assert_eq!(j.occupancy_scans(), 0, "jumping-tbf hot path scanned");

    let _ = g.health();
    let _ = t.health();
    let _ = j.health();
    assert!(g.occupancy_scans() > 0, "gbf health must count its scans");
    assert_eq!(t.occupancy_scans(), 1, "tbf health is one scan");
    assert_eq!(j.occupancy_scans(), 1, "jumping-tbf health is one scan");

    // Sharded composition: hot path stays scan-free and the wrapper
    // reports the sum over shards.
    let shards = 4;
    let n = 1 << 12;
    let mut d = ShardedDetector::from_fn(3, shards, |_| {
        let n_s = per_shard_window(n, shards);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 10)
                .hash_count(6)
                .build()?,
        )
    })
    .unwrap();
    for chunk in slices.chunks(257) {
        d.observe_batch(chunk);
    }
    assert_eq!(d.occupancy_scans(), 0, "sharded hot path scanned");
    let _ = d.health();
    assert_eq!(d.occupancy_scans(), shards as u64);
}

#[test]
fn sharded_health_aggregates_shards() {
    let shards = 4;
    let n = 1 << 12;
    let mut d = ShardedDetector::from_fn(3, shards, |_| {
        let n_s = per_shard_window(n, shards);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 10)
                .hash_count(6)
                .build()?,
        )
    })
    .unwrap();
    let total = 10_000u64;
    for i in 0..total {
        d.observe(&(i % 3_000).to_le_bytes());
    }
    let h = d.health();
    assert_eq!(h.detector, "sharded");
    assert_eq!(h.fill_ratios.len(), shards, "one fill entry per TBF shard");
    assert_eq!(h.observed_elements, total);
    let per_shard: u64 = d
        .shards()
        .iter()
        .map(DetectorStats::observed_duplicates)
        .sum();
    assert_eq!(h.observed_duplicates, per_shard);
    assert!(h.duplicate_rate() > 0.0);
}
