//! Differential property tests for the time-based detectors: whatever
//! the tick stream, `TimeTbf` and `TimeGbf` keep the paper's one-sided
//! zero-false-negative guarantee (§3.1 / §4.1), in both probe layouts,
//! and the batch and flat-key paths are pure optimizations of the
//! sequential path.
//!
//! False negatives are counted *self-consistently* (paper Definition 1,
//! same as `tests/blocked_props.rs`): a click is a false negative iff
//! the detector previously determined an identical click valid within
//! the current time window and still answers `Distinct`. An earlier
//! false positive blocks an insertion, so a later `Distinct` on that
//! key is consistent with the detector's own history.
//!
//! The generated streams advance about one time unit per click, so a
//! few thousand clicks cross thousands of unit boundaries — hundreds of
//! wraparounds of the `R + C` stamp range (TimeTbf) and of the
//! `(Q + 1)`-lane rotation cycle (TimeGbf).

use cfd_core::config::ProbeLayout;
use cfd_core::{TimeGbf, TimeGbfConfig, TimeTbf, TimeTbfConfig};
use cfd_windows::{TimedDuplicateDetector, Verdict};
use proptest::prelude::*;
use std::collections::HashMap;

fn time_tbf(window_units: u64, unit_ticks: u64, seed: u64, probe: ProbeLayout) -> TimeTbf {
    let cfg = TimeTbfConfig::new(window_units, unit_ticks, 1 << 13, 6, seed)
        .and_then(|c| c.with_probe(probe))
        .expect("valid time-tbf config");
    TimeTbf::new(cfg).expect("valid time-tbf")
}

fn time_gbf(q: usize, sub_units: u64, unit_ticks: u64, seed: u64, probe: ProbeLayout) -> TimeGbf {
    let cfg = TimeGbfConfig::new(q, sub_units, unit_ticks, 1 << 13, 4, seed)
        .and_then(|c| c.with_probe(probe))
        .expect("valid time-gbf config");
    TimeGbf::new(cfg).expect("valid time-gbf")
}

/// A deterministic monotone tick stream advancing ~1 unit per click on
/// average, paired with cyclic keys so duplicates recur at many gaps.
fn monotone_stream(len: u64, period: u64, unit_ticks: u64, salt: u64) -> Vec<(Vec<u8>, u64)> {
    let mut tick = 0u64;
    (0..len)
        .map(|i| {
            tick += (i.wrapping_mul(salt | 1).wrapping_add(7) >> 3) % (2 * unit_ticks);
            ((i % period).to_le_bytes().to_vec(), tick)
        })
        .collect()
}

/// Like [`monotone_stream`] but with occasional tick regressions, which
/// the detectors clamp to the high-water unit.
fn jittery_stream(len: u64, period: u64, unit_ticks: u64, salt: u64) -> Vec<(Vec<u8>, u64)> {
    let mut clicks = monotone_stream(len, period, unit_ticks, salt);
    for i in (96..clicks.len()).step_by(97) {
        clicks[i].1 = clicks[i].1.saturating_sub(3 * unit_ticks);
    }
    clicks
}

/// Self-consistent time-sliding false negatives: `valid` maps a key to
/// the unit the detector last validated it in; the entry expires when
/// the current unit is `window_units` or more past it.
fn sliding_false_negatives<D: TimedDuplicateDetector>(
    detector: &mut D,
    window_units: u64,
    unit_ticks: u64,
    clicks: &[(Vec<u8>, u64)],
) -> u64 {
    let mut valid: HashMap<&[u8], u64> = HashMap::new();
    let mut false_negatives = 0u64;
    for (key, tick) in clicks {
        let unit = tick / unit_ticks;
        let dup = detector.observe_at(key, *tick) == Verdict::Duplicate;
        let known = valid
            .get(key.as_slice())
            .is_some_and(|&u| unit - u < window_units);
        if !dup && known {
            false_negatives += 1;
        }
        if !dup && !known {
            valid.insert(key.as_slice(), unit);
        }
    }
    false_negatives
}

/// Self-consistent time-jumping false negatives: a validated key stays
/// known for its own sub-window plus the `q - 1` following ones.
fn jumping_false_negatives<D: TimedDuplicateDetector>(
    detector: &mut D,
    q: u64,
    sub_units: u64,
    unit_ticks: u64,
    clicks: &[(Vec<u8>, u64)],
) -> u64 {
    let mut valid: HashMap<&[u8], u64> = HashMap::new();
    let mut false_negatives = 0u64;
    for (key, tick) in clicks {
        let sub = (tick / unit_ticks) / sub_units;
        let dup = detector.observe_at(key, *tick) == Verdict::Duplicate;
        let known = valid.get(key.as_slice()).is_some_and(|&s| sub - s < q);
        if !dup && known {
            false_negatives += 1;
        }
        if !dup && !known {
            valid.insert(key.as_slice(), sub);
        }
    }
    false_negatives
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// TimeTbf never misses a click it previously validated inside the
    /// time-sliding window — across thousands of unit boundaries and
    /// hundreds of stamp-range wraparounds, in both layouts.
    #[test]
    fn time_tbf_has_zero_false_negatives(
        seed in 0u64..1000,
        period in 3u64..120,
        window_units in 2u64..20,
        unit_ticks in 1u64..16,
        salt in 0u64..1000,
        blocked in any::<bool>(),
    ) {
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let mut d = time_tbf(window_units, unit_ticks, seed, probe);
        let clicks = monotone_stream(4_000, period, unit_ticks, salt);
        prop_assert_eq!(
            sliding_false_negatives(&mut d, window_units, unit_ticks, &clicks),
            0
        );
    }

    /// TimeGbf never misses a click it previously validated inside the
    /// time-jumping window — across many full `(Q + 1)`-lane rotation
    /// cycles, in both layouts.
    #[test]
    fn time_gbf_has_zero_false_negatives(
        seed in 0u64..1000,
        period in 3u64..120,
        q in 2usize..10,
        sub_units in 1u64..8,
        unit_ticks in 1u64..16,
        salt in 0u64..1000,
        blocked in any::<bool>(),
    ) {
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let mut d = time_gbf(q, sub_units, unit_ticks, seed, probe);
        let clicks = monotone_stream(4_000, period, unit_ticks, salt);
        prop_assert_eq!(
            jumping_false_negatives(&mut d, q as u64, sub_units, unit_ticks, &clicks),
            0
        );
    }

    /// The TimeTbf batch path is verdict-identical to per-click
    /// `observe_at` for any chunking, in both layouts — including
    /// streams with tick regressions.
    #[test]
    fn time_tbf_batch_equals_sequential_any_chunking(
        seed in 0u64..1000,
        period in 3u64..400,
        chunk in 1usize..300,
        salt in 0u64..1000,
        blocked in any::<bool>(),
    ) {
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let clicks = jittery_stream(2_500, period, 8, salt);
        let ids: Vec<&[u8]> = clicks.iter().map(|(k, _)| k.as_slice()).collect();
        let ticks: Vec<u64> = clicks.iter().map(|&(_, t)| t).collect();
        let mut sequential = time_tbf(16, 8, seed, probe);
        let mut batched = time_tbf(16, 8, seed, probe);
        let want: Vec<Verdict> = ids
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let mut got = Vec::new();
        for (idc, tc) in ids.chunks(chunk).zip(ticks.chunks(chunk)) {
            got.extend(batched.observe_batch_at(idc, tc));
        }
        prop_assert_eq!(&got, &want);
        // The amortized clock advance must not change a single counter.
        prop_assert_eq!(batched.ops(), sequential.ops());
    }

    /// Same for TimeGbf.
    #[test]
    fn time_gbf_batch_equals_sequential_any_chunking(
        seed in 0u64..1000,
        period in 3u64..400,
        chunk in 1usize..300,
        salt in 0u64..1000,
        blocked in any::<bool>(),
    ) {
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let clicks = jittery_stream(2_500, period, 8, salt);
        let ids: Vec<&[u8]> = clicks.iter().map(|(k, _)| k.as_slice()).collect();
        let ticks: Vec<u64> = clicks.iter().map(|&(_, t)| t).collect();
        let mut sequential = time_gbf(6, 4, 8, seed, probe);
        let mut batched = time_gbf(6, 4, 8, seed, probe);
        let want: Vec<Verdict> = ids
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let mut got = Vec::new();
        for (idc, tc) in ids.chunks(chunk).zip(ticks.chunks(chunk)) {
            got.extend(batched.observe_batch_at(idc, tc));
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(batched.ops(), sequential.ops());
    }

    /// The flat-key multi-lane path equals the slice batch path on
    /// fixed-stride keys, for both detectors and layouts.
    #[test]
    fn flat_keys_equal_slice_batch(
        seed in 0u64..1000,
        period in 3u64..400,
        salt in 0u64..1000,
        blocked in any::<bool>(),
    ) {
        let probe = if blocked { ProbeLayout::Blocked } else { ProbeLayout::Scattered };
        let clicks = jittery_stream(2_000, period, 8, salt);
        let ids: Vec<&[u8]> = clicks.iter().map(|(k, _)| k.as_slice()).collect();
        let ticks: Vec<u64> = clicks.iter().map(|&(_, t)| t).collect();
        let flat: Vec<u8> = clicks.iter().flat_map(|(k, _)| k.clone()).collect();

        let mut sliced = time_tbf(16, 8, seed, probe);
        let mut flattened = time_tbf(16, 8, seed, probe);
        let want = sliced.observe_batch_at(&ids, &ticks);
        let mut got = Vec::new();
        flattened.observe_flat_at_into(&flat, 8, &ticks, &mut got);
        prop_assert_eq!(&got, &want);

        let mut sliced = time_gbf(6, 4, 8, seed, probe);
        let mut flattened = time_gbf(6, 4, 8, seed, probe);
        let want = sliced.observe_batch_at(&ids, &ticks);
        flattened.observe_flat_at_into(&flat, 8, &ticks, &mut got);
        prop_assert_eq!(&got, &want);
    }
}
