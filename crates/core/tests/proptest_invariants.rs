//! Property-based invariants of the core detectors under *randomized*
//! configurations and streams:
//!
//! 1. Zero false negatives (self-consistent, paper Definition 1) for any
//!    config — including pathologically small memories.
//! 2. Determinism: same seed + same stream ⇒ same verdicts.
//! 3. The jumping-window coverage sandwich: GBF flags a superset of the
//!    exact *jumping* oracle duplicates whenever GBF's false-positive
//!    mechanism would also have flagged them — expressed as: every
//!    oracle-duplicate is GBF-duplicate (one-sided agreement).

use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_windows::{DuplicateDetector, ExactJumpingDedup, ExactSlidingDedup, Verdict};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Generates a stream of small-alphabet keys (heavy duplication).
fn stream_strategy() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..400, 200..1200)
}

/// Self-consistent sliding false-negative count (see tests/common in the
/// facade crate; duplicated here because integration tests cannot share
/// across crates without a helper crate).
fn sliding_fns<D: DuplicateDetector>(d: &mut D, n: usize, keys: &[u16]) -> u64 {
    let mut ring: VecDeque<(u16, bool)> = VecDeque::with_capacity(n);
    let mut valid: HashSet<u16> = HashSet::new();
    let mut fns = 0u64;
    for &key in keys {
        let dup = d.observe(&key.to_le_bytes()) == Verdict::Duplicate;
        if ring.len() == n {
            let (old, was_valid) = ring.pop_front().expect("full");
            if was_valid {
                valid.remove(&old);
            }
        }
        if !dup && valid.contains(&key) {
            fns += 1;
        }
        let fresh = !dup && !valid.contains(&key);
        if fresh {
            valid.insert(key);
        }
        ring.push_back((key, fresh));
    }
    fns
}

fn jumping_fns<D: DuplicateDetector>(d: &mut D, n: usize, q: usize, keys: &[u16]) -> u64 {
    let sub_len = n.div_ceil(q);
    let mut subs: VecDeque<HashSet<u16>> = VecDeque::new();
    subs.push_back(HashSet::new());
    let mut filled = 0usize;
    let mut fns = 0u64;
    for &key in keys {
        let dup = d.observe(&key.to_le_bytes()) == Verdict::Duplicate;
        let known = subs.iter().any(|s| s.contains(&key));
        if !dup && known {
            fns += 1;
        }
        if !dup && !known {
            subs.back_mut().expect("non-empty").insert(key);
        }
        filled += 1;
        if filled == sub_len {
            filled = 0;
            subs.push_back(HashSet::new());
            if subs.len() > q {
                subs.pop_front();
            }
        }
    }
    fns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tbf_zero_fn_for_any_config(
        n in 4usize..300,
        entries_per_elem in 1usize..8,
        k in 1usize..8,
        c_div in 1usize..4,
        seed in any::<u64>(),
        keys in stream_strategy(),
    ) {
        let c = (n / c_div).max(1);
        let cfg = TbfConfig::builder(n)
            .entries(n * entries_per_elem)
            .hash_count(k)
            .range_extension(c)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut tbf = Tbf::new(cfg).expect("valid detector");
        prop_assert_eq!(sliding_fns(&mut tbf, n, &keys), 0);
    }

    #[test]
    fn gbf_zero_fn_for_any_config(
        q in 1usize..12,
        sub_len in 1usize..40,
        bits_per_elem in 1usize..8,
        k in 1usize..8,
        seed in any::<u64>(),
        keys in stream_strategy(),
    ) {
        let n = q * sub_len;
        let m = (n.div_ceil(q) * bits_per_elem).max(1);
        let cfg = GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(k)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut gbf = Gbf::new(cfg).expect("valid detector");
        prop_assert_eq!(jumping_fns(&mut gbf, n, q, &keys), 0);
    }

    #[test]
    fn detectors_are_deterministic(
        n in 4usize..200,
        seed in any::<u64>(),
        keys in stream_strategy(),
    ) {
        let cfg = TbfConfig::builder(n).entries(n * 4).seed(seed).build().expect("cfg");
        let mut a = Tbf::new(cfg).expect("detector");
        let mut b = Tbf::new(cfg).expect("detector");
        for key in &keys {
            prop_assert_eq!(a.observe(&key.to_le_bytes()), b.observe(&key.to_le_bytes()));
        }
    }

    #[test]
    fn oracle_duplicates_are_always_flagged_sliding(
        n in 4usize..150,
        keys in stream_strategy(),
    ) {
        // One-sided agreement with the exact oracle: every duplicate the
        // oracle sees must be flagged by TBF. This only holds when TBF
        // never false-positives on the ids involved (an FP suppresses the
        // insertion, making the later repeat legitimately Distinct), so
        // the table is sized above the double-hashing pair-collision
        // floor of ~2/m^2 per in-window pair (see EXPERIMENTS.md §dev.4).
        let cfg = TbfConfig::builder(n)
            .entries((n * 32).max(1 << 17))
            .hash_count(8)
            .build()
            .expect("cfg");
        let mut tbf = Tbf::new(cfg).expect("detector");
        let mut oracle = ExactSlidingDedup::new(n);
        for key in &keys {
            let got = tbf.observe(&key.to_le_bytes());
            let want = oracle.observe(&key.to_le_bytes());
            if want == Verdict::Duplicate {
                prop_assert_eq!(got, Verdict::Duplicate);
            }
        }
    }

    #[test]
    fn oracle_duplicates_are_always_flagged_jumping(
        q in 1usize..10,
        sub_len in 1usize..30,
        keys in stream_strategy(),
    ) {
        let n = q * sub_len;
        // Sized above the pair-collision FP floor; see the sliding case.
        let cfg = GbfConfig::builder(n, q)
            .filter_bits((n.div_ceil(q) * 32).max(1 << 17))
            .hash_count(8)
            .build()
            .expect("cfg");
        let mut gbf = Gbf::new(cfg).expect("detector");
        let mut oracle = ExactJumpingDedup::new(n, q);
        for key in &keys {
            let got = gbf.observe(&key.to_le_bytes());
            let want = oracle.observe(&key.to_le_bytes());
            if want == Verdict::Duplicate {
                prop_assert_eq!(got, Verdict::Duplicate);
            }
        }
    }

    #[test]
    fn reset_is_equivalent_to_fresh_construction(
        n in 4usize..100,
        keys in prop::collection::vec(0u16..100, 1..300),
    ) {
        let cfg = TbfConfig::builder(n).entries(n * 4).build().expect("cfg");
        let mut used = Tbf::new(cfg).expect("detector");
        for key in &keys {
            used.observe(&key.to_le_bytes());
        }
        used.reset();
        let mut fresh = Tbf::new(cfg).expect("detector");
        for key in &keys {
            prop_assert_eq!(
                used.observe(&key.to_le_bytes()),
                fresh.observe(&key.to_le_bytes())
            );
        }
    }
}
