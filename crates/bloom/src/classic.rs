//! The classical Bloom filter (§2.1) and its landmark-window deployment.

use crate::params::BloomParams;
use cfd_bits::BitVec;
use cfd_hash::{DoubleHashFamily, HashFamily, HashPair, IndexSequence};
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec};

/// A classical Bloom filter: `m` bits, `k` hash functions.
///
/// ```rust
/// use cfd_bloom::{BloomFilter, BloomParams};
/// let params = BloomParams::new(1 << 16, 7).expect("valid params");
/// let mut f = BloomFilter::new(params, 1);
/// f.insert(b"click-1");
/// assert!(f.contains(b"click-1"));
/// assert_eq!(f.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    params: BloomParams,
    family: DoubleHashFamily,
    inserted: usize,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters and hash seed.
    #[must_use]
    pub fn new(params: BloomParams, seed: u64) -> Self {
        Self {
            bits: BitVec::new(params.m_bits),
            params,
            family: DoubleHashFamily::new(seed),
            inserted: 0,
        }
    }

    /// The filter's sizing parameters.
    #[inline]
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of `insert` calls so far (not distinct elements).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// `true` if nothing was inserted.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Payload memory in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.bits.memory_bits()
    }

    /// Fraction of set bits.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// The probe indices of `key` (shared hashing: one evaluation per key).
    #[inline]
    fn probes(&self, key: &[u8]) -> IndexSequence {
        self.family.indices(key, self.params.k, self.params.m_bits)
    }

    /// The probe indices from a precomputed pair.
    #[inline]
    fn probes_of(&self, pair: HashPair) -> IndexSequence {
        IndexSequence::new(pair, self.params.k, self.params.m_bits)
    }

    /// Hashes `key` once for reuse across [`BloomFilter::contains_pair`] /
    /// [`BloomFilter::insert_pair`].
    #[inline]
    #[must_use]
    pub fn hash(&self, key: &[u8]) -> HashPair {
        self.family.pair(key)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        let pair = self.hash(key);
        self.insert_pair(pair);
    }

    /// Inserts a pre-hashed key.
    pub fn insert_pair(&mut self, pair: HashPair) {
        for i in self.probes_of(pair) {
            self.bits.set(i);
        }
        self.inserted += 1;
    }

    /// Membership query for `key` (may false-positive, never
    /// false-negative).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.probes(key).all(|i| self.bits.get(i))
    }

    /// Membership query for a pre-hashed key.
    #[must_use]
    pub fn contains_pair(&self, pair: HashPair) -> bool {
        self.probes_of(pair).all(|i| self.bits.get(i))
    }

    /// Inserts `key`, returning whether it was already present
    /// (the combined check-then-insert used by duplicate detection).
    pub fn insert_checked(&mut self, key: &[u8]) -> bool {
        let pair = self.hash(key);
        let present = self.contains_pair(pair);
        if !present {
            self.insert_pair(pair);
        }
        present
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.clear_all();
        self.inserted = 0;
    }

    /// Expected false-positive rate at the current load.
    #[must_use]
    pub fn expected_fp_rate(&self) -> f64 {
        self.params.fp_rate(self.inserted)
    }
}

/// The landmark-window duplicate detector of Metwally et al. \[21\]:
/// a single Bloom filter, wiped at every landmark boundary.
///
/// "To detect duplicates in click streams over a landmark window, Bloom
/// filters can be directly deployed" (§3.1).
#[derive(Debug, Clone)]
pub struct LandmarkBloom {
    filter: BloomFilter,
    n: usize,
    filled: usize,
}

impl LandmarkBloom {
    /// Creates a detector over landmark windows of `n` elements using an
    /// `(m, k)` filter.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, params: BloomParams, seed: u64) -> Self {
        assert!(n > 0, "window length must be positive");
        Self {
            filter: BloomFilter::new(params, seed),
            n,
            filled: 0,
        }
    }

    /// Read access to the underlying filter.
    #[must_use]
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }
}

impl DuplicateDetector for LandmarkBloom {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        if self.filled == self.n {
            self.filter.clear();
            self.filled = 0;
        }
        self.filled += 1;
        if self.filter.insert_checked(id) {
            Verdict::Duplicate
        } else {
            Verdict::Distinct
        }
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Landmark { n: self.n }
    }

    fn memory_bits(&self) -> usize {
        self.filter.memory_bits()
    }

    fn reset(&mut self) {
        self.filter.clear();
        self.filled = 0;
    }

    fn name(&self) -> &'static str {
        "landmark-bloom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(m: usize, k: usize) -> BloomParams {
        BloomParams::new(m, k).expect("valid params")
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(params(1 << 14, 7), 3);
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn empirical_fp_near_theory() {
        // 10 bits/element, k = 7 -> theory ~ 0.008.
        let n = 4_000;
        let mut f = BloomFilter::new(params(n * 10, 7), 42);
        for i in 0..n as u64 {
            f.insert(&i.to_le_bytes());
        }
        let trials = 100_000u64;
        let fps = (0..trials)
            .filter(|t| f.contains(&(t + 1_000_000_000).to_le_bytes()))
            .count() as f64;
        let rate = fps / trials as f64;
        let theory = f.expected_fp_rate();
        assert!(
            rate < theory * 2.0 + 0.002,
            "empirical {rate} far above theory {theory}"
        );
    }

    #[test]
    fn insert_checked_detects_duplicates() {
        let mut f = BloomFilter::new(params(1 << 12, 5), 0);
        assert!(!f.insert_checked(b"x"));
        assert!(f.insert_checked(b"x"));
        assert_eq!(f.len(), 1, "duplicate must not re-insert");
    }

    #[test]
    fn clear_empties_filter() {
        let mut f = BloomFilter::new(params(1 << 10, 4), 0);
        f.insert(b"k");
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(b"k"));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn pair_api_matches_byte_api() {
        let mut a = BloomFilter::new(params(1 << 12, 6), 9);
        let mut b = BloomFilter::new(params(1 << 12, 6), 9);
        for i in 0..100u64 {
            let key = i.to_le_bytes();
            a.insert(&key);
            let pair = b.hash(&key);
            b.insert_pair(pair);
        }
        for i in 0..200u64 {
            let key = i.to_le_bytes();
            assert_eq!(a.contains(&key), b.contains_pair(b.hash(&key)));
        }
    }

    #[test]
    fn landmark_detector_window_boundary() {
        let mut d = LandmarkBloom::new(2, params(1 << 12, 5), 1);
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // new landmark
        assert_eq!(d.window(), WindowSpec::Landmark { n: 2 });
    }

    proptest! {
        #[test]
        fn inserted_keys_always_reported(keys in prop::collection::vec(any::<u64>(), 1..200)) {
            let mut f = BloomFilter::new(params(1 << 13, 5), 7);
            for k in &keys {
                f.insert(&k.to_le_bytes());
            }
            for k in &keys {
                prop_assert!(f.contains(&k.to_le_bytes()));
            }
        }
    }
}
