//! The jumping-window baseline of Metwally, Agrawal & El Abbadi \[21\].
//!
//! "The authors proposed to maintain a counting Bloom filter for each
//! sub-window, and a main Bloom filter which is a combination of all
//! counting Bloom filters ... When a new sub-window is generated, the
//! eldest window is expired and subtracted from the main Bloom filter"
//! (paper §3.3). This is the scheme GBF is compared against in Fig. 1.
//!
//! The two drawbacks the paper identifies are both observable here:
//!
//! 1. Expiring a sub-window costs `O(m)` counter subtractions in one
//!    burst (`expire_cost_counters` reports it).
//! 2. Querying the *main* filter — which effectively holds all `N`
//!    elements of the window — yields a much higher false-positive rate
//!    than GBF's per-sub-window filters of `N/Q` elements each.

use crate::counting::CountingBloomFilter;
use cfd_bits::words::bits_for_value;
use cfd_windows::{DuplicateDetector, JumpingClock, Verdict, WindowSpec};
use std::collections::VecDeque;

/// Configuration for [`MetwallyJumping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetwallyConfig {
    /// Jumping-window length `N` in elements.
    pub n: usize,
    /// Number of sub-windows `Q`.
    pub q: usize,
    /// Counters per filter (`m`).
    pub m: usize,
    /// Hash functions (`k`).
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
}

/// The \[21\] duplicate detector over count-based jumping windows.
#[derive(Debug, Clone)]
pub struct MetwallyJumping {
    cfg: MetwallyConfig,
    clock: JumpingClock,
    /// Per-sub-window counting filters, newest last (at most `q`).
    subs: VecDeque<CountingBloomFilter>,
    /// The combined filter representing the whole window.
    main: CountingBloomFilter,
    /// Counter width of sub-window filters.
    sub_bits: u32,
    /// Cumulative `O(m)` bulk-subtraction cost, in counter operations.
    expire_cost: u64,
}

impl MetwallyJumping {
    /// Creates the detector.
    ///
    /// Counter widths are sized for the worst case the paper describes:
    /// `⌈log2(N/Q + 1)⌉` bits per sub-window counter and `⌈log2(N + 1)⌉`
    /// bits per main-filter counter, so saturation cannot occur.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `q > n`, or `k > 64`.
    #[must_use]
    pub fn new(cfg: MetwallyConfig) -> Self {
        assert!(cfg.n > 0 && cfg.q > 0 && cfg.q <= cfg.n, "invalid window");
        assert!(cfg.m > 0, "filter size must be positive");
        assert!((1..=64).contains(&cfg.k), "k must be 1..=64");
        let sub_len = cfg.n.div_ceil(cfg.q);
        // One bit beyond the paper's N/Q (resp. N) worst case: with double
        // hashing a single insert can probe the same counter twice, so the
        // true per-counter maximum is slightly above the element count.
        let sub_bits = bits_for_value(2 * sub_len as u64);
        let main_bits = bits_for_value(2 * cfg.n as u64);
        let mut subs = VecDeque::with_capacity(cfg.q);
        subs.push_back(CountingBloomFilter::new(cfg.m, sub_bits, cfg.k, cfg.seed));
        Self {
            cfg,
            clock: JumpingClock::new(cfg.q, sub_len),
            subs,
            main: CountingBloomFilter::new(cfg.m, main_bits, cfg.k, cfg.seed),
            sub_bits,
            expire_cost: 0,
        }
    }

    /// Cumulative counter operations spent on `O(m)` bulk expiry.
    #[must_use]
    pub fn expire_cost_counters(&self) -> u64 {
        self.expire_cost
    }

    /// Read access to the main (combined) filter.
    #[must_use]
    pub fn main_filter(&self) -> &CountingBloomFilter {
        &self.main
    }
}

impl DuplicateDetector for MetwallyJumping {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        // One hash evaluation; the sub filters share the seed and size so
        // the pair is valid for all of them.
        let pair = self.main.hash(id);
        let verdict = if self.main.contains_pair(pair) {
            Verdict::Duplicate
        } else {
            self.subs
                .back_mut()
                .expect("at least one sub-window filter")
                .insert_pair(pair);
            self.main.insert_pair(pair);
            Verdict::Distinct
        };
        if let Some(rot) = self.clock.record_arrival() {
            if rot.expired_slot.is_some() {
                let eldest = self
                    .subs
                    .pop_front()
                    .expect("window full implies q filters");
                self.main.sub_assign(&eldest);
                self.expire_cost += self.cfg.m as u64;
            }
            self.subs.push_back(CountingBloomFilter::new(
                self.cfg.m,
                self.sub_bits,
                self.cfg.k,
                self.cfg.seed,
            ));
        }
        verdict
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.cfg.n,
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.subs
            .iter()
            .map(CountingBloomFilter::memory_bits)
            .sum::<usize>()
            + self.main.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg);
    }

    fn name(&self) -> &'static str {
        "metwally-jumping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, q: usize, m: usize, k: usize) -> MetwallyConfig {
        MetwallyConfig {
            n,
            q,
            m,
            k,
            seed: 7,
        }
    }

    #[test]
    fn detects_in_window_duplicates() {
        let mut d = MetwallyJumping::new(cfg(8, 2, 1 << 12, 5));
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
        assert_eq!(d.observe(b"b"), Verdict::Distinct);
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
    }

    #[test]
    fn expired_subwindow_forgets_its_elements() {
        // n = 4, q = 2 -> sub-windows of 2 elements.
        let mut d = MetwallyJumping::new(cfg(4, 2, 1 << 12, 5));
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // sub 0
        assert_eq!(d.observe(b"b"), Verdict::Distinct); // sub 0 done
        assert_eq!(d.observe(b"c"), Verdict::Distinct); // sub 1
        assert_eq!(d.observe(b"d"), Verdict::Distinct); // sub 1 done; sub 0 expires
                                                        // a belonged to the expired sub-window: valid again (no FP with
                                                        // this sparse filter).
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert!(d.expire_cost_counters() >= (1 << 12));
    }

    #[test]
    fn no_false_negatives_vs_exact_oracle() {
        use cfd_windows::ExactJumpingDedup;
        let mut d = MetwallyJumping::new(cfg(32, 4, 1 << 14, 6));
        let mut oracle = ExactJumpingDedup::new(32, 4);
        // A stream with engineered duplicates.
        for i in 0..2_000u64 {
            let key = (i % 40).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at {i}");
            }
        }
    }

    #[test]
    fn counters_never_saturate_with_sized_widths() {
        let mut d = MetwallyJumping::new(cfg(64, 4, 64, 4));
        for i in 0..5_000u64 {
            d.observe(&(i % 16).to_le_bytes());
        }
        assert_eq!(d.main_filter().saturations(), 0);
        assert_eq!(d.main_filter().underflows(), 0);
    }

    #[test]
    fn memory_accounts_subs_plus_main() {
        let d = MetwallyJumping::new(cfg(1024, 4, 4096, 5));
        // One sub filter initially + main.
        assert!(d.memory_bits() > 4096);
        let spec = d.window();
        assert_eq!(spec, WindowSpec::Jumping { n: 1024, q: 4 });
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = MetwallyJumping::new(cfg(8, 2, 1 << 10, 4));
        d.observe(b"z");
        d.reset();
        assert_eq!(d.observe(b"z"), Verdict::Distinct);
    }
}
