//! The counting Bloom filter (Fan et al., "summary cache" \[12\]).
//!
//! Replaces each bit with a small counter so elements can be *deleted* —
//! the property the Metwally et al. \[21\] jumping-window scheme builds on.
//! The paper's §3.3 critique of that scheme hinges on counter behaviour
//! (width vs. saturation), so saturation/underflow events are tracked
//! explicitly (see [`cfd_bits::PackedCounterVec`]).

use cfd_bits::PackedCounterVec;
use cfd_hash::{DoubleHashFamily, HashFamily, HashPair, IndexSequence};

/// A counting Bloom filter: `m` counters of `counter_bits` each, `k` hash
/// functions.
///
/// ```rust
/// use cfd_bloom::CountingBloomFilter;
/// let mut f = CountingBloomFilter::new(1 << 12, 4, 5, 1);
/// f.insert(b"x");
/// assert!(f.contains(b"x"));
/// f.remove(b"x");
/// assert!(!f.contains(b"x"));
/// ```
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    counters: PackedCounterVec,
    k: usize,
    family: DoubleHashFamily,
    inserted: usize,
}

impl CountingBloomFilter {
    /// Creates an empty filter with `m` counters of `counter_bits` bits
    /// and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `k` is not in `1..=64`, or `counter_bits` is
    /// not in `1..=64`.
    #[must_use]
    pub fn new(m: usize, counter_bits: u32, k: usize, seed: u64) -> Self {
        assert!(m > 0, "counter count m must be positive");
        assert!((1..=64).contains(&k), "hash count k must be 1..=64");
        Self {
            counters: PackedCounterVec::new(m, counter_bits),
            k,
            family: DoubleHashFamily::new(seed),
            inserted: 0,
        }
    }

    /// Number of counters (`m`).
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions (`k`).
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Counter width in bits.
    #[inline]
    #[must_use]
    pub fn counter_bits(&self) -> u32 {
        self.counters.counter_bits()
    }

    /// Payload memory in bits (`m × counter_bits`, word-padded).
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.counters.memory_bits()
    }

    /// Insert operations so far.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// `true` if nothing was inserted.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Saturating-increment events (lost information; a \[21\] failure mode).
    #[inline]
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.counters.saturations()
    }

    /// Floored-decrement events (the symptom of earlier saturation).
    #[inline]
    #[must_use]
    pub fn underflows(&self) -> u64 {
        self.counters.underflows()
    }

    #[inline]
    fn probes(&self, key: &[u8]) -> IndexSequence {
        self.family.indices(key, self.k, self.m())
    }

    /// Hashes `key` once for the pair-based API.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: &[u8]) -> HashPair {
        self.family.pair(key)
    }

    /// Inserts `key` (increments its `k` counters).
    pub fn insert(&mut self, key: &[u8]) {
        let pair = self.hash(key);
        self.insert_pair(pair);
    }

    /// Inserts a pre-hashed key.
    pub fn insert_pair(&mut self, pair: HashPair) {
        for i in IndexSequence::new(pair, self.k, self.m()) {
            self.counters.increment(i);
        }
        self.inserted += 1;
    }

    /// Removes `key` (decrements its `k` counters, flooring at zero).
    ///
    /// Removing a key that was never inserted corrupts the filter the
    /// same way it does in every counting-filter design; callers must
    /// only remove keys they inserted.
    pub fn remove(&mut self, key: &[u8]) {
        let pair = self.hash(key);
        for i in IndexSequence::new(pair, self.k, self.m()) {
            self.counters.decrement(i);
        }
        self.inserted = self.inserted.saturating_sub(1);
    }

    /// Membership query.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.probes(key).all(|i| self.counters.get(i) > 0)
    }

    /// Membership query with a precomputed pair.
    #[must_use]
    pub fn contains_pair(&self, pair: HashPair) -> bool {
        IndexSequence::new(pair, self.k, self.m()).all(|i| self.counters.get(i) > 0)
    }

    /// Adds every counter of `other` into `self`, saturating.
    ///
    /// The \[21\] *combine* operation (cost `O(m)`).
    ///
    /// # Panics
    ///
    /// Panics if sizes or widths differ.
    pub fn add_assign(&mut self, other: &Self) {
        self.counters.add_assign_saturating(&other.counters);
        self.inserted += other.inserted;
    }

    /// Subtracts every counter of `other` from `self`, flooring.
    ///
    /// The \[21\] *expire* operation (cost `O(m)`) — the bulk step whose
    /// latency GBF's incremental cleaning avoids.
    ///
    /// # Panics
    ///
    /// Panics if sizes or widths differ.
    pub fn sub_assign(&mut self, other: &Self) {
        self.counters.sub_assign_flooring(&other.counters);
        self.inserted = self.inserted.saturating_sub(other.inserted);
    }

    /// Clears every counter.
    pub fn clear(&mut self) {
        self.counters.clear_all();
        self.inserted = 0;
    }

    /// Fraction of non-zero counters.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.counters.count_nonzero() as f64 / self.m() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = CountingBloomFilter::new(1 << 12, 4, 5, 0);
        let keys: Vec<Vec<u8>> = (0..300u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k));
        }
        for k in &keys {
            f.remove(k);
        }
        assert_eq!(f.saturations(), 0);
        assert_eq!(f.underflows(), 0);
        // With no saturation, removal restores a clean filter.
        assert!((f.fill_ratio() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn combine_then_subtract_is_identity_without_saturation() {
        let mut main = CountingBloomFilter::new(1 << 10, 8, 4, 2);
        let mut sub = CountingBloomFilter::new(1 << 10, 8, 4, 2);
        for i in 0..50u64 {
            sub.insert(&i.to_le_bytes());
        }
        main.add_assign(&sub);
        for i in 0..50u64 {
            assert!(main.contains(&i.to_le_bytes()));
        }
        main.sub_assign(&sub);
        assert!((main.fill_ratio() - 0.0).abs() < 1e-12);
        assert_eq!(main.len(), 0);
    }

    #[test]
    fn narrow_counters_saturate_and_corrupt() {
        // 1-bit counters with heavy collision load: saturation is counted
        // and removal then underflows — the paper's §3.3 failure mode.
        let mut f = CountingBloomFilter::new(8, 1, 4, 3);
        for i in 0..20u64 {
            f.insert(&i.to_le_bytes());
        }
        assert!(f.saturations() > 0);
        for i in 0..20u64 {
            f.remove(&i.to_le_bytes());
        }
        assert!(f.underflows() > 0);
    }

    #[test]
    fn memory_is_counter_bits_times_m() {
        let f = CountingBloomFilter::new(1024, 4, 3, 0);
        assert_eq!(f.memory_bits(), 1024 * 4);
    }

    #[test]
    #[should_panic(expected = "hash count")]
    fn zero_k_panics() {
        let _ = CountingBloomFilter::new(8, 4, 0, 0);
    }
}
