//! The Stable Bloom Filter of Deng & Rafiei \[10\] (SIGMOD 2006).
//!
//! The related-work baseline the paper contrasts with in §2.4: SBF
//! "randomly evicts the stale information to release room for more recent
//! elements. However, their randomly evicting mechanism introduces false
//! negatives besides the inherent false positives" — precisely the
//! property GBF/TBF eliminate. Including it lets the benches demonstrate
//! the paper's zero-false-negative claim against a real alternative.

use cfd_bits::PackedCounterVec;
use cfd_hash::{DoubleHashFamily, HashFamily, IndexSequence};
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`StableBloomFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableConfig {
    /// Number of cells (`m`).
    pub m: usize,
    /// Bits per cell (`d`); cells saturate at `Max = 2^d − 1`.
    pub cell_bits: u32,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Cells decremented per arriving element (`P`).
    pub p: usize,
    /// Nominal window the filter is standing in for (reporting only; SBF
    /// has no crisp window semantics).
    pub nominal_window: usize,
    /// Seed for hashing and eviction randomness.
    pub seed: u64,
}

/// A Stable Bloom Filter duplicate detector.
///
/// Each arrival: (1) probe the `k` cells — all non-zero means
/// "seen recently" → [`Verdict::Duplicate`]; (2) decrement `P` cells
/// (a random run of consecutive cells, as in the original paper's
/// implementation note); (3) set the `k` probed cells to `Max`.
#[derive(Debug, Clone)]
pub struct StableBloomFilter {
    cfg: StableConfig,
    cells: PackedCounterVec,
    family: DoubleHashFamily,
    rng: SmallRng,
    probe_buf: Vec<usize>,
}

impl StableBloomFilter {
    /// Creates the filter.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `k > 64`, or `p > m`.
    #[must_use]
    pub fn new(cfg: StableConfig) -> Self {
        assert!(cfg.m > 0, "cell count must be positive");
        assert!((1..=64).contains(&cfg.k), "k must be 1..=64");
        assert!(
            (1..=64).contains(&cfg.cell_bits),
            "cell width must be 1..=64"
        );
        assert!(cfg.p >= 1 && cfg.p <= cfg.m, "P must be in 1..=m");
        assert!(cfg.nominal_window > 0, "nominal window must be positive");
        Self {
            cfg,
            cells: PackedCounterVec::new(cfg.m, cfg.cell_bits),
            family: DoubleHashFamily::new(cfg.seed),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5BF0_15BF),
            probe_buf: vec![0; cfg.k],
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> StableConfig {
        self.cfg
    }

    /// Fraction of zero cells; Deng & Rafiei prove this converges to a
    /// *stable point* independent of the input distribution.
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        1.0 - self.cells.count_nonzero() as f64 / self.cfg.m as f64
    }

    /// The expected stable zero fraction
    /// `(1 / (1 + 1/(P(1/k − 1/m))))^{Max}` from \[10\], Theorem 2.
    #[must_use]
    pub fn theoretical_stable_zero_fraction(&self) -> f64 {
        let max = self.cells.max_value() as f64;
        let p = self.cfg.p as f64;
        let inner = 1.0 / (1.0 + 1.0 / (p * (1.0 / self.cfg.k as f64 - 1.0 / self.cfg.m as f64)));
        inner.powf(max)
    }
}

impl DuplicateDetector for StableBloomFilter {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let k = self.cfg.k;
        let m = self.cfg.m;
        let pair = self.family.pair(id);
        for (slot, idx) in self
            .probe_buf
            .iter_mut()
            .zip(IndexSequence::new(pair, k, m))
        {
            *slot = idx;
        }
        let seen = self.probe_buf.iter().all(|&i| self.cells.get(i) > 0);
        // Evict: decrement P consecutive cells from a random start.
        let start = self.rng.gen_range(0..m);
        for off in 0..self.cfg.p {
            self.cells.decrement((start + off) % m);
        }
        // Refresh: set the probed cells to Max.
        let max = self.cells.max_value();
        for &i in &self.probe_buf {
            while self.cells.get(i) < max {
                // PackedCounterVec has no direct `set`; emulate via
                // increments (cell widths are tiny, <= 3 in practice).
                self.cells.increment(i);
            }
        }
        if seen {
            Verdict::Duplicate
        } else {
            Verdict::Distinct
        }
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding {
            n: self.cfg.nominal_window,
        }
    }

    fn memory_bits(&self) -> usize {
        self.cells.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg);
    }

    fn name(&self) -> &'static str {
        "stable-bloom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StableConfig {
        StableConfig {
            m: 1 << 14,
            cell_bits: 3,
            k: 6,
            p: 40,
            nominal_window: 4_096,
            seed: 11,
        }
    }

    #[test]
    fn immediate_repeat_is_detected() {
        let mut f = StableBloomFilter::new(cfg());
        assert_eq!(f.observe(b"dup"), Verdict::Distinct);
        assert_eq!(f.observe(b"dup"), Verdict::Duplicate);
    }

    #[test]
    fn zero_fraction_approaches_stable_point() {
        let mut f = StableBloomFilter::new(cfg());
        for i in 0..200_000u64 {
            f.observe(&i.to_le_bytes());
        }
        let empirical = f.zero_fraction();
        let theory = f.theoretical_stable_zero_fraction();
        assert!(
            (empirical - theory).abs() < 0.08,
            "zero fraction {empirical} vs stable point {theory}"
        );
    }

    #[test]
    fn exhibits_false_negatives_under_load() {
        // The property the paper criticizes: repeats at moderate lag are
        // sometimes missed because eviction wiped them.
        let mut f = StableBloomFilter::new(StableConfig {
            m: 1 << 10,
            p: 64,
            ..cfg()
        });
        let mut missed = 0u32;
        let lag = 256u64;
        for i in 0..20_000u64 {
            f.observe(&i.to_le_bytes());
            if i >= lag && f.observe(&(i - lag).to_le_bytes()) == Verdict::Distinct {
                missed += 1;
            }
        }
        assert!(missed > 0, "expected false negatives from random eviction");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StableBloomFilter::new(cfg());
        let mut b = StableBloomFilter::new(cfg());
        for i in 0..5_000u64 {
            assert_eq!(a.observe(&i.to_le_bytes()), b.observe(&i.to_le_bytes()));
        }
    }

    #[test]
    fn reset_restores_empty() {
        let mut f = StableBloomFilter::new(cfg());
        f.observe(b"x");
        f.reset();
        assert_eq!(f.observe(b"x"), Verdict::Distinct);
        assert!((f.zero_fraction() - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "P must be")]
    fn oversized_p_panics() {
        let _ = StableBloomFilter::new(StableConfig {
            p: 1 << 20,
            ..cfg()
        });
    }
}
