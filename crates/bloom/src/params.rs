//! Classical Bloom-filter parameter math (paper §2.1).
//!
//! With `m` bits, `k` hash functions, and `n` inserted elements, the
//! false-positive rate is
//! `f = (1 − (1 − 1/m)^{kn})^k ≈ (1 − e^{−kn/m})^k`,
//! minimized at `k = ln 2 · m/n`, giving `f ≈ 2^{−k} ≈ 0.6185^{m/n}`.

use serde::{Deserialize, Serialize};

/// Sizing parameters of one Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BloomParams {
    /// Number of bits (`m`).
    pub m_bits: usize,
    /// Number of hash functions (`k`).
    pub k: usize,
}

impl BloomParams {
    /// Creates parameters after validating them.
    ///
    /// # Errors
    ///
    /// Returns a description if `m_bits == 0`, `k == 0`, or `k` is
    /// unreasonably large (> 64; no practical filter uses more).
    pub fn new(m_bits: usize, k: usize) -> Result<Self, String> {
        if m_bits == 0 {
            return Err("filter size m must be positive".into());
        }
        if k == 0 {
            return Err("hash count k must be positive".into());
        }
        if k > 64 {
            return Err(format!("hash count k = {k} exceeds the supported 64"));
        }
        Ok(Self { m_bits, k })
    }

    /// Parameters with the optimal `k` for `n` expected elements.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (e.g. `m_bits == 0`).
    pub fn with_optimal_k(m_bits: usize, n: usize) -> Result<Self, String> {
        Self::new(m_bits, optimal_k(m_bits, n))
    }

    /// Expected false-positive rate after inserting `n` elements.
    #[must_use]
    pub fn fp_rate(&self, n: usize) -> f64 {
        fp_rate(self.m_bits, self.k, n)
    }
}

/// The `k` minimizing the false-positive rate: `round(ln 2 · m/n)`,
/// clamped to `[1, 64]`.
///
/// ```rust
/// use cfd_bloom::params::optimal_k;
/// // The paper's Fig. 2(a) setting: m = 1,876,246 bits per sub-window
/// // filter, n = 2^20 / 8 elements -> k ~ 10.
/// assert_eq!(optimal_k(1_876_246, (1 << 20) / 8), 10);
/// ```
#[must_use]
pub fn optimal_k(m_bits: usize, n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let k = (std::f64::consts::LN_2 * m_bits as f64 / n as f64).round();
    (k as usize).clamp(1, 64)
}

/// Expected false-positive rate of an `(m, k)` filter holding `n`
/// elements: `(1 − e^{−kn/m})^k` (the standard approximation, §2.1).
#[must_use]
pub fn fp_rate(m_bits: usize, k: usize, n: usize) -> f64 {
    if m_bits == 0 {
        return 1.0;
    }
    if n == 0 || k == 0 {
        return 0.0;
    }
    let exponent = -((k * n) as f64) / m_bits as f64;
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Exact (non-approximated) expected false-positive rate
/// `(1 − (1 − 1/m)^{kn})^k`; used to validate the approximation in tests.
#[must_use]
pub fn fp_rate_exact(m_bits: usize, k: usize, n: usize) -> f64 {
    if m_bits == 0 {
        return 1.0;
    }
    if n == 0 || k == 0 {
        return 0.0;
    }
    let one_bit_zero = (1.0 - 1.0 / m_bits as f64).powf((k * n) as f64);
    (1.0 - one_bit_zero).powi(k as i32)
}

/// Bits required so that an optimally-tuned filter of `n` elements stays
/// at or below `target_fp`: `m = −n · ln f / (ln 2)²`, rounded up.
///
/// # Panics
///
/// Panics if `target_fp` is not in `(0, 1)`.
#[must_use]
pub fn bits_for_fp(n: usize, target_fp: f64) -> usize {
    assert!(
        target_fp > 0.0 && target_fp < 1.0,
        "target false-positive rate must be in (0, 1)"
    );
    let ln2sq = std::f64::consts::LN_2 * std::f64::consts::LN_2;
    (-(n as f64) * target_fp.ln() / ln2sq).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_k_known_points() {
        // m/n = 10 bits per element -> k = round(6.93) = 7.
        assert_eq!(optimal_k(10_000, 1_000), 7);
        // m/n ~ 14.4 (the paper's Fig. 2 settings) -> k = 10.
        assert_eq!(optimal_k(15_112_980, 1 << 20), 10);
        assert_eq!(optimal_k(100, 0), 1);
        assert_eq!(optimal_k(1, 1_000_000), 1);
    }

    #[test]
    fn fp_rate_matches_two_to_minus_k_at_optimum() {
        let m = 1 << 20;
        let n = m / 16; // 16 bits/element -> k_opt = 11
        let k = optimal_k(m, n);
        let f = fp_rate(m, k, n);
        let ideal = 0.5f64.powi(k as i32);
        assert!((f / ideal - 1.0).abs() < 0.15, "f={f} ideal={ideal}");
    }

    #[test]
    fn fp_rate_monotone_in_n() {
        let mut last = 0.0;
        for n in [0usize, 10, 100, 1_000, 10_000, 100_000] {
            let f = fp_rate(1 << 16, 5, n);
            assert!(f >= last, "fp not monotone at n={n}");
            last = f;
        }
        assert!(last < 1.0 + 1e-12);
    }

    #[test]
    fn approximation_close_to_exact_for_large_m() {
        for (m, k, n) in [(1 << 20, 10, 1 << 16), (1 << 16, 4, 10_000)] {
            let a = fp_rate(m, k, n);
            let e = fp_rate_exact(m, k, n);
            assert!((a - e).abs() < 1e-6, "m={m} k={k} n={n}: {a} vs {e}");
        }
    }

    #[test]
    fn bits_for_fp_roundtrips_through_fp_rate() {
        let n = 100_000;
        for target in [0.01, 0.001, 0.0001] {
            let m = bits_for_fp(n, target);
            let k = optimal_k(m, n);
            let achieved = fp_rate(m, k, n);
            assert!(
                achieved <= target * 1.1,
                "target={target} achieved={achieved}"
            );
        }
    }

    #[test]
    fn params_validation() {
        assert!(BloomParams::new(0, 1).is_err());
        assert!(BloomParams::new(1, 0).is_err());
        assert!(BloomParams::new(1, 65).is_err());
        let p = BloomParams::with_optimal_k(10_000, 1_000).unwrap();
        assert_eq!(p.k, 7);
        assert!(p.fp_rate(1_000) < 0.01);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn bits_for_fp_rejects_bad_target() {
        let _ = bits_for_fp(10, 1.5);
    }
}
