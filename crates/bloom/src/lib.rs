//! Bloom-filter substrate and baseline duplicate detectors.
//!
//! * [`params`] — the classical false-positive math (§2.1): optimal `k`,
//!   expected FP rate, memory sizing.
//! * [`classic::BloomFilter`] — the textbook bit-vector Bloom filter,
//!   directly deployable for landmark windows ([`classic::LandmarkBloom`],
//!   the Metwally et al. \[21\] landmark scheme).
//! * [`counting::CountingBloomFilter`] — counters instead of bits so
//!   deletion is possible (Fan et al. "summary cache" style).
//! * [`metwally::MetwallyJumping`] — the jumping-window baseline of \[21\]
//!   that the paper compares GBF against in §3.3 / Fig. 1: per-sub-window
//!   counting filters plus a combined *main* filter, expired sub-windows
//!   subtracted in an `O(m)` bulk step.
//! * [`stable::StableBloomFilter`] — Deng & Rafiei's \[10\] randomized-
//!   eviction filter; the related-work baseline *with* false negatives.
//!
//! The GBF/TBF algorithms themselves live in `cfd-core`; this crate holds
//! everything they are measured against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod counting;
pub mod metwally;
pub mod params;
pub mod stable;

pub use classic::{BloomFilter, LandmarkBloom};
pub use counting::CountingBloomFilter;
pub use metwally::MetwallyJumping;
pub use params::BloomParams;
pub use stable::StableBloomFilter;
