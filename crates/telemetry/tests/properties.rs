//! Property tests: sharded histograms must be indistinguishable from a
//! single global one once merged — the invariant the pipeline's
//! per-shard stage histograms rely on when `cfd run --metrics` folds
//! them into one latency view.

use cfd_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    /// Splitting a sample stream across any number of shard-local
    /// histograms and merging the snapshots equals recording the whole
    /// stream into one histogram, regardless of how samples are routed.
    #[test]
    fn merged_shard_histograms_equal_global(
        shards in 1usize..=16,
        samples in prop::collection::vec((any::<u64>(), 0usize..16), 0..600),
    ) {
        let shard_hists: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        let global = Histogram::new();
        for &(value, route) in &samples {
            shard_hists[route % shards].record(value);
            global.record(value);
        }

        let mut merged = HistogramSnapshot::empty();
        for h in &shard_hists {
            merged.merge(&h.snapshot());
        }

        prop_assert_eq!(merged, global.snapshot());
    }

    /// Merge is order-independent: folding shard snapshots left-to-right
    /// and right-to-left produces the same result.
    #[test]
    fn merge_is_commutative(
        a_samples in prop::collection::vec(any::<u64>(), 0..300),
        b_samples in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        for &v in &a_samples {
            a.record(v);
        }
        for &v in &b_samples {
            b.record(v);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());

        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Quantiles honour their contract on arbitrary inputs: bounded by
    /// the exact max, non-decreasing in `q`, and within one log2 bucket
    /// of a true order statistic.
    #[test]
    fn quantiles_are_ordered_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..400),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(s.max, *sorted.last().unwrap());
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= s.max);

        // p50 within one power of two of the true median.
        let true_p50 = sorted[(sorted.len() - 1) / 2];
        let est = s.p50().max(1);
        let truth = true_p50.max(1);
        prop_assert!(
            est / 2 <= truth && truth <= est.saturating_mul(2).max(1),
            "p50 estimate {est} not within 2x of true median {truth}"
        );
    }
}
