//! Stress tests for snapshot consistency under concurrent writers.
//!
//! Loom-style in spirit: writer threads hammer the instruments while a
//! reader takes registry snapshots and checks the invariants the
//! torn-read-safe design promises — counters are monotone across
//! snapshots, never exceed the acknowledged write total, and histogram
//! `count` always equals the sum of its buckets.

use cfd_telemetry::{MetricValue, Registry};
use crossbeam::channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Writers report committed increments over a crossbeam channel; the
/// channel's internal lock orders those (relaxed) counter writes before
/// the reader's load, so acknowledged work must be visible: after the
/// reader has received acks totalling `T`, every snapshot satisfies
/// `T <= counter <= total_writes_eventually`.
#[test]
fn counter_snapshots_are_monotone_and_bound_acked_writes() {
    const WRITERS: usize = 8;
    const BATCHES: u64 = 200;
    const PER_BATCH: u64 = 500;

    let registry = Arc::new(Registry::new());
    let clicks = registry.counter("stress.clicks", "clicks", "stress writes");
    let (ack_tx, ack_rx) = channel::unbounded::<u64>();

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let clicks = Arc::clone(&clicks);
            let ack_tx = ack_tx.clone();
            s.spawn(move || {
                for _ in 0..BATCHES {
                    for _ in 0..PER_BATCH {
                        clicks.inc();
                    }
                    ack_tx.send(PER_BATCH).unwrap();
                }
            });
        }
        drop(ack_tx);

        let mut acked = 0u64;
        let mut last_seen = 0u64;
        while let Ok(n) = ack_rx.recv() {
            acked += n;
            let snap = registry.snapshot();
            let now = snap.get_counter("stress.clicks").unwrap();
            assert!(
                now >= acked,
                "snapshot {now} below acknowledged writes {acked}"
            );
            assert!(
                now >= last_seen,
                "counter went backwards: {last_seen} -> {now}"
            );
            assert!(now <= WRITERS as u64 * BATCHES * PER_BATCH);
            last_seen = now;
        }
    });

    assert_eq!(clicks.get(), WRITERS as u64 * BATCHES * PER_BATCH);
}

/// A histogram snapshot's derived `count` can never disagree with its
/// buckets, and bucket counts are monotone, even while writers record.
#[test]
fn histogram_snapshots_stay_internally_consistent() {
    let registry = Arc::new(Registry::new());
    let latency = registry.histogram("stress.lat", "ns", "stress samples");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let latency = Arc::clone(&latency);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut v = t + 1;
                while !done.load(Ordering::Relaxed) {
                    latency.record(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            });
        }

        let mut last = [0u64; cfd_telemetry::BUCKETS];
        for _ in 0..5_000 {
            let snap = registry.snapshot();
            let MetricValue::Histogram(ref h) = snap.entries[0].value else {
                panic!("expected histogram entry");
            };
            assert_eq!(h.count, h.buckets.iter().sum::<u64>());
            for (b, (&now, &before)) in h.buckets.iter().zip(&last).enumerate() {
                assert!(now >= before, "bucket {b} went backwards");
            }
            last = h.buckets;
        }
        done.store(true, Ordering::Relaxed);
    });
}

/// Mixed-instrument registries snapshot cleanly under load and render
/// parseable JSON lines throughout.
#[test]
fn json_rendering_is_stable_under_writes() {
    let registry = Arc::new(Registry::new());
    let c = registry.counter("mix.count", "clicks", "");
    let g = registry.gauge("mix.depth", "batches", "");
    let f = registry.float_gauge("mix.fill", "ratio", "");
    let h = registry.histogram("mix.lat", "ns", "");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let (c, g, f, h) = (
                Arc::clone(&c),
                Arc::clone(&g),
                Arc::clone(&f),
                Arc::clone(&h),
            );
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut i = 0u64;
                while !done.load(Ordering::Relaxed) {
                    c.inc();
                    g.set(i as i64 % 64);
                    f.set(i as f64 / 1e6);
                    h.record(i % 100_000);
                    i += 1;
                }
            });
        }
        for _ in 0..2_000 {
            let line = registry.snapshot().to_json_line();
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"mix.count\""));
            assert!(!line.contains('\n'));
        }
        done.store(true, Ordering::Relaxed);
    });
}
