//! # cfd-telemetry — observability for the click-fraud detection stack
//!
//! The ROADMAP north star is a production-scale system serving heavy
//! pay-per-click traffic; this crate is how that system is *watched*.
//! It provides lock-free metric primitives, a [`Registry`] that renders
//! consistent snapshots as a human table or JSON lines, a periodic
//! [`Reporter`] thread, and the [`DetectorStats`] health contract that
//! every duplicate detector in the workspace implements.
//!
//! Everything is built on `std` atomics only — no external
//! dependencies, no locks on any hot path:
//!
//! * [`Counter`] — a monotone event counter striped over cache-padded
//!   `AtomicU64`s so concurrent writers (one pipeline worker per shard)
//!   never contend on one cache line.
//! * [`Gauge`] / [`FloatGauge`] — last-value instruments for levels
//!   (queue depths, fill ratios, online FP estimates).
//! * [`Histogram`] — a log2-bucketed `u64` histogram (65 buckets, one
//!   per power of two) with mergeable [`HistogramSnapshot`]s and
//!   p50/p90/p99/max estimation, used for per-stage latencies.
//! * [`Registry`] + [`Snapshot`] — named registration and torn-read-safe
//!   snapshotting: every atomic is read exactly once per snapshot, so a
//!   snapshot taken mid-traffic is internally consistent per metric and
//!   monotone across snapshots for counters.
//! * [`Reporter`] — a background thread printing snapshots at a fixed
//!   interval (the `cfd run --metrics` machinery).
//! * [`DetectorStats`] / [`DetectorHealth`] — per-detector health:
//!   fill ratio per sub-window, cleaning backlog, sweep position,
//!   evictions, observed duplicate rate, and an online false-positive
//!   estimate computed from live occupancy (cross-checked against the
//!   `cfd-analysis` closed forms in the integration suite).
//!
//! ## Quick start
//!
//! ```rust
//! use cfd_telemetry::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let clicks = registry.counter("pipeline.ingest.clicks", "clicks", "clicks admitted");
//! let latency = registry.histogram("pipeline.stage.probe_ns", "ns", "probe latency per batch");
//!
//! clicks.add(1024);
//! latency.record(83_000);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.get_counter("pipeline.ingest.clicks"), Some(1024));
//! println!("{}", snap.to_table());       // human-readable
//! println!("{}", snap.to_json_line());   // one JSON object per snapshot
//! ```
//!
//! The full metric catalog emitted by the pipeline and CLI lives in
//! `docs/OBSERVABILITY.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod gauge;
pub mod health;
pub mod histogram;
pub mod registry;
pub mod reporter;

pub use counter::Counter;
pub use gauge::{FloatGauge, Gauge};
pub use health::{DetectorHealth, DetectorStats, TenantHealth};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot, SnapshotEntry};
pub use reporter::{Reporter, SnapshotFormat};
