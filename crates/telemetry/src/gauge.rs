//! Last-value instruments: integer and floating-point gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A signed integer level (queue depth, heap size, live entry count).
///
/// All operations are single relaxed atomics; a reader sees some value
/// the gauge actually held (never a torn mix of two writes).
///
/// ```rust
/// use cfd_telemetry::Gauge;
/// let g = Gauge::new();
/// g.add(5);
/// g.sub(2);
/// assert_eq!(g.get(), 3);
/// g.set_max(10);
/// assert_eq!(g.get(), 10);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments the level by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements the level by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A floating-point level (fill ratio, FP estimate, duplicate rate).
///
/// Stored as the `f64` bit pattern in one `AtomicU64`, so reads are
/// torn-read safe: a reader always sees a value some writer actually
/// stored.
///
/// ```rust
/// use cfd_telemetry::FloatGauge;
/// let g = FloatGauge::new();
/// g.set(0.25);
/// assert_eq!(g.get(), 0.25);
/// ```
#[derive(Debug)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl Default for FloatGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl FloatGauge {
    /// Creates a gauge holding `0.0`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Sets the level. Non-finite values are stored as `0.0` so JSON
    /// output stays parseable.
    #[inline]
    pub fn set(&self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_gauge_tracks_level() {
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(g.get(), 6);
        g.set_max(2);
        assert_eq!(g.get(), 6, "set_max never lowers");
        g.set_max(100);
        assert_eq!(g.get(), 100);
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0, "non-finite stored as zero");
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.0);
    }
}
