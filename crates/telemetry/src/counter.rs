//! Sharded, lock-free monotone counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of independent stripes a [`Counter`] spreads its writers over.
///
/// Sized for the pipeline's worker counts (one writer per keyspace
/// shard plus ingest/billing); more concurrent writers than stripes
/// still work, they just start sharing cache lines.
pub const STRIPES: usize = 16;

/// One cache line worth of counter, so adjacent stripes never falsely
/// share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

thread_local! {
    /// This thread's home stripe, assigned round-robin at first use.
    static HOME_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

/// A monotone event counter safe for any number of concurrent writers.
///
/// Writes go to the calling thread's home stripe (one relaxed
/// `fetch_add`, no contention between pipeline workers); reads sum the
/// stripes, reading each atomic exactly once, so concurrent snapshots
/// are torn-read safe and monotone: each stripe is monotone, and a sum
/// of once-read monotone values can never exceed a later sum.
///
/// ```rust
/// use cfd_telemetry::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(9);
/// assert_eq!(c.get(), 10);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = HOME_STRIPE.with(|s| *s);
        self.stripes[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total: the sum over all stripes, each read exactly once.
    ///
    /// Under concurrent writers the value is a *consistent lower bound*
    /// of the eventual total and is non-decreasing across calls.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn concurrent_writers_sum_exactly() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per = 50_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per);
    }

    #[test]
    fn reads_are_monotone_under_writers() {
        let c = Arc::new(Counter::new());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        c.add(7);
                    }
                });
            }
            let mut last = 0u64;
            for _ in 0..10_000 {
                let now = c.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
            done.store(true, Ordering::Relaxed);
        });
    }
}
