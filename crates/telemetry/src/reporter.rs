//! Periodic snapshot reporting: the thread behind `cfd run --metrics`.

use crate::registry::Registry;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How [`Reporter`] renders each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Aligned human-readable table ([`crate::Snapshot::to_table`]).
    Table,
    /// One JSON object per line ([`crate::Snapshot::to_json_line`]).
    JsonLines,
}

/// A background thread that snapshots a [`Registry`] at a fixed
/// interval and writes the rendering to standard error.
///
/// Output goes to stderr so experiment results on stdout stay
/// machine-readable. An optional `on_tick` callback runs before each
/// snapshot; the pipeline uses it to raise per-shard health-request
/// flags so workers publish fresh detector health without the reporter
/// ever touching a detector (workers own them exclusively).
///
/// Call [`Reporter::stop`] to emit one final snapshot and join the
/// thread; dropping without `stop` aborts the loop without a final
/// snapshot.
pub struct Reporter {
    stop_tx: Option<mpsc::Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns the reporter thread.
    ///
    /// `on_tick` runs on the reporter thread immediately before every
    /// snapshot (including the final one at [`Reporter::stop`]).
    pub fn spawn(
        registry: Arc<Registry>,
        interval: Duration,
        format: SnapshotFormat,
        on_tick: impl Fn() + Send + 'static,
    ) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("cfd-telemetry-reporter".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {
                        on_tick();
                        emit(&registry, format);
                    }
                    Ok(()) => {
                        // Graceful stop: one final snapshot so short runs
                        // (shorter than `interval`) still report.
                        on_tick();
                        emit(&registry, format);
                        return;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawn telemetry reporter");
        Self {
            stop_tx: Some(stop_tx),
            handle: Some(handle),
        }
    }

    /// Emits one final snapshot and joins the reporter thread.
    pub fn stop(mut self) {
        if let Some(tx) = &self.stop_tx {
            let _ = tx.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        // Dropping the sender disconnects the channel; the loop sees
        // `Disconnected` and exits without a final snapshot (unless
        // `stop` already sent the graceful signal above).
        drop(self.stop_tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn emit(registry: &Registry, format: SnapshotFormat) {
    let snap = registry.snapshot();
    match format {
        SnapshotFormat::Table => eprint!("{}", snap.to_table()),
        SnapshotFormat::JsonLines => eprintln!("{}", snap.to_json_line()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ticks_run_and_stop_joins() {
        let registry = Arc::new(Registry::new());
        registry.counter("r.ticks", "ticks", "").add(1);
        let ticks = Arc::new(AtomicU64::new(0));
        let ticks_inner = Arc::clone(&ticks);
        let reporter = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_millis(5),
            SnapshotFormat::JsonLines,
            move || {
                ticks_inner.fetch_add(1, Ordering::Relaxed);
            },
        );
        std::thread::sleep(Duration::from_millis(40));
        reporter.stop();
        // At least one periodic tick plus the final stop tick.
        assert!(ticks.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn stop_emits_final_tick_even_on_short_runs() {
        let registry = Arc::new(Registry::new());
        let ticks = Arc::new(AtomicU64::new(0));
        let ticks_inner = Arc::clone(&ticks);
        let reporter = Reporter::spawn(
            registry,
            Duration::from_secs(3600),
            SnapshotFormat::Table,
            move || {
                ticks_inner.fetch_add(1, Ordering::Relaxed);
            },
        );
        reporter.stop();
        assert_eq!(ticks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_without_stop_terminates() {
        let registry = Arc::new(Registry::new());
        let reporter = Reporter::spawn(
            registry,
            Duration::from_secs(3600),
            SnapshotFormat::Table,
            || {},
        );
        drop(reporter); // must not hang
    }
}
