//! Named metric registration and consistent snapshot rendering.

use crate::counter::Counter;
use crate::gauge::{FloatGauge, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One registered instrument.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

struct Metric {
    name: String,
    unit: &'static str,
    help: String,
    instrument: Instrument,
}

/// Central metric directory: hands out shared instrument handles and
/// renders consistent [`Snapshot`]s.
///
/// Registration takes a mutex (cold path, done once at startup);
/// recording through the returned `Arc` handles is lock-free. A
/// snapshot reads every underlying atomic exactly once, so counter
/// values are monotone across snapshots even under full write load
/// (stress-tested in `tests/concurrency.rs`).
///
/// Metric names are dotted paths (`pipeline.shard0.queue_depth`); the
/// full catalog the pipeline emits is documented in
/// `docs/OBSERVABILITY.md`.
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
    seq: AtomicU64,
    started: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            metrics: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    fn register(&self, name: &str, unit: &'static str, help: &str, instrument: Instrument) {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        assert!(
            !metrics.iter().any(|m| m.name == name),
            "metric `{name}` registered twice"
        );
        metrics.push(Metric {
            name: name.to_owned(),
            unit,
            help: help.to_owned(),
            instrument,
        });
    }

    /// Registers and returns a monotone [`Counter`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (a programming error).
    pub fn counter(&self, name: &str, unit: &'static str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, unit, help, Instrument::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns an integer [`Gauge`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn gauge(&self, name: &str, unit: &'static str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, unit, help, Instrument::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a [`FloatGauge`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn float_gauge(&self, name: &str, unit: &'static str, help: &str) -> Arc<FloatGauge> {
        let g = Arc::new(FloatGauge::new());
        self.register(name, unit, help, Instrument::FloatGauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a log2 [`Histogram`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn histogram(&self, name: &str, unit: &'static str, help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register(name, unit, help, Instrument::Histogram(Arc::clone(&h)));
        h
    }

    /// Takes a consistent snapshot of every registered metric.
    ///
    /// Each underlying atomic is loaded exactly once; the snapshot
    /// sequence number increments per call so JSON-lines consumers can
    /// detect gaps.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let entries = metrics
            .iter()
            .map(|m| SnapshotEntry {
                name: m.name.clone(),
                unit: m.unit,
                help: m.help.clone(),
                value: match &m.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::FloatGauge(g) => MetricValue::Float(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        Snapshot {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            entries,
        }
    }
}

/// The value of one metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Integer gauge level.
    Gauge(i64),
    /// Floating-point gauge level.
    Float(f64),
    /// Full histogram state (boxed: a snapshot carries 65 buckets and
    /// would otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric's name, metadata, and sampled value.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Dotted metric name.
    pub name: String,
    /// Unit label (`clicks`, `batches`, `ns`, `ratio`).
    pub unit: &'static str,
    /// One-line description from registration.
    pub help: String,
    /// Sampled value.
    pub value: MetricValue,
}

/// A point-in-time view of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot sequence number (0-based, per registry).
    pub seq: u64,
    /// Milliseconds since the registry was created.
    pub elapsed_ms: u64,
    /// All metrics, in registration order.
    pub entries: Vec<SnapshotEntry>,
}

/// Escapes a string for a JSON string literal (control chars, quotes,
/// backslashes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (non-finite becomes `0`, keeping
/// every emitted line strictly parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

impl Snapshot {
    /// Looks up a counter value by name.
    #[must_use]
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| {
            if let MetricValue::Counter(v) = e.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Looks up an integer gauge level by name.
    #[must_use]
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| {
            if let MetricValue::Gauge(v) = e.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Looks up a histogram snapshot by name.
    #[must_use]
    pub fn get_histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| {
            if let MetricValue::Histogram(ref h) = e.value {
                Some(&**h)
            } else {
                None
            }
        })
    }

    /// Renders the snapshot as an aligned human-readable table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== telemetry snapshot #{} (t+{:.1}s) ==",
            self.seq,
            self.elapsed_ms as f64 / 1000.0
        );
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0)
            .max(24);
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{:<width$}  counter    {v} {}", e.name, e.unit);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{:<width$}  gauge      {v} {}", e.name, e.unit);
                }
                MetricValue::Float(v) => {
                    let _ = writeln!(out, "{:<width$}  gauge      {v:.6} {}", e.name, e.unit);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{:<width$}  histogram  count={} mean={:.0} p50={} p90={} p99={} max={} {}",
                        e.name,
                        h.count,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                        e.unit,
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object on a single line
    /// (JSON-lines framing: one snapshot per line, no trailing
    /// newline).
    ///
    /// Shape:
    ///
    /// ```json
    /// {"seq":0,"elapsed_ms":12,"metrics":{
    ///    "a.counter":{"type":"counter","unit":"clicks","value":7},
    ///    "a.hist":{"type":"histogram","unit":"ns","count":9,"sum":123,
    ///              "mean":13.7,"p50":8,"p90":60,"p99":60,"max":61}}}
    /// ```
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"elapsed_ms\":{},\"metrics\":{{",
            self.seq, self.elapsed_ms
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"type\":\"{}\",\"unit\":\"{}\"",
                json_escape(&e.name),
                match e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) | MetricValue::Float(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                },
                json_escape(e.unit),
            );
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Float(v) => {
                    let _ = write!(out, ",\"value\":{}", json_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                        h.count,
                        h.sum,
                        json_f64(h.mean()),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                    );
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_snapshots_every_kind() {
        let r = Registry::new();
        let c = r.counter("t.count", "clicks", "clicks seen");
        let g = r.gauge("t.depth", "batches", "queue depth");
        let f = r.float_gauge("t.fill", "ratio", "fill ratio");
        let h = r.histogram("t.lat", "ns", "latency");
        c.add(5);
        g.set(-2);
        f.set(0.5);
        h.record(1000);

        let s = r.snapshot();
        assert_eq!(s.seq, 0);
        assert_eq!(s.entries.len(), 4);
        assert_eq!(s.get_counter("t.count"), Some(5));
        assert_eq!(s.get_histogram("t.lat").map(|h| h.count), Some(1));
        assert_eq!(r.snapshot().seq, 1, "sequence increments");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let r = Registry::new();
        let _a = r.counter("dup", "x", "");
        let _b = r.gauge("dup", "x", "");
    }

    #[test]
    fn table_lists_every_metric() {
        let r = Registry::new();
        r.counter("a.one", "clicks", "").add(1);
        r.histogram("a.two", "ns", "").record(5);
        let table = r.snapshot().to_table();
        assert!(table.contains("a.one"));
        assert!(table.contains("a.two"));
        assert!(table.contains("p99="));
    }

    #[test]
    fn json_line_is_single_line_and_balanced() {
        let r = Registry::new();
        r.counter("m.count", "clicks", "help").add(42);
        r.float_gauge("m.fill", "ratio", "help").set(0.25);
        r.histogram("m.lat", "ns", "help").record(77);
        let line = r.snapshot().to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "balanced braces: {line}"
        );
        assert!(
            line.contains("\"m.count\":{\"type\":\"counter\",\"unit\":\"clicks\",\"value\":42}")
        );
        assert!(line.contains("\"p99\":77"));
        assert!(line.starts_with("{\"seq\":0,"));
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::new();
        r.counter("we\"ird\\name", "u\tnit", "").add(1);
        let line = r.snapshot().to_json_line();
        assert!(line.contains("we\\\"ird\\\\name"));
        assert!(line.contains("u\\tnit"));
    }

    #[test]
    fn non_finite_floats_stay_parseable() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
