//! Detector health: the [`DetectorStats`] contract and the
//! [`DetectorHealth`] sample it produces.
//!
//! Every duplicate detector in the workspace — the Group Bloom Filter
//! (jumping windows, paper §4), the Timing Bloom Filter (sliding
//! windows, paper §5), and the exact baselines — answers the same
//! questions: how full am I, how far behind is my cleaning, how many
//! duplicates have I flagged, and what false-positive rate does my
//! *live occupancy* imply. The last one matters most operationally: the
//! sizing rules in `cfd-analysis` predict the FP rate from `n`, `m`,
//! and `k` at design time, and [`DetectorStats::estimated_fp`] recomputes
//! it from the filter's actual bit occupancy at run time, so a skewed
//! or hotter-than-provisioned stream shows up as the two diverging.

/// A point-in-time health sample from one detector.
///
/// Produced by [`DetectorStats::health`]; the pipeline publishes these
/// through per-shard gauges and `cfd run --metrics` prints them in each
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorHealth {
    /// Detector implementation name (`gbf`, `tbf`, `exact-sliding`, ...).
    pub detector: &'static str,
    /// Fill ratio per sub-window: fraction of set bits per active GBF
    /// lane, or the single occupancy ratio for TBF/exact detectors.
    pub fill_ratios: Vec<f64>,
    /// Fraction of pending amortized cleaning work still outstanding
    /// (GBF spare-lane reset; 0 when idle or not applicable).
    pub cleaning_backlog: f64,
    /// Normalized position of the incremental sweep through the filter
    /// (TBF `clean_next / m`; 0 when not applicable).
    pub sweep_position: f64,
    /// Total entries expired/evicted by cleaning so far.
    pub cleaned_entries: u64,
    /// Total clicks observed.
    pub observed_elements: u64,
    /// Total clicks flagged as duplicates.
    pub observed_duplicates: u64,
    /// Online false-positive estimate from live occupancy (see
    /// [`DetectorStats::estimated_fp`]).
    pub estimated_fp: f64,
}

impl DetectorHealth {
    /// Mean fill ratio across sub-windows (0 when there are none).
    #[must_use]
    pub fn mean_fill(&self) -> f64 {
        if self.fill_ratios.is_empty() {
            0.0
        } else {
            self.fill_ratios.iter().sum::<f64>() / self.fill_ratios.len() as f64
        }
    }

    /// Peak fill ratio across sub-windows (0 when there are none).
    #[must_use]
    pub fn max_fill(&self) -> f64 {
        self.fill_ratios.iter().copied().fold(0.0, f64::max)
    }

    /// Observed duplicate rate: duplicates / elements (0 when no
    /// traffic has been seen).
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        if self.observed_elements == 0 {
            0.0
        } else {
            self.observed_duplicates as f64 / self.observed_elements as f64
        }
    }

    /// Merges per-shard samples into one aggregate view: fill ratios
    /// are concatenated, counters summed, backlog/sweep/FP averaged
    /// over the inputs. Returns `None` for an empty slice.
    #[must_use]
    pub fn aggregate(samples: &[Self]) -> Option<Self> {
        let first = samples.first()?;
        let n = samples.len() as f64;
        Some(Self {
            detector: first.detector,
            fill_ratios: samples
                .iter()
                .flat_map(|s| s.fill_ratios.iter().copied())
                .collect(),
            cleaning_backlog: samples.iter().map(|s| s.cleaning_backlog).sum::<f64>() / n,
            sweep_position: samples.iter().map(|s| s.sweep_position).sum::<f64>() / n,
            cleaned_entries: samples.iter().map(|s| s.cleaned_entries).sum(),
            observed_elements: samples.iter().map(|s| s.observed_elements).sum(),
            observed_duplicates: samples.iter().map(|s| s.observed_duplicates).sum(),
            estimated_fp: samples.iter().map(|s| s.estimated_fp).sum::<f64>() / n,
        })
    }
}

/// A point-in-time sample of a multi-tenant detector's slot economy.
///
/// Produced by [`DetectorStats::tenant_health`] for backends that pack
/// many logical per-tenant windows into one shared slab (the arena);
/// single-tenant detectors return `None` and the pipeline skips the
/// `arena.*` gauges entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantHealth {
    /// Slots currently allocated (live + free).
    pub slots: usize,
    /// Tenants currently materialized.
    pub live_tenants: usize,
    /// Tenants decayed by idle eviction since construction.
    pub evictions: u64,
    /// `live_tenants / slots` in `[0, 1]`.
    pub occupancy: f64,
    /// Amortized slab bytes per live tenant (0 when no tenant is live).
    pub bytes_per_live_tenant: f64,
}

/// Health introspection implemented by every detector in the workspace.
///
/// The accessors are allowed to be `O(m)` in the filter size — callers
/// (the pipeline reporter) poll them at snapshot cadence, never on the
/// per-click hot path. See `crates/adnet`'s request-flag pattern:
/// workers only compute health when the reporter has asked for it.
pub trait DetectorStats {
    /// Implementation name; defaults match `DuplicateDetector::name`.
    fn stats_name(&self) -> &'static str;

    /// Fill ratio per sub-window (active GBF lanes, or one entry for
    /// single-table detectors). Each value is in `[0, 1]`.
    fn fill_ratios(&self) -> Vec<f64>;

    /// Fraction of pending amortized cleaning still outstanding, in
    /// `[0, 1]`. Non-zero only for detectors with deferred cleaning
    /// (GBF spare-lane reset).
    fn cleaning_backlog(&self) -> f64 {
        0.0
    }

    /// Normalized incremental-sweep position `clean_next / m` in
    /// `[0, 1)`. Non-zero only for sweeping detectors (TBF).
    fn sweep_position(&self) -> f64 {
        0.0
    }

    /// Total entries expired or evicted by cleaning so far.
    fn cleaned_entries(&self) -> u64 {
        0
    }

    /// Total clicks observed since construction/reset.
    fn observed_elements(&self) -> u64;

    /// Total clicks flagged as duplicates since construction/reset.
    fn observed_duplicates(&self) -> u64;

    /// Online false-positive estimate computed from the filter's live
    /// occupancy: for a Bloom-style filter with `k` hash functions the
    /// probability a fresh key collides is `fill^k` per probed table,
    /// combined across whatever tables are probed. Exact detectors
    /// return `0.0`.
    fn estimated_fp(&self) -> f64;

    /// Number of `O(m)` occupancy scans this detector has performed
    /// (fill-ratio / active-entry passes, including those inside
    /// [`DetectorStats::health`]). These are snapshot-cadence
    /// operations; hot loops must never trigger them. Benchmarks assert
    /// this stays constant across a timed section — see
    /// `cfd-bench`'s `throughput` binary. Defaults to 0 for detectors
    /// that do not track it.
    fn occupancy_scans(&self) -> u64 {
        0
    }

    /// The slot-economy sample for multi-tenant backends, `None` for
    /// single-tenant detectors. The pipeline publishes a `Some` as the
    /// per-shard `arena.*` gauges at the same request-flag cadence as
    /// [`DetectorStats::health`].
    fn tenant_health(&self) -> Option<TenantHealth> {
        None
    }

    /// Assembles the full [`DetectorHealth`] sample.
    fn health(&self) -> DetectorHealth {
        DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: self.fill_ratios(),
            cleaning_backlog: self.cleaning_backlog(),
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: self.estimated_fp(),
        }
    }
}

impl<D: DetectorStats + ?Sized> DetectorStats for Box<D> {
    fn stats_name(&self) -> &'static str {
        (**self).stats_name()
    }
    fn fill_ratios(&self) -> Vec<f64> {
        (**self).fill_ratios()
    }
    fn cleaning_backlog(&self) -> f64 {
        (**self).cleaning_backlog()
    }
    fn sweep_position(&self) -> f64 {
        (**self).sweep_position()
    }
    fn cleaned_entries(&self) -> u64 {
        (**self).cleaned_entries()
    }
    fn observed_elements(&self) -> u64 {
        (**self).observed_elements()
    }
    fn observed_duplicates(&self) -> u64 {
        (**self).observed_duplicates()
    }
    fn estimated_fp(&self) -> f64 {
        (**self).estimated_fp()
    }
    fn occupancy_scans(&self) -> u64 {
        (**self).occupancy_scans()
    }
    fn tenant_health(&self) -> Option<TenantHealth> {
        (**self).tenant_health()
    }
    fn health(&self) -> DetectorHealth {
        (**self).health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl DetectorStats for Fake {
        fn stats_name(&self) -> &'static str {
            "fake"
        }
        fn fill_ratios(&self) -> Vec<f64> {
            vec![0.25, 0.75]
        }
        fn observed_elements(&self) -> u64 {
            100
        }
        fn observed_duplicates(&self) -> u64 {
            10
        }
        fn estimated_fp(&self) -> f64 {
            0.01
        }
    }

    #[test]
    fn health_assembles_defaults() {
        let h = Fake.health();
        assert_eq!(h.detector, "fake");
        assert_eq!(h.mean_fill(), 0.5);
        assert_eq!(h.max_fill(), 0.75);
        assert_eq!(h.duplicate_rate(), 0.1);
        assert_eq!(h.cleaning_backlog, 0.0);
        assert_eq!(h.sweep_position, 0.0);
        assert_eq!(h.cleaned_entries, 0);
    }

    #[test]
    fn boxed_and_dyn_delegate() {
        let boxed: Box<dyn DetectorStats> = Box::new(Fake);
        assert_eq!(boxed.health(), Fake.health());
    }

    #[test]
    fn aggregate_sums_and_averages() {
        let a = Fake.health();
        let mut b = Fake.health();
        b.estimated_fp = 0.03;
        let agg = DetectorHealth::aggregate(&[a, b]).unwrap();
        assert_eq!(agg.observed_elements, 200);
        assert_eq!(agg.observed_duplicates, 20);
        assert_eq!(agg.fill_ratios.len(), 4);
        assert!((agg.estimated_fp - 0.02).abs() < 1e-12);
        assert!(DetectorHealth::aggregate(&[]).is_none());
    }

    #[test]
    fn empty_health_rates_are_zero() {
        let h = DetectorHealth {
            detector: "empty",
            fill_ratios: vec![],
            cleaning_backlog: 0.0,
            sweep_position: 0.0,
            cleaned_entries: 0,
            observed_elements: 0,
            observed_duplicates: 0,
            estimated_fp: 0.0,
        };
        assert_eq!(h.mean_fill(), 0.0);
        assert_eq!(h.duplicate_rate(), 0.0);
    }
}
