//! Log2-bucketed latency histograms over `u64` atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index of `v`: 0 for zero, else `64 − leading_zeros(v)`, so
/// bucket `b ≥ 1` spans `[2^(b−1), 2^b − 1]`.
#[inline]
#[must_use]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` of bucket `b`.
#[inline]
fn bucket_range(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else if b >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (b - 1), (1 << b) - 1)
    }
}

/// A lock-free histogram with logarithmic (power-of-two) buckets.
///
/// `record` is three relaxed atomic RMWs (bucket count, running sum,
/// running max) — cheap enough for per-batch latency samples on the
/// pipeline hot path. [`Histogram::snapshot`] reads every atomic
/// exactly once, so snapshots taken under concurrent writers are
/// torn-read safe and bucket counts are monotone across snapshots.
///
/// Quantiles are estimated from the bucket counts with linear
/// interpolation inside the winning bucket, so the estimate is within
/// one power of two of the true order statistic — the right resolution
/// for latency work where distributions span decades.
///
/// ```rust
/// use cfd_telemetry::Histogram;
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.max, 1000);
/// assert!(s.p50() >= 2 && s.p50() <= 3);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy: every atomic is read exactly
    /// once. The derived `count` is the sum of the bucket reads, so it
    /// can never disagree with the buckets it was computed from.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state; mergeable across
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket.
    pub buckets: [u64; BUCKETS],
    /// Total samples (always the sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`); wraps on
    /// `u64` overflow, unreachable for realistic latency totals.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Folds `other` into `self`: the result equals a snapshot of one
    /// histogram that had recorded both sample sets (per-shard
    /// histograms merge into the global view this way).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // Wrapping, matching `record`'s atomic add: merging shard
        // snapshots equals one histogram that saw all samples, bit for
        // bit, even in the overflow regime.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q ∈ [0, 1]`, linearly interpolated
    /// inside the winning log2 bucket (0 when empty). The estimate for
    /// the top-most populated bucket is additionally clamped to the
    /// exact recorded `max`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic we are after.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The largest sample is tracked exactly; no need to estimate.
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_range(b);
                let within = (rank - seen - 1) as f64 / n as f64; // [0, 1)
                let est = lo + ((hi - lo) as f64 * within) as u64;
                return est.min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 32) - 1), 32);
        assert_eq!(bucket_of(1 << 32), 33);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn zero_one_and_max_are_recorded() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn exact_powers_of_two_open_new_buckets() {
        let h = Histogram::new();
        for shift in 0..64u32 {
            h.record(1u64 << shift);
        }
        let s = h.snapshot();
        // 1 << 0 = 1 lands in bucket 1, ..., 1 << 63 in bucket 64.
        for b in 1..BUCKETS {
            assert_eq!(s.buckets[b], 1, "bucket {b}");
        }
        assert_eq!(s.buckets[0], 0);
    }

    #[test]
    fn boundary_values_stay_in_lower_bucket() {
        let h = Histogram::new();
        for shift in 1..64u32 {
            h.record((1u64 << shift) - 1); // top value of bucket `shift`
        }
        let s = h.snapshot();
        for b in 1..64 {
            assert_eq!(s.buckets[b], 1, "bucket {b}");
        }
        assert_eq!(s.buckets[64], 0);
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // log2 resolution: the estimate is within one bucket (2x) of truth.
        let p50 = s.p50();
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!(s.p90() >= s.p50());
        assert!(s.p99() >= s.p90());
        assert!(s.p99() <= s.max);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn quantile_extremes() {
        let h = Histogram::new();
        h.record(5);
        h.record(500);
        let s = h.snapshot();
        assert!(s.quantile(0.0) <= 7, "q0 within first bucket");
        assert_eq!(s.quantile(1.0), 500);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..2_000u64 {
            if v % 2 == 0 {
                a.record(v * 31);
            } else {
                b.record(v * 31);
            }
            all.record(v * 31);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
