//! Command-line scale selection shared by the figure binaries.

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick laptop scale: `N = 2^18`, parameters shrunk proportionally.
    Quick,
    /// The paper's exact scale: `N = 2^20`.
    Paper,
    /// Tiny smoke-test scale for CI: `N = 2^14`.
    Smoke,
}

impl Scale {
    // Scale selection from the command line lives in `crate::args`
    // (`Parsed::scale`), which rejects unknown arguments with a typed
    // `UsageError` instead of the warn-and-continue this module's old
    // `from_args` did.

    /// The window size `N` at this scale.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Scale::Paper => 1 << 20,
            Scale::Quick => 1 << 18,
            Scale::Smoke => 1 << 14,
        }
    }

    /// Scales a paper-sized auxiliary quantity (like the Fig. 2 filter
    /// sizes) by `n() / 2^20`, keeping the paper's ratios.
    #[must_use]
    pub fn scaled(&self, paper_value: usize) -> usize {
        (paper_value * self.n() / (1 << 20)).max(1)
    }

    /// Human-readable label for output headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Paper => "paper (N = 2^20)",
            Scale::Quick => "quick (N = 2^18, paper ratios)",
            Scale::Smoke => "smoke (N = 2^14, paper ratios)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preserves_ratio() {
        assert_eq!(Scale::Paper.scaled(15_112_980), 15_112_980);
        assert_eq!(Scale::Quick.scaled(1 << 20), 1 << 18);
        assert_eq!(Scale::Smoke.scaled(64), 1);
    }

    #[test]
    fn n_values() {
        assert_eq!(Scale::Paper.n(), 1 << 20);
        assert_eq!(Scale::Quick.n(), 1 << 18);
        assert_eq!(Scale::Smoke.n(), 1 << 14);
    }
}
