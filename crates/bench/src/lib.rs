//! Shared harness for the figure/table binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper (see DESIGN.md §3 for the full index):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig1` | Fig. 1 — FP rate vs. window size, \[21\] scheme vs. GBF |
//! | `fig2a` | Fig. 2(a) — GBF FP over jumping windows, theory vs. experiment |
//! | `fig2b` | Fig. 2(b) — TBF FP over sliding windows, theory vs. experiment |
//! | `table_ops` | Theorems 1 & 2 — per-element memory operations + throughput |
//! | `table_fn` | Theorems 1.1 & 2.1 — zero-false-negative verification |
//! | `table_adnet` | §1.1 — end-to-end fraud savings in the PPC simulator |
//!
//! All binaries accept `--paper` to run at the paper's full `N = 2^20`
//! scale (minutes) instead of the quick default `N = 2^18` (seconds),
//! and print tab-separated series suitable for plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod fp;
pub mod naive;
pub mod scale;

pub use args::{parse as parse_args, parse_or_exit as parse_args_or_exit, Parsed as ParsedArgs};
pub use fp::{measure_fp, FpMeasurement};
pub use naive::NaiveJumpingBloom;
pub use scale::Scale;
