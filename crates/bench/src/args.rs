//! Typed command-line parsing for the benchmark binaries.
//!
//! Every `cfd-bench` bin used to hand-roll its argument loop (or warn
//! and continue on junk); this module routes them all through the
//! typed [`UsageError`] path the `cfd` binary already uses, so a
//! mistyped flag or an unreadable `--scenario` file is a named-option
//! rejection with exit code 2, never a panic with a backtrace.

use crate::scale::Scale;
use click_fraud_detection::cli::UsageError;
use std::collections::{BTreeMap, BTreeSet};

/// The scale-selection flags the figure/table binaries share.
pub const SCALE_FLAGS: &[&str] = &["quick", "paper", "smoke"];

/// A parsed command line: which flags were set, which options carry
/// values.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    flags: BTreeSet<&'static str>,
    options: BTreeMap<&'static str, String>,
}

impl Parsed {
    /// Whether `--name` was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of `--name value` (or `--name=value`), if given.
    #[must_use]
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Resolves the shared `--quick`/`--paper`/`--smoke` scale flags
    /// (default: quick; the last one given wins is not needed — they
    /// are mutually exclusive in spirit, priority paper > smoke >
    /// quick keeps a doubled-up line deterministic).
    #[must_use]
    pub fn scale(&self) -> Scale {
        if self.flag("paper") {
            Scale::Paper
        } else if self.flag("smoke") {
            Scale::Smoke
        } else {
            Scale::Quick
        }
    }
}

/// Parses `args` against the accepted `flags` (bare `--name`) and
/// `options` (`--name value` or `--name=value`).
///
/// # Errors
///
/// [`UsageError::Unknown`] for an argument in neither list,
/// [`UsageError::MissingValue`] for a value option given last with no
/// value.
pub fn parse<I>(
    args: I,
    flags: &[&'static str],
    options: &[&'static str],
) -> Result<Parsed, UsageError>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = Parsed::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(UsageError::Unknown(arg));
        };
        if let Some((name, value)) = name.split_once('=') {
            let Some(&opt) = options.iter().find(|&&o| o == name) else {
                return Err(UsageError::Unknown(arg.clone()));
            };
            parsed.options.insert(opt, value.to_owned());
        } else if let Some(&flag) = flags.iter().find(|&&f| f == name) {
            parsed.flags.insert(flag);
        } else if let Some(&opt) = options.iter().find(|&&o| o == name) {
            let value = it.next().ok_or(UsageError::MissingValue(opt))?;
            parsed.options.insert(opt, value);
        } else {
            return Err(UsageError::Unknown(arg));
        }
    }
    Ok(parsed)
}

/// Parses the process arguments, printing the error and the accepted
/// argument list to stderr and exiting with status 2 on rejection.
#[must_use]
pub fn parse_or_exit(flags: &[&'static str], options: &[&'static str]) -> Parsed {
    parse(std::env::args().skip(1), flags, options).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        let mut accepted: Vec<String> = flags.iter().map(|f| format!("--{f}")).collect();
        accepted.extend(options.iter().map(|o| format!("--{o} <value>")));
        eprintln!("accepted: {}", accepted.join(" "));
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn flags_and_options_parse() {
        let p = parse(
            sv(&["--quick", "--out", "x.json", "--scenario=s.toml"]),
            &["quick"],
            &["out", "scenario"],
        )
        .unwrap();
        assert!(p.flag("quick"));
        assert_eq!(p.option("out"), Some("x.json"));
        assert_eq!(p.option("scenario"), Some("s.toml"));
        assert_eq!(p.scale(), Scale::Quick);
    }

    #[test]
    fn unknown_arguments_are_typed_rejections_not_warnings() {
        // Regression: Scale::from_args used to *warn* and continue on
        // junk, so `fig1 --smok` silently ran at the wrong scale.
        let err = parse(sv(&["--smok"]), SCALE_FLAGS, &[]).unwrap_err();
        assert_eq!(err, UsageError::Unknown("--smok".to_owned()));
        let err = parse(sv(&["paper"]), SCALE_FLAGS, &[]).unwrap_err();
        assert_eq!(err, UsageError::Unknown("paper".to_owned()));
    }

    #[test]
    fn trailing_value_option_is_a_missing_value() {
        let err = parse(sv(&["--out"]), &[], &["out"]).unwrap_err();
        assert_eq!(err, UsageError::MissingValue("out"));
        assert_eq!(err.to_string(), "--out requires a value");
    }

    #[test]
    fn scale_flags_resolve() {
        assert_eq!(
            parse(sv(&["--paper"]), SCALE_FLAGS, &[]).unwrap().scale(),
            Scale::Paper
        );
        assert_eq!(
            parse(sv(&["--smoke"]), SCALE_FLAGS, &[]).unwrap().scale(),
            Scale::Smoke
        );
        assert_eq!(
            parse(sv(&[]), SCALE_FLAGS, &[]).unwrap().scale(),
            Scale::Quick
        );
    }
}
