//! The §5 false-positive measurement protocol.
//!
//! "We generated `20·N` distinct click identifiers. We counted the false
//! positives within the last `10·N` clicks to make sure that [the
//! detector] has been stable."

use cfd_analysis::stats::{wilson_95, Proportion};
use cfd_stream::UniqueIdStream;
use cfd_windows::DuplicateDetector;

/// Result of one false-positive run.
#[derive(Debug, Clone, Copy)]
pub struct FpMeasurement {
    /// False positives observed in the measurement phase.
    pub false_positives: u64,
    /// Clicks in the measurement phase.
    pub trials: u64,
    /// Point estimate + Wilson 95% interval.
    pub rate: Proportion,
}

/// Runs the paper's protocol on `detector` over a window of `n`: feed
/// `10·N` distinct ids to warm up, then count `Duplicate` verdicts over
/// the next `10·N` distinct ids (every one is a false positive).
pub fn measure_fp<D: DuplicateDetector + ?Sized>(
    detector: &mut D,
    n: usize,
    seed: u64,
) -> FpMeasurement {
    let warm = 10 * n as u64;
    let trials = 10 * n as u64;
    let mut ids = UniqueIdStream::new(seed);
    for _ in 0..warm {
        let id = ids.next().expect("infinite stream");
        detector.observe(&id.to_le_bytes());
    }
    let mut false_positives = 0u64;
    for _ in 0..trials {
        let id = ids.next().expect("infinite stream");
        if detector.observe(&id.to_le_bytes()).is_duplicate() {
            false_positives += 1;
        }
    }
    FpMeasurement {
        false_positives,
        trials,
        rate: wilson_95(false_positives, trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactSlidingDedup;

    #[test]
    fn exact_oracle_measures_zero() {
        let mut d = ExactSlidingDedup::new(512);
        let m = measure_fp(&mut d, 512, 1);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.trials, 5_120);
        assert_eq!(m.rate.estimate, 0.0);
    }
}
