//! The §3.1 strawman: separate per-sub-window Bloom filters.
//!
//! "We then have to check each of the `Q` active Bloom filters ... such a
//! duplicate-checking procedure may cost about `Q × k` memory operations,
//! which is very time consuming if `Q` is large."
//!
//! This detector exists as the ablation baseline for GBF's interleaved
//! layout: identical window semantics and identical hash indices, but
//! `Q` independent bit-vectors probed one after another. The
//! `benches/ablations.rs` suite measures the layout speedup directly.

use cfd_bits::BitVec;
use cfd_hash::{DoubleHashFamily, HashFamily};
use cfd_windows::{DuplicateDetector, JumpingClock, Verdict, WindowSpec};

/// Jumping-window duplicate detection with `Q + 1` *separate* Bloom
/// filters (the naive layout GBF improves upon).
#[derive(Debug, Clone)]
pub struct NaiveJumpingBloom {
    n: usize,
    q: usize,
    m: usize,
    k: usize,
    filters: Vec<BitVec>,
    active: Vec<bool>,
    clock: JumpingClock,
    family: DoubleHashFamily,
    spare: Option<usize>,
    clean_next: usize,
    clean_quota: usize,
    probe_buf: Vec<usize>,
}

impl NaiveJumpingBloom {
    /// Creates the detector (same parameter meaning as `cfd_core::Gbf`).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, `q > n`, or `k` outside `1..=64`.
    #[must_use]
    pub fn new(n: usize, q: usize, m: usize, k: usize, seed: u64) -> Self {
        assert!(n > 0 && q > 0 && q <= n && m > 0, "bad window/filter size");
        assert!((1..=64).contains(&k), "k out of range");
        let sub_len = n.div_ceil(q);
        let mut active = vec![false; q + 1];
        active[0] = true;
        Self {
            n,
            q,
            m,
            k,
            filters: vec![BitVec::new(m); q + 1],
            active,
            clock: JumpingClock::new(q, sub_len),
            family: DoubleHashFamily::new(seed),
            spare: None,
            clean_next: 0,
            clean_quota: m.div_ceil(sub_len),
            probe_buf: vec![0; k],
        }
    }

    fn clean_step(&mut self) {
        if let Some(spare) = self.spare {
            let end = (self.clean_next + self.clean_quota).min(self.m);
            let word_start = self.clean_next / 64;
            let word_end = end.div_ceil(64).min(self.filters[spare].word_len());
            self.filters[spare].clear_word_range(word_start, word_end);
            self.clean_next = end;
            if self.clean_next >= self.m {
                self.spare = None;
                self.clean_next = 0;
            }
        }
    }

    fn clean_finish(&mut self) {
        if let Some(spare) = self.spare {
            self.filters[spare].clear_all();
            self.spare = None;
            self.clean_next = 0;
        }
    }
}

impl DuplicateDetector for NaiveJumpingBloom {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        self.clean_step();
        self.family.fill(id, self.m, &mut self.probe_buf);
        // The naive probe: every active filter, bit by bit.
        let mut duplicate = false;
        for (slot, filter) in self.filters.iter().enumerate() {
            if !self.active[slot] {
                continue;
            }
            if self.probe_buf.iter().all(|&i| filter.get(i)) {
                duplicate = true;
                break;
            }
        }
        let verdict = if duplicate {
            Verdict::Duplicate
        } else {
            let cur = self.clock.slot();
            for &i in &self.probe_buf {
                self.filters[cur].set(i);
            }
            Verdict::Distinct
        };
        if let Some(rot) = self.clock.record_arrival() {
            self.clean_finish();
            self.active[rot.new_slot] = true;
            if let Some(expired) = rot.expired_slot {
                self.active[expired] = false;
                self.spare = Some(expired);
                self.clean_next = 0;
            }
        }
        verdict
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.n,
            q: self.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.filters.iter().map(BitVec::memory_bits).sum()
    }

    fn reset(&mut self) {
        *self = Self::new(self.n, self.q, self.m, self.k, self.family.seed());
    }

    fn name(&self) -> &'static str {
        "naive-jumping-bloom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::{Gbf, GbfConfig};

    #[test]
    fn agrees_with_gbf_verdict_for_verdict() {
        // Same hash family, same sizes -> identical bit patterns, so the
        // two layouts must agree on EVERY verdict, false positives
        // included.
        let (n, q, m, k, seed) = (1_024usize, 8usize, 4_096usize, 5usize, 3u64);
        let mut naive = NaiveJumpingBloom::new(n, q, m, k, seed);
        let mut gbf = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(k)
                .seed(seed)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        for i in 0..100_000u64 {
            let key = (i % 1_500).to_le_bytes();
            assert_eq!(
                naive.observe(&key),
                gbf.observe(&key),
                "layouts diverged at element {i}"
            );
        }
    }

    #[test]
    fn detects_and_expires_like_a_jumping_window() {
        let mut d = NaiveJumpingBloom::new(16, 4, 1 << 12, 5, 1);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
        for i in 0..16u32 {
            d.observe(&(i + 100).to_le_bytes());
        }
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
    }
}
