//! Table TS — throughput scaling of the sharded, batch-oriented
//! detection layer.
//!
//! Four progressively layered measurements over the same
//! duplicate-injected click stream:
//!
//! 1. **sequential** — the pre-refactor path: one TBF, one
//!    `observe` call per click.
//! 2. **batched, S shards** — `ShardedDetector<Tbf>` with per-shard
//!    window `N/S` (same total memory), driven single-threaded through
//!    `observe_batch` (hash up front, prefetch ahead, probe
//!    back-to-back). On one core the S > 1 rows carry the routing and
//!    scatter overhead with no parallelism to pay for it — they bound
//!    that overhead from above.
//! 3. **detector stage, S workers (projected)** — each shard's bucket
//!    sub-stream is timed *in isolation*, exactly the work one pipeline
//!    worker performs (workers share no state; routing runs on the
//!    ingest thread, overlapped). `count / max_shard_time` is the
//!    detector-stage wall time on S dedicated cores, so this row is the
//!    pipeline's scaling law measured without needing S physical cores.
//! 4. **pipeline, S shards** — the full `run_sharded_pipeline`
//!    end-to-end (ingest routing, one worker thread per shard,
//!    resequencer, billing), against a faithful reconstruction of the
//!    seed's pre-refactor pipeline (per-click channel messages, a mutex
//!    lock per click). True thread scaling is bounded by the host's
//!    core count, which the table prints for honest interpretation; the
//!    monotone-scaling check uses these rows when the host has at least
//!    as many cores as shards, and the projected rows otherwise.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin table_shard [--paper|--smoke]
//! ```

use cfd_adnet::{
    run_sharded_pipeline, run_sharded_pipeline_instrumented, Advertiser, AdvertiserId,
    BillingEngine, Campaign, ClickOutcome, FraudScorer, PipelineConfig, PipelineTelemetry,
    Registry,
};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{Tbf, TbfConfig};
use cfd_stream::{AdId, Click, DuplicateInjector, UniqueClickStream};
use cfd_windows::{DuplicateDetector, Verdict};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH: usize = 1024;
const ROUNDS: usize = 5;
const CELLS_PER_ELEMENT: usize = 8;
const HASHES: usize = 6;
const ADS: u32 = 64;

fn sharded_tbf(n: usize, shards: usize) -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(9, shards, |_| {
        let n_s = per_shard_window(n, shards);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * CELLS_PER_ELEMENT)
                .hash_count(HASHES)
                .seed(1)
                .build()
                .expect("cfg"),
        )
    })
    .expect("sharded detector")
}

/// One single-threaded contestant in the interleaved measurement.
struct Competitor {
    name: &'static str,
    shards: String,
    detector: Box<dyn DuplicateDetector>,
    batched: bool,
}

fn row(name: &str, shards: &str, melems: f64, memory_bits: usize) {
    println!(
        "{:<24} {:>7} {:>12.3} {:>12.1}",
        name,
        shards,
        melems,
        memory_bits as f64 / 8.0 / 1024.0
    );
}

/// Faithful reconstruction of the seed's pipeline detector stage
/// (pre-refactor): one click per bounded-channel message, per-click
/// `observe`, and a `Mutex`-guarded progress counter taken on every
/// click in both stages. This is the baseline the batched, sharded
/// pipeline is judged against.
fn prerefactor_pipeline_melems(
    mut detector: Tbf,
    registry: Registry,
    clicks: &[Click],
    queue: usize,
) -> f64 {
    let progress = Arc::new(Mutex::new((0u64, 0u64)));
    let start = Instant::now();
    std::thread::scope(|s| {
        let (tx_raw, rx_raw) = channel::bounded::<Click>(queue);
        let (tx_judged, rx_judged) = channel::bounded::<(Click, Verdict)>(queue);

        let progress_det = Arc::clone(&progress);
        s.spawn(move || {
            let mut scorer = FraudScorer::new();
            for click in rx_raw {
                let verdict = detector.observe(&click.key());
                scorer.record(&click, verdict);
                progress_det.lock().0 += 1;
                if tx_judged.send((click, verdict)).is_err() {
                    break;
                }
            }
        });

        let progress_bill = Arc::clone(&progress);
        s.spawn(move || {
            let mut registry = registry;
            let mut engine = BillingEngine::new(());
            let mut savings = 0u64;
            for (click, verdict) in rx_judged {
                let outcome = engine.process_judged(&click, verdict, &mut registry);
                if outcome == ClickOutcome::DuplicateBlocked {
                    if let Some(c) = registry.campaign(click.id.ad) {
                        savings += c.cpc_micros;
                    }
                }
                progress_bill.lock().1 += 1;
            }
            std::hint::black_box(savings);
        });

        for &click in clicks {
            if tx_raw.send(click).is_err() {
                break;
            }
        }
        drop(tx_raw);
    });
    let billed = progress.lock().1;
    assert_eq!(billed, clicks.len() as u64);
    clicks.len() as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..ADS {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100,
        })
        .expect("advertiser registered");
    }
    r
}

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    // 4x the figure window: the batched path's up-front hashing +
    // prefetch pays off in proportion to how badly the probe reads miss
    // cache, so the filter must comfortably exceed L1/L2.
    let n = scale.n() * 4;
    let count = 2 * n;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let clicks: Vec<Click> =
        DuplicateInjector::new(UniqueClickStream::new(7, 16, ADS), 0.25, n / 2, 8)
            .take(count)
            .collect();
    let keys: Vec<[u8; 16]> = clicks.iter().map(Click::key).collect();

    println!(
        "# Table TS — sharded detection throughput, {} (N = {n}, {count} clicks, {cores} core(s))",
        scale.label()
    );
    println!(
        "{:<24} {:>7} {:>12} {:>12}",
        "path", "shards", "Melem/s", "mem (KiB)"
    );

    // 1 + 2. Pre-refactor sequential path vs single-thread batched
    // sharded paths, measured in interleaved rounds (every contestant
    // samples every noise phase of the host; best-of-ROUNDS each).
    let mut competitors = vec![Competitor {
        name: "sequential per-click",
        shards: "-".to_owned(),
        detector: Box::new(sharded_tbf(n, 1).into_shards().pop().expect("one shard")),
        batched: false,
    }];
    for shards in SHARD_COUNTS {
        competitors.push(Competitor {
            name: "batched one-thread",
            shards: shards.to_string(),
            detector: Box::new(sharded_tbf(n, shards)),
            batched: true,
        });
    }
    let mut best = vec![0.0f64; competitors.len()];
    let mut refs: Vec<&[u8]> = Vec::with_capacity(BATCH);
    for _ in 0..ROUNDS {
        for (c, best) in competitors.iter_mut().zip(&mut best) {
            c.detector.reset();
            let start = Instant::now();
            if c.batched {
                for chunk in keys.chunks(BATCH) {
                    refs.clear();
                    refs.extend(chunk.iter().map(<[u8; 16]>::as_slice));
                    c.detector.observe_batch(&refs);
                }
            } else {
                for key in &keys {
                    c.detector.observe(key);
                }
            }
            *best = best.max(count as f64 / start.elapsed().as_secs_f64() / 1e6);
        }
    }
    for (c, melems) in competitors.iter().zip(&best) {
        row(c.name, &c.shards, *melems, c.detector.memory_bits());
        if !c.batched {
            println!();
        }
    }
    let sequential = best[0];
    let batched = best[1..].to_vec();
    println!();

    // 3. Projected S-worker detector stage: each shard's bucket stream
    // timed alone (= one pipeline worker's exact workload); completion
    // on S dedicated cores is governed by the slowest shard.
    let mut projected = Vec::new();
    for shards in SHARD_COUNTS {
        let d = sharded_tbf(n, shards);
        let router = d.router();
        let memory_bits = d.memory_bits();
        let mut shard_keys: Vec<Vec<[u8; 16]>> = vec![Vec::new(); shards];
        for key in &keys {
            shard_keys[router.route(key)].push(*key);
        }
        let mut slowest = 0.0f64;
        let mut refs: Vec<&[u8]> = Vec::with_capacity(BATCH);
        for (worker, bucket) in d.into_shards().iter_mut().zip(&shard_keys) {
            let mut best = f64::INFINITY;
            for _ in 0..ROUNDS {
                worker.reset();
                let start = Instant::now();
                for chunk in bucket.chunks(BATCH) {
                    refs.clear();
                    refs.extend(chunk.iter().map(<[u8; 16]>::as_slice));
                    worker.observe_batch(&refs);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            slowest = slowest.max(best);
        }
        let melems = count as f64 / slowest / 1e6;
        row(
            "detector stage projected",
            &shards.to_string(),
            melems,
            memory_bits,
        );
        projected.push(melems);
    }
    println!();

    // 4. Full pipeline, pre- vs post-refactor. The baseline is the
    // seed's stage layout: per-click channel messages and a mutex lock
    // per click. Thread scaling is bounded by the host's core count.
    let mut prerefactor = 0.0f64;
    for _ in 0..2 {
        let d = sharded_tbf(n, 1).into_shards().pop().expect("one shard");
        prerefactor = prerefactor.max(prerefactor_pipeline_melems(d, registry(), &clicks, 256));
    }
    row(
        "pipeline pre-refactor",
        "-",
        prerefactor,
        sharded_tbf(n, 1).memory_bits(),
    );
    let mut end_to_end = Vec::new();
    for shards in SHARD_COUNTS {
        let d = sharded_tbf(n, shards);
        let memory_bits = d.memory_bits();
        let start = Instant::now();
        let outcome = run_sharded_pipeline(
            d,
            registry(),
            clicks.iter().copied(),
            PipelineConfig {
                batch: BATCH,
                queue: 16,
                ..PipelineConfig::default()
            },
            None,
        );
        let melems = count as f64 / start.elapsed().as_secs_f64() / 1e6;
        assert_eq!(outcome.report.clicks, count as u64);
        row(
            "pipeline end-to-end",
            &shards.to_string(),
            melems,
            memory_bits,
        );
        end_to_end.push(melems);
    }

    println!();

    // 5. Telemetry overhead: the instrumented pipeline (per-stage
    // latency histograms, queue gauges, health flags) against the plain
    // one at the widest shard count. The hot path adds two Instant
    // reads plus three relaxed histogram RMWs per *batch*, so the two
    // must land within measurement noise. Two measurement hazards:
    //
    //  - Multi-threaded runs on a shared host are noisy (the
    //    round-to-round spread routinely exceeds the effect being
    //    measured), so the check uses the MEDIAN of per-round paired
    //    ratios, with the order alternated each round to cancel
    //    scheduler/cache drift.
    //  - The instrumented run takes one O(m) health sample per shard
    //    at shutdown — a fixed cost that amortizes on production-length
    //    streams but dominates a 2^17-click smoke run. The check
    //    therefore streams at least 2^20 clicks regardless of scale,
    //    mirroring the `cfd run --metrics` acceptance workload.
    let shards = *SHARD_COUNTS.last().expect("non-empty");
    let pipeline_cfg = PipelineConfig {
        batch: BATCH,
        queue: 16,
        ..PipelineConfig::default()
    };
    let check_count = count.max(1 << 20);
    let check_clicks: Vec<Click> = if check_count == count {
        clicks.clone()
    } else {
        DuplicateInjector::new(UniqueClickStream::new(7, 16, ADS), 0.25, n / 2, 8)
            .take(check_count)
            .collect()
    };
    let run_plain = || {
        let start = Instant::now();
        let outcome = run_sharded_pipeline(
            sharded_tbf(n, shards),
            registry(),
            check_clicks.iter().copied(),
            pipeline_cfg,
            None,
        );
        assert_eq!(outcome.report.clicks, check_count as u64);
        check_count as f64 / start.elapsed().as_secs_f64() / 1e6
    };
    let run_instrumented = || {
        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, shards));
        let start = Instant::now();
        let outcome = run_sharded_pipeline_instrumented(
            sharded_tbf(n, shards),
            registry(),
            check_clicks.iter().copied(),
            pipeline_cfg,
            None,
            telemetry,
        );
        let melems = check_count as f64 / start.elapsed().as_secs_f64() / 1e6;
        assert_eq!(outcome.report.clicks, check_count as u64);
        (melems, metrics.snapshot(), outcome.health)
    };
    let mut ratios = Vec::new();
    let mut plain_best = 0.0f64;
    let mut instr_best = 0.0f64;
    let mut last_instrumented = None;
    for round in 0..15 {
        let (plain, instr) = if round % 2 == 0 {
            let p = run_plain();
            let i = run_instrumented();
            (p, i)
        } else {
            let i = run_instrumented();
            let p = run_plain();
            (p, i)
        };
        ratios.push(instr.0 / plain);
        plain_best = plain_best.max(plain);
        instr_best = instr_best.max(instr.0);
        last_instrumented = Some((instr.1, instr.2));
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    let overhead = 100.0 * (1.0 - median);
    println!(
        "# check: instrumented pipeline best {instr_best:.3} vs plain best {plain_best:.3} \
         Melem/s; median paired ratio {median:.3} (overhead {overhead:+.1}%, {}; \
         round spread {:.3}..{:.3})",
        if median >= 0.95 {
            "within 5%: PASS"
        } else {
            "FAIL"
        },
        ratios.first().expect("rounds ran"),
        ratios.last().expect("rounds ran"),
    );
    let (snapshot, health) = last_instrumented.expect("rounds ran");
    println!("# telemetry summary (s={shards}, last instrumented run):");
    for stage in ["hash", "probe", "resequence", "billing"] {
        let h = snapshot
            .get_histogram(&format!("pipeline.stage.{stage}_ns"))
            .expect("stage histogram registered");
        println!(
            "#   stage {stage:<10} batches={} p50={}ns p99={}ns max={}ns",
            h.count,
            h.p50(),
            h.p99(),
            h.max
        );
    }
    println!(
        "#   resequencer stalls={} pending-peak={} clicks",
        snapshot
            .get_counter("pipeline.reseq.stalls")
            .expect("registered"),
        match snapshot
            .entries
            .iter()
            .find(|e| e.name == "pipeline.reseq.pending_peak")
            .map(|e| &e.value)
        {
            Some(cfd_telemetry::MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    );
    for (i, h) in health.iter().enumerate() {
        println!(
            "#   shard {i} fill={:.4} online-fp={:.3e} dup-rate={:.4}",
            h.mean_fill(),
            h.estimated_fp,
            h.duplicate_rate()
        );
    }

    println!();
    println!(
        "# note: single-thread batched/sequential ratio {:.3} (s=1 {:.3} vs {:.3} Melem/s): \
         batching is a wash without parallelism or memory-latency headroom.",
        batched[0] / sequential,
        batched[0],
        sequential
    );
    println!(
        "# check: batched pipeline s=1 {:.3} vs pre-refactor per-click pipeline {:.3} Melem/s ({})",
        end_to_end[0],
        prerefactor,
        if end_to_end[0] >= prerefactor {
            "refactor >= pre-refactor: PASS"
        } else {
            "FAIL"
        }
    );
    // A single shared-cache core cannot express detector-stage
    // parallelism, so judge scaling on measured end-to-end rows only
    // when every worker can have its own core.
    let (scaling, basis) = if cores >= *SHARD_COUNTS.last().expect("non-empty") {
        (&end_to_end, "pipeline end-to-end (measured)")
    } else {
        (&projected, "detector stage (projected S workers)")
    };
    let monotone = scaling.windows(2).all(|w| w[1] >= w[0]);
    println!(
        "# check: {basis} 1 -> 2 -> 4 shards {} Melem/s ({})",
        scaling
            .iter()
            .map(|m| format!("{m:.3}"))
            .collect::<Vec<_>>()
            .join(" -> "),
        if monotone {
            "monotone non-decreasing: PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "# pipeline rows measure thread scaling and are bounded by the {cores} available core(s)."
    );
}
