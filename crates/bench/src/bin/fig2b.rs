//! Figure 2(b): false-positive rate of TBF over sliding windows,
//! theoretical vs. experimental, as a function of the hash count `k`.
//!
//! Paper protocol (§5): `N = 2^20`, `m = 15,112,980` entries, `20·N`
//! distinct identifiers, false positives counted over the last `10·N`.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin fig2b [--paper|--smoke]
//! ```

use cfd_bench::measure_fp;
use cfd_core::{Tbf, TbfConfig};
use cfd_windows::DetectorStats;

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let n = scale.n();
    let m = scale.scaled(15_112_980);

    println!(
        "# Figure 2(b) — TBF over sliding windows, {}",
        scale.label()
    );
    println!("# N = {n}, m = {m} entries, C = N-1");
    println!(
        "{:>3} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "k", "theory", "measured", "online-est", "ci-lo", "ci-hi", "fp-count"
    );

    for k in 1..=14usize {
        let cfg = TbfConfig::builder(n)
            .entries(m)
            .hash_count(k)
            .seed(0x7BF + k as u64)
            .build()
            .expect("valid configuration");
        let mut tbf = Tbf::new(cfg).expect("valid detector");
        let measured = measure_fp(&mut tbf, n, 0xB2 + k as u64);
        let theory = cfd_analysis::tbf::fp_sliding(m, k, n);
        println!(
            "{:>3} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>10}",
            k,
            theory,
            measured.rate.estimate,
            tbf.estimated_fp(),
            measured.rate.lo,
            measured.rate.hi,
            measured.false_positives
        );
    }
    println!("# shape check: minimum near k = ln2 * m/N ~ 10; experiment tracks");
    println!("# theory closely (paper Fig. 2b).");
    println!("# online-est is the telemetry estimator (DetectorStats::estimated_fp):");
    println!("# (active_entries/m)^k from live occupancy at end of stream; it should");
    println!("# track the theory column without knowing N (docs/OBSERVABILITY.md).");
}
