//! PR 3 throughput benchmark: scattered vs. cache-line-blocked probing.
//!
//! Measures single-thread and sharded (hash-once) clicks/sec for the
//! GBF and TBF detectors in both probe layouts on a distinct-id stream,
//! and cross-checks the blocked layout's measured false-positive rate
//! against the closed-form model in `cfd_analysis::blocked`. Every
//! `Duplicate` verdict on a distinct stream is a false positive, so the
//! timing stream doubles as the FP experiment.
//!
//! Protocol (reproducible by construction):
//!
//! * fixed seeds, fixed id stream (`0..clicks` little-endian — the hash
//!   family scrambles them, so the probe pattern is uniform);
//! * one warm-up round per configuration, discarded;
//! * ≥ 10 measured rounds at full scale, configuration order reversed
//!   on alternate rounds so frequency drift and cache warming cancel;
//! * the median round is the reported number;
//! * the occupancy-scan counters must stay at zero across every timed
//!   loop (the `health()` O(m) scan must never ride the hot path).
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput [--quick] [--out PATH]
//! ```
//!
//! Default scale streams 2^22 clicks per round and writes
//! `BENCH_pr3.json` (machine-readable) in the working directory plus a
//! human-readable table under `results/`. `--quick` is the CI smoke:
//! 2^18 clicks, 3 measured rounds — use `--out` to keep it from
//! overwriting the committed full-scale file.

use cfd_analysis::blocked::{fp_blocked_gbf, fp_blocked_tbf};
use cfd_core::config::ProbeLayout;
use cfd_core::{Gbf, GbfConfig, ShardedDetector, Tbf, TbfConfig};
use cfd_windows::{DetectorStats, DuplicateDetector, Verdict};
use std::fmt::Write as _;
use std::time::Instant;

/// (clicks/sec, duplicate verdicts, occupancy scans) of one timed run.
type RunResult = (f64, u64, u64);

/// A fresh-detector-per-round measurement closure.
type RunFn = Box<dyn FnMut(&[&[u8]]) -> RunResult>;

/// Batch size for `observe_batch` — large enough to amortize the flat
/// probe-buffer fill, small enough to stay cache-resident.
const BATCH: usize = 1024;

/// Shards for the sharded rows (hash-once routing exercised even on a
/// single core).
const SHARDS: usize = 4;

const K: usize = 10;

struct ScaleCfg {
    label: &'static str,
    clicks: usize,
    rounds: usize,
    tbf_n: usize,
    gbf_n: usize,
}

/// One benchmark configuration: builds a fresh detector per round and
/// streams the whole click set through it.
struct Bench {
    name: &'static str,
    family: &'static str,
    layout: ProbeLayout,
    sharded: bool,
    run: RunFn,
    fp_model: Option<f64>,
    rates: Vec<f64>,
    false_positives: u64,
}

fn layout_name(layout: ProbeLayout) -> &'static str {
    match layout {
        ProbeLayout::Scattered => "scattered",
        ProbeLayout::Blocked => "blocked",
    }
}

/// Streams `ids` through `d` in [`BATCH`]-sized chunks, returning
/// (clicks/sec, duplicate verdicts, occupancy scans).
fn drive<D: DuplicateDetector + DetectorStats>(d: &mut D, ids: &[&[u8]]) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    for chunk in ids.chunks(BATCH) {
        dups += d
            .observe_batch(chunk)
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (ids.len() as f64 / secs, dups, d.occupancy_scans())
}

/// Sharded variant of [`drive`] using the hash-once batch path.
fn drive_sharded(d: &mut ShardedDetector<Tbf>, ids: &[&[u8]]) -> RunResult {
    assert!(d.hash_once_aligned(), "shards must share the router family");
    let start = Instant::now();
    let mut dups = 0u64;
    for chunk in ids.chunks(BATCH) {
        dups += d
            .observe_batch_hash_once(chunk)
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (ids.len() as f64 / secs, dups, d.occupancy_scans())
}

fn tbf_config(n: usize, layout: ProbeLayout, seed: u64) -> TbfConfig {
    TbfConfig::builder(n)
        .entries(n * 16)
        .hash_count(K)
        .seed(seed)
        .probe(layout)
        .build()
        .expect("valid tbf config")
}

fn gbf_config(n: usize, layout: ProbeLayout) -> GbfConfig {
    GbfConfig::builder(n, 8)
        .filter_bits((n / 8) * 28)
        .hash_count(K)
        .seed(7)
        .layout(cfd_core::config::GbfLayout::Tight)
        .probe(layout)
        .build()
        .expect("valid gbf config")
}

fn sharded_tbf(n: usize, layout: ProbeLayout) -> ShardedDetector<Tbf> {
    let router = cfd_core::ShardRouter::new(7, SHARDS).expect("router");
    let per = cfd_core::sharded::per_shard_window(n, SHARDS);
    let shards = (0..SHARDS)
        .map(|_| Tbf::new(tbf_config(per, layout, router.probe_seed())).expect("shard"))
        .collect();
    ShardedDetector::new(7, shards).expect("sharded")
}

fn benches(scale: &ScaleCfg) -> Vec<Bench> {
    let mut out = Vec::new();
    for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
        let tbf_n = scale.tbf_n;
        let cfg = tbf_config(tbf_n, layout, 7);
        let fp_model = cfg
            .block_geometry()
            .map(|geo| fp_blocked_tbf(cfg.m, geo.slots(), K, tbf_n));
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "tbf-blocked"
            } else {
                "tbf-scattered"
            },
            family: "tbf",
            layout,
            sharded: false,
            run: Box::new(move |ids| {
                let mut d = Tbf::new(cfg).expect("tbf");
                drive(&mut d, ids)
            }),
            fp_model,
            rates: Vec::new(),
            false_positives: 0,
        });

        let gbf_n = scale.gbf_n;
        let gcfg = gbf_config(gbf_n, layout);
        let g_model = gcfg
            .block_geometry()
            .map(|geo| fp_blocked_gbf(gcfg.m, geo.slots(), K, gbf_n, gcfg.q));
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "gbf-blocked"
            } else {
                "gbf-scattered"
            },
            family: "gbf",
            layout,
            sharded: false,
            run: Box::new(move |ids| {
                let mut d = Gbf::new(gcfg).expect("gbf");
                drive(&mut d, ids)
            }),
            fp_model: g_model,
            rates: Vec::new(),
            false_positives: 0,
        });

        let s_model = Tbf::new(tbf_config(
            cfd_core::sharded::per_shard_window(tbf_n, SHARDS),
            layout,
            7,
        ))
        .expect("shard model probe")
        .config()
        .block_geometry()
        .map(|geo| {
            let per = cfd_core::sharded::per_shard_window(tbf_n, SHARDS);
            fp_blocked_tbf(per * 16, geo.slots(), K, per)
        });
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "sharded-tbf-blocked"
            } else {
                "sharded-tbf-scattered"
            },
            family: "sharded-tbf",
            layout,
            sharded: true,
            run: Box::new(move |ids| {
                let mut d = sharded_tbf(tbf_n, layout);
                drive_sharded(&mut d, ids)
            }),
            fp_model: s_model,
            rates: Vec::new(),
            false_positives: 0,
        });
    }
    out
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_pr3.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unrecognized argument `{other}` (accepted: --quick --full --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick {
        ScaleCfg {
            label: "quick",
            clicks: 1 << 18,
            rounds: 3,
            tbf_n: 1 << 16,
            gbf_n: 1 << 17,
        }
    } else {
        ScaleCfg {
            label: "full",
            clicks: 1 << 22,
            rounds: 10,
            tbf_n: 1 << 20,
            gbf_n: 1 << 21,
        }
    };

    // Distinct id stream: generation is outside every timed region.
    let raw: Vec<[u8; 8]> = (0..scale.clicks as u64).map(u64::to_le_bytes).collect();
    let ids: Vec<&[u8]> = raw.iter().map(<[u8; 8]>::as_slice).collect();

    let mut benches = benches(&scale);
    println!(
        "# throughput — {} scale: {} clicks/round, {} measured rounds (+1 warm-up), batch {BATCH}",
        scale.label, scale.clicks, scale.rounds
    );

    let mut scan_violations = 0u32;
    for round in 0..=scale.rounds {
        // Alternate configuration order so slow drift (thermal, noisy
        // neighbours) hits scattered and blocked symmetrically.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            let (rate, dups, scans) = (b.run)(&ids);
            if scans != 0 {
                scan_violations += 1;
                eprintln!(
                    "FAIL: {} performed {scans} occupancy scans in the hot loop",
                    b.name
                );
            }
            if round == 0 {
                // Warm-up round: keep the (deterministic) FP count,
                // discard the timing.
                b.false_positives = dups;
            } else {
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }

    // ---- Human table ---------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput — scattered vs blocked probing ({} scale, {} clicks, median of {} rounds)",
        scale.label, scale.clicks, scale.rounds
    );
    let _ = writeln!(
        table,
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "config", "Mclicks/s", "fp-measured", "fp-model", "model-ratio"
    );
    for b in &benches {
        let fp = b.false_positives as f64 / scale.clicks as f64;
        let (model, ratio) = match b.fp_model {
            Some(m) => (
                format!("{m:.3e}"),
                format!("{:.2}", fp / m.max(f64::MIN_POSITIVE)),
            ),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let _ = writeln!(
            table,
            "{:<24} {:>12.2} {:>12.3e} {:>12} {:>12}",
            b.name,
            median(&b.rates) / 1e6,
            fp,
            model,
            ratio
        );
    }
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for family in ["tbf", "gbf", "sharded-tbf"] {
        let rate = |layout: ProbeLayout| {
            benches
                .iter()
                .find(|b| b.family == family && b.layout == layout)
                .map(|b| median(&b.rates))
                .expect("both layouts present")
        };
        speedups.push((
            family,
            rate(ProbeLayout::Blocked) / rate(ProbeLayout::Scattered),
        ));
    }
    for (family, s) in &speedups {
        let _ = writeln!(table, "# {family}: blocked/scattered speedup = {s:.2}x");
    }
    print!("{table}");

    // ---- PASS/FAIL gates ----------------------------------------------
    // Speedup gate: the memory-bound single-thread families must clear
    // 1.3x at full scale (quick CI runs only smoke the machinery).
    let speedup_ok = speedups
        .iter()
        .filter(|(f, _)| *f == "tbf" || *f == "gbf")
        .all(|(_, s)| *s >= 1.3);
    // FP gate: measured blocked FP within 10% of the closed-form model,
    // plus three-sigma sampling slack for the finite stream.
    let mut fp_ok = true;
    for b in &benches {
        if let Some(model) = b.fp_model {
            let fp = b.false_positives as f64 / scale.clicks as f64;
            let slack = 3.0 * (model * (1.0 - model) / scale.clicks as f64).sqrt();
            if fp > model * 1.1 + slack {
                fp_ok = false;
                eprintln!(
                    "FAIL: {} measured FP {fp:.3e} exceeds model {model:.3e} by >10%",
                    b.name
                );
            }
        }
    }
    let scans_ok = scan_violations == 0;
    println!(
        "# gates: speedup>=1.3x {} | fp-within-model {} | no-hot-scans {}",
        if speedup_ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        },
        if fp_ok { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON ----------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-throughput/1\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label);
    let _ = writeln!(json, "  \"clicks\": {},", scale.clicks);
    let _ = writeln!(json, "  \"rounds\": {},", scale.rounds);
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let fp = b.false_positives as f64 / scale.clicks as f64;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(json, "      \"family\": \"{}\",", b.family);
        let _ = writeln!(json, "      \"layout\": \"{}\",", layout_name(b.layout));
        let _ = writeln!(json, "      \"sharded\": {},", b.sharded);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rounds: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rounds.join(", ")
        );
        let _ = writeln!(json, "      \"fp_measured\": {},", json_f64(fp));
        let _ = writeln!(
            json,
            "      \"fp_model\": {}",
            b.fp_model.map_or("null".to_owned(), json_f64)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (family, s)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{family}\": {}{}",
            json_f64(*s),
            if i + 1 < speedups.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"speedup_ok\": {speedup_ok},");
    let _ = writeln!(json, "    \"fp_within_model\": {fp_ok},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_{}.txt", scale.label);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    if !fp_ok || !scans_ok || (!quick && !speedup_ok) {
        std::process::exit(1);
    }
}
