//! PR 3 throughput benchmark: scattered vs. cache-line-blocked probing.
//!
//! Measures single-thread and sharded (hash-once) clicks/sec for the
//! GBF and TBF detectors in both probe layouts on a distinct-id stream,
//! and cross-checks the blocked layout's measured false-positive rate
//! against the closed-form model in `cfd_analysis::blocked`. Every
//! `Duplicate` verdict on a distinct stream is a false positive, so the
//! timing stream doubles as the FP experiment.
//!
//! Protocol (reproducible by construction):
//!
//! * fixed seeds, fixed id stream (`0..clicks` little-endian — the hash
//!   family scrambles them, so the probe pattern is uniform);
//! * one warm-up round per configuration, discarded;
//! * ≥ 10 measured rounds at full scale, configuration order reversed
//!   on alternate rounds so frequency drift and cache warming cancel;
//! * the median round is the reported number;
//! * the occupancy-scan counters must stay at zero across every timed
//!   loop (the `health()` O(m) scan must never ride the hot path).
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput [--quick] [--out PATH]
//! ```
//!
//! Default scale streams 2^22 clicks per round and writes
//! `BENCH_pr3.json` (machine-readable) in the working directory plus a
//! human-readable table under `results/`. `--quick` is the CI smoke:
//! 2^18 clicks, 3 measured rounds — use `--out` to keep it from
//! overwriting the committed full-scale file.
//!
//! ## PR 4 scenario: `--pipeline`
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput -- --pipeline [--quick] [--out PATH]
//! ```
//!
//! Benchmarks the zero-allocation ingest work under the same paired,
//! order-alternated, median-of-rounds protocol, writing
//! `BENCH_pr4.json`:
//!
//! * **hash micro**: multi-lane batch hashing
//!   ([`Planner::plan_flat_into`]) vs the per-id scalar
//!   [`Planner::plan`] loop over the same 16-byte click keys, with a
//!   checksum cross-check that the plans are identical;
//! * **pipeline end-to-end**: the full ingest → sharded detection →
//!   resequencer → billing pipeline on [`Transport::Ring`] (pooled
//!   SPSC rings, zero steady-state allocation) vs
//!   [`Transport::Channel`] (crossbeam, one allocation per batch) at
//!   equal shard count, with the two transports' reports asserted
//!   equal every round.
//!
//! ## PR 5 scenario: `--timed`
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput -- --timed [--quick] [--out PATH]
//! ```
//!
//! Benchmarks the *time-based* detectors (`TimeTbf` / `TimeGbf`) under
//! the same protocol, writing `BENCH_pr5.json`: for each family and
//! probe layout, the per-click `observe_at` loop vs the hash-once
//! flat-key batch path (`observe_flat_at_into`) on a distinct-id stream
//! whose ticks advance one per click, so every round crosses the full
//! unit-advance/incremental-cleaning machinery. The batch and
//! sequential duplicate counts are asserted equal every round, and the
//! occupancy-scan counters must stay at zero across every timed loop.
//!
//! ## PR 6 scenario: `--shootout`
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput -- --shootout [--quick] [--out PATH]
//! ```
//!
//! The backend Pareto shootout, writing `BENCH_pr6.json`: every
//! count-window backend in the [`cfd_core::registry`] (TBF, GBF, APBF,
//! SWBF) built through [`cfd_core::registry::build`] at the **same
//! memory budget** (`272·N` bits — the TBF sizing convention of 16
//! entries per element at 17-bit entries), each measured in both probe
//! layouts and both drive modes (per-click `observe` vs the hash-once
//! flat-key `observe_flat_into`)
//! on a distinct-id stream. Every `Duplicate` verdict is a false
//! positive, so one pass yields accuracy, memory, and throughput — the
//! three Pareto axes — per backend. Gates: measured FP within each
//! backend's `cfd-analysis` model bound, batch/sequential verdict
//! parity, realized memory within ±12% of the shared budget, zero
//! occupancy scans, and (full scale) APBF/SWBF batch speedup ≥ 1.3×.
//!
//! ## PR 9 scenario: `--tenants`
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput -- --tenants [--quick] [--out PATH]
//! ```
//!
//! The multi-tenant arena scenario, writing `BENCH_pr9.json`: a
//! Zipf-skewed [`TenantTraffic`] stream over a universe of up to one
//! million (advertiser, campaign) tenants is replayed through a
//! [`TenantArena`] (per-click, flat-batch, and 4-way tenant-routed
//! sharded rows) and through one big TBF at the **same total memory**
//! (the single-detector baseline the arena must stay within 0.7× of).
//! The generator injects tenant-lag-1 duplicates it counts, so every
//! round asserts verdict isolation: the arena must flag at least the
//! injected count (a miss would mean a tenant's window lost state) and
//! at most the per-tenant `cfd-analysis` FP bound beyond it (an excess
//! would mean cross-tenant contamination). Gates: amortized
//! bytes/live-tenant within 1.25× of [`arena_tenant_budget`],
//! arena-batch clicks/s ≥ 0.7× the baseline (full scale), isolation
//! every round, zero occupancy scans in the hot loops.
//!
//! ## PR 10 scenario: `--scenario <file.toml>`
//!
//! ```text
//! cargo run --release -p cfd-bench --bin throughput -- --scenario scenarios/mixed_fraud.toml [--quick] [--out PATH]
//! ```
//!
//! Compiles a declarative scenario spec (`cfd_stream::scenario`) and
//! brute-forces its `[sweep]` grid with the same driver as `cfd sweep`,
//! writing a `cfd-bench-sweep/1` report (default `BENCH_sweep.json`).

use cfd_adnet::{
    run_sharded_pipeline, Advertiser, AdvertiserId, Campaign, NetworkReport, PipelineConfig,
    Registry, Transport,
};
use cfd_analysis::blocked::{fp_blocked_gbf, fp_blocked_tbf};
use cfd_analysis::sizing::{arena_tenant_budget, TenantBudget};
use cfd_core::config::ProbeLayout;
use cfd_core::registry::{BackendGeometry, DetectorBackend, MemorySpec};
use cfd_core::{
    Apbf, ApbfConfig, ArenaConfig, Gbf, GbfConfig, ShardedDetector, Swbf, SwbfConfig, Tbf,
    TbfConfig, TenantArena, TimeGbf, TimeGbfConfig, TimeTbf, TimeTbfConfig,
};
use cfd_hash::{Planner, ProbePlan};
use cfd_stream::{
    AdId, BotnetConfig, BotnetStream, Click, TenantTraffic, TenantTrafficConfig, TENANT_KEY_LEN,
};
use cfd_windows::{DetectorStats, DuplicateDetector, TimedDuplicateDetector, Verdict};
use std::fmt::Write as _;
use std::time::Instant;

/// (clicks/sec, duplicate verdicts, occupancy scans) of one timed run.
type RunResult = (f64, u64, u64);

/// A fresh-detector-per-round measurement closure.
type RunFn = Box<dyn FnMut(&[&[u8]]) -> RunResult>;

/// Batch size for `observe_batch` — large enough to amortize the flat
/// probe-buffer fill, small enough to stay cache-resident.
const BATCH: usize = 1024;

/// Shards for the sharded rows (hash-once routing exercised even on a
/// single core).
const SHARDS: usize = 4;

const K: usize = 10;

struct ScaleCfg {
    label: &'static str,
    clicks: usize,
    rounds: usize,
    tbf_n: usize,
    gbf_n: usize,
}

/// One benchmark configuration: builds a fresh detector per round and
/// streams the whole click set through it.
struct Bench {
    name: &'static str,
    family: &'static str,
    layout: ProbeLayout,
    sharded: bool,
    run: RunFn,
    fp_model: Option<f64>,
    rates: Vec<f64>,
    false_positives: u64,
}

fn layout_name(layout: ProbeLayout) -> &'static str {
    match layout {
        ProbeLayout::Scattered => "scattered",
        ProbeLayout::Blocked => "blocked",
    }
}

/// Streams `ids` through `d` in [`BATCH`]-sized chunks, returning
/// (clicks/sec, duplicate verdicts, occupancy scans).
fn drive<D: DuplicateDetector + DetectorStats>(d: &mut D, ids: &[&[u8]]) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    for chunk in ids.chunks(BATCH) {
        dups += d
            .observe_batch(chunk)
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (ids.len() as f64 / secs, dups, d.occupancy_scans())
}

/// Sharded variant of [`drive`] using the hash-once batch path.
fn drive_sharded(d: &mut ShardedDetector<Tbf>, ids: &[&[u8]]) -> RunResult {
    assert!(d.hash_once_aligned(), "shards must share the router family");
    let start = Instant::now();
    let mut dups = 0u64;
    for chunk in ids.chunks(BATCH) {
        dups += d
            .observe_batch_hash_once(chunk)
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (ids.len() as f64 / secs, dups, d.occupancy_scans())
}

fn tbf_config(n: usize, layout: ProbeLayout, seed: u64) -> TbfConfig {
    TbfConfig::builder(n)
        .entries(n * 16)
        .hash_count(K)
        .seed(seed)
        .probe(layout)
        .build()
        .expect("valid tbf config")
}

fn gbf_config(n: usize, layout: ProbeLayout) -> GbfConfig {
    GbfConfig::builder(n, 8)
        .filter_bits((n / 8) * 28)
        .hash_count(K)
        .seed(7)
        .layout(cfd_core::config::GbfLayout::Tight)
        .probe(layout)
        .build()
        .expect("valid gbf config")
}

fn sharded_tbf(n: usize, layout: ProbeLayout) -> ShardedDetector<Tbf> {
    let router = cfd_core::ShardRouter::new(7, SHARDS).expect("router");
    let per = cfd_core::sharded::per_shard_window(n, SHARDS);
    let shards = (0..SHARDS)
        .map(|_| Tbf::new(tbf_config(per, layout, router.probe_seed())).expect("shard"))
        .collect();
    ShardedDetector::new(7, shards).expect("sharded")
}

fn benches(scale: &ScaleCfg) -> Vec<Bench> {
    let mut out = Vec::new();
    for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
        let tbf_n = scale.tbf_n;
        let cfg = tbf_config(tbf_n, layout, 7);
        let fp_model = cfg
            .block_geometry()
            .map(|geo| fp_blocked_tbf(cfg.m, geo.slots(), K, tbf_n));
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "tbf-blocked"
            } else {
                "tbf-scattered"
            },
            family: "tbf",
            layout,
            sharded: false,
            run: Box::new(move |ids| {
                let mut d = Tbf::new(cfg).expect("tbf");
                drive(&mut d, ids)
            }),
            fp_model,
            rates: Vec::new(),
            false_positives: 0,
        });

        let gbf_n = scale.gbf_n;
        let gcfg = gbf_config(gbf_n, layout);
        let g_model = gcfg
            .block_geometry()
            .map(|geo| fp_blocked_gbf(gcfg.m, geo.slots(), K, gbf_n, gcfg.q));
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "gbf-blocked"
            } else {
                "gbf-scattered"
            },
            family: "gbf",
            layout,
            sharded: false,
            run: Box::new(move |ids| {
                let mut d = Gbf::new(gcfg).expect("gbf");
                drive(&mut d, ids)
            }),
            fp_model: g_model,
            rates: Vec::new(),
            false_positives: 0,
        });

        let s_model = Tbf::new(tbf_config(
            cfd_core::sharded::per_shard_window(tbf_n, SHARDS),
            layout,
            7,
        ))
        .expect("shard model probe")
        .config()
        .block_geometry()
        .map(|geo| {
            let per = cfd_core::sharded::per_shard_window(tbf_n, SHARDS);
            fp_blocked_tbf(per * 16, geo.slots(), K, per)
        });
        out.push(Bench {
            name: if layout == ProbeLayout::Blocked {
                "sharded-tbf-blocked"
            } else {
                "sharded-tbf-scattered"
            },
            family: "sharded-tbf",
            layout,
            sharded: true,
            run: Box::new(move |ids| {
                let mut d = sharded_tbf(tbf_n, layout);
                drive_sharded(&mut d, ids)
            }),
            fp_model: s_model,
            rates: Vec::new(),
            false_positives: 0,
        });
    }
    out
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

// ---------------------------------------------------------------------
// PR 4 scenario: multi-lane hashing micro + ring-vs-channel pipeline.
// ---------------------------------------------------------------------

/// Click-key length: [`Click::key`] is 16 bytes.
const PIPE_KEY_LEN: usize = 16;

/// Inter-stage batch and per-worker queue depth for the end-to-end
/// comparison — identical for both transports. Small batches model a
/// latency-bounded ingest (flush every few hundred µs); they are also
/// where transport overhead dominates, which is exactly what this
/// scenario compares.
const PIPE_BATCH: usize = 16;
const PIPE_QUEUE: usize = 8;

/// Worker shards for the transport comparison. Two shards keep the
/// thread count (ingest + workers + billing) close to typical CI core
/// counts; transport overhead, not parallelism, is what this measures.
const PIPE_SHARDS: usize = 2;

struct PipelineScale {
    label: &'static str,
    clicks: usize,
    rounds: usize,
    window: usize,
}

fn pipeline_registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "bench", u64::MAX / 4));
    for ad in 0..64 {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100,
        })
        .expect("advertiser registered");
    }
    r
}

fn pipeline_detector(n: usize) -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(7, PIPE_SHARDS, |_| {
        let per = cfd_core::sharded::per_shard_window(n, PIPE_SHARDS);
        Tbf::new(tbf_config(per, ProbeLayout::Blocked, 4))
    })
    .expect("sharded detector")
}

/// One timed end-to-end run on the given transport; fresh detector and
/// registry per run, stream reused by reference.
fn drive_pipeline(clicks: &[Click], window: usize, transport: Transport) -> (f64, NetworkReport) {
    let detector = pipeline_detector(window);
    let start = Instant::now();
    let outcome = run_sharded_pipeline(
        detector,
        pipeline_registry(),
        clicks.iter().copied(),
        PipelineConfig {
            batch: PIPE_BATCH,
            queue: PIPE_QUEUE,
            transport,
            pin_workers: false,
        },
        None,
    );
    let secs = start.elapsed().as_secs_f64();
    (clicks.len() as f64 / secs, outcome.report)
}

/// XOR-fold of the plans' `h1` halves — forces materialization and
/// doubles as a scalar-vs-lanes identity check.
fn plan_checksum(plans: &[ProbePlan]) -> u64 {
    plans.iter().fold(0u64, |acc, p| acc ^ p.pair().h1)
}

fn run_pipeline_scenario(quick: bool, out_path: &str) {
    let scale = if quick {
        PipelineScale {
            label: "quick",
            clicks: 1 << 17,
            rounds: 3,
            window: 1 << 14,
        }
    } else {
        PipelineScale {
            label: "full",
            clicks: 1 << 21,
            rounds: 10,
            window: 1 << 17,
        }
    };
    println!(
        "# throughput --pipeline — {} scale: {} clicks/round, {} measured rounds (+1 warm-up), \
         {PIPE_SHARDS} shards, batch {PIPE_BATCH}",
        scale.label, scale.clicks, scale.rounds
    );

    // Deterministic duplicate-heavy stream, generated once outside every
    // timed region; the hash micro-bench reuses its 16-byte keys.
    let clicks: Vec<Click> = BotnetStream::new(BotnetConfig::default(), 8, 64)
        .take(scale.clicks)
        .map(|c| c.click)
        .collect();
    let mut keys: Vec<u8> = Vec::with_capacity(clicks.len() * PIPE_KEY_LEN);
    for c in &clicks {
        keys.extend_from_slice(&c.key());
    }

    // ---- Hash micro: scalar plan loop vs multi-lane flat batch ------
    let planner = Planner::new(7);
    let mut plans: Vec<ProbePlan> = Vec::with_capacity(clicks.len());
    let mut scalar_rates = Vec::new();
    let mut lanes_rates = Vec::new();
    let mut checksums_agree = true;
    for round in 0..=scale.rounds {
        let mut scalar_first = round % 2 == 0;
        let mut scalar_rate = 0.0;
        let mut lanes_rate = 0.0;
        let mut scalar_sum = 0u64;
        let mut lanes_sum = 0u64;
        for _ in 0..2 {
            if scalar_first {
                let start = Instant::now();
                plans.clear();
                for key in keys.chunks_exact(PIPE_KEY_LEN) {
                    plans.push(planner.plan(key));
                }
                scalar_rate = clicks.len() as f64 / start.elapsed().as_secs_f64();
                scalar_sum = std::hint::black_box(plan_checksum(&plans));
            } else {
                let start = Instant::now();
                planner.plan_flat_into(&keys, PIPE_KEY_LEN, &mut plans);
                lanes_rate = clicks.len() as f64 / start.elapsed().as_secs_f64();
                lanes_sum = std::hint::black_box(plan_checksum(&plans));
            }
            scalar_first = !scalar_first;
        }
        checksums_agree &= scalar_sum == lanes_sum;
        if round > 0 {
            scalar_rates.push(scalar_rate);
            lanes_rates.push(lanes_rate);
        }
    }
    let hash_speedup = median(&lanes_rates) / median(&scalar_rates);

    // ---- End-to-end: ring transport vs channel transport ------------
    let mut ring_rates = Vec::new();
    let mut channel_rates = Vec::new();
    let mut transports_agree = true;
    for round in 0..=scale.rounds {
        let mut ring_first = round % 2 == 0;
        let mut ring = (0.0, None);
        let mut chan = (0.0, None);
        for _ in 0..2 {
            let transport = if ring_first {
                Transport::Ring
            } else {
                Transport::Channel
            };
            let (rate, report) = drive_pipeline(&clicks, scale.window, transport);
            if ring_first {
                ring = (rate, Some(report));
            } else {
                chan = (rate, Some(report));
            }
            ring_first = !ring_first;
        }
        let (r, c) = (ring.1.expect("ran"), chan.1.expect("ran"));
        let agree = r.charged == c.charged
            && r.duplicates_blocked == c.duplicates_blocked
            && r.revenue_micros == c.revenue_micros
            && r.savings_micros == c.savings_micros;
        if !agree {
            eprintln!("FAIL: transports disagree in round {round}");
            transports_agree = false;
        }
        if round > 0 {
            ring_rates.push(ring.0);
            channel_rates.push(chan.0);
        }
    }
    let ring_speedup = median(&ring_rates) / median(&channel_rates);

    // ---- Human table ------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput --pipeline ({} scale, {} clicks, median of {} rounds)",
        scale.label, scale.clicks, scale.rounds
    );
    let _ = writeln!(table, "{:<28} {:>14}", "config", "Mclicks/s");
    for (name, rates) in [
        ("hash scalar plan()", &scalar_rates),
        ("hash multi-lane flat", &lanes_rates),
        ("pipeline channel", &channel_rates),
        ("pipeline ring+pool", &ring_rates),
    ] {
        let _ = writeln!(table, "{:<28} {:>14.2}", name, median(rates) / 1e6);
    }
    let _ = writeln!(
        table,
        "# multi-lane/scalar hash speedup = {hash_speedup:.2}x"
    );
    let _ = writeln!(
        table,
        "# ring/channel pipeline speedup = {ring_speedup:.2}x"
    );
    print!("{table}");

    // ---- Gates ------------------------------------------------------
    let hash_ok = hash_speedup >= 1.3;
    let ring_ok = ring_speedup >= 1.2;
    let gate = |ok: bool| {
        if ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        }
    };
    println!(
        "# gates: lanes>=1.3x {} | ring>=1.2x {} | transports-agree {} | checksums {}",
        gate(hash_ok),
        gate(ring_ok),
        if transports_agree { "PASS" } else { "FAIL" },
        if checksums_agree { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON --------------------------------------
    let join = |rates: &[f64]| {
        rates
            .iter()
            .map(|&r| json_f64(r))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-pipeline/1\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label);
    let _ = writeln!(json, "  \"clicks\": {},", scale.clicks);
    let _ = writeln!(json, "  \"rounds\": {},", scale.rounds);
    let _ = writeln!(json, "  \"shards\": {PIPE_SHARDS},");
    let _ = writeln!(json, "  \"batch\": {PIPE_BATCH},");
    let _ = writeln!(json, "  \"hash\": {{");
    let _ = writeln!(
        json,
        "    \"lanes\": {},",
        cfd_hash::lanes::preferred_lanes()
    );
    let _ = writeln!(
        json,
        "    \"scalar_keys_per_sec_median\": {},",
        json_f64(median(&scalar_rates))
    );
    let _ = writeln!(
        json,
        "    \"lanes_keys_per_sec_median\": {},",
        json_f64(median(&lanes_rates))
    );
    let _ = writeln!(json, "    \"scalar_rounds\": [{}],", join(&scalar_rates));
    let _ = writeln!(json, "    \"lanes_rounds\": [{}],", join(&lanes_rates));
    let _ = writeln!(json, "    \"speedup\": {}", json_f64(hash_speedup));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pipeline\": {{");
    let _ = writeln!(
        json,
        "    \"channel_clicks_per_sec_median\": {},",
        json_f64(median(&channel_rates))
    );
    let _ = writeln!(
        json,
        "    \"ring_clicks_per_sec_median\": {},",
        json_f64(median(&ring_rates))
    );
    let _ = writeln!(json, "    \"channel_rounds\": [{}],", join(&channel_rates));
    let _ = writeln!(json, "    \"ring_rounds\": [{}],", join(&ring_rates));
    let _ = writeln!(json, "    \"speedup\": {}", json_f64(ring_speedup));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"hash_speedup_ok\": {hash_ok},");
    let _ = writeln!(json, "    \"ring_speedup_ok\": {ring_ok},");
    let _ = writeln!(json, "    \"transports_agree\": {transports_agree},");
    let _ = writeln!(json, "    \"checksums_agree\": {checksums_agree}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_pipeline_{}.txt", scale.label);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    let speedup_gates_ok = quick || (hash_ok && ring_ok);
    if !transports_agree || !checksums_agree || !speedup_gates_ok {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// PR 5 scenario: time-based detectors, sequential vs batch, per layout.
// ---------------------------------------------------------------------

/// Timed-scenario id length: 8-byte little-endian counters, same as the
/// PR 3 stream (the hash family scrambles them).
const TIMED_KEY_LEN: usize = 8;

/// Time units per TimeTbf sliding window / sub-windows per TimeGbf
/// jumping window. With ticks advancing one per click, `unit_ticks` is
/// chosen so a window spans roughly the detector's sized-for capacity.
const TIMED_TBF_UNITS: u64 = 16;
const TIMED_GBF_Q: usize = 8;

/// A timed-measurement closure over (flat keys, ticks).
type TimedRunFn = Box<dyn FnMut(&[u8], &[u64]) -> RunResult>;

struct TimedBench {
    name: &'static str,
    family: &'static str,
    layout: ProbeLayout,
    mode: &'static str,
    run: TimedRunFn,
    rates: Vec<f64>,
    duplicates: u64,
}

fn time_tbf_cfg(n: usize, layout: ProbeLayout) -> TimeTbfConfig {
    // One unit ≈ n / TIMED_TBF_UNITS clicks at one tick per click, so
    // the wall-clock window holds about the n elements the table
    // (m = 16 n entries, as in the count-based rows) is sized for.
    let unit_ticks = (n as u64 / TIMED_TBF_UNITS).max(1);
    TimeTbfConfig::new(TIMED_TBF_UNITS, unit_ticks, n * 16, K, 7)
        .and_then(|c| c.with_probe(layout))
        .expect("valid time-tbf config")
}

fn time_gbf_cfg(n: usize, layout: ProbeLayout) -> TimeGbfConfig {
    // One sub-window of one unit ≈ n / Q clicks; per-lane filter sized
    // like the count-based GBF rows ((n / Q) * 28 bits).
    let unit_ticks = (n as u64 / TIMED_GBF_Q as u64).max(1);
    TimeGbfConfig::new(TIMED_GBF_Q, 1, unit_ticks, (n / TIMED_GBF_Q) * 28, K, 7)
        .and_then(|c| c.with_probe(layout))
        .expect("valid time-gbf config")
}

/// Per-click `observe_at` loop over the flat key buffer.
fn drive_timed_seq<D: TimedDuplicateDetector + DetectorStats>(
    d: &mut D,
    keys: &[u8],
    ticks: &[u64],
) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    for (key, &tick) in keys.chunks_exact(TIMED_KEY_LEN).zip(ticks) {
        if d.observe_at(key, tick) == Verdict::Duplicate {
            dups += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (ticks.len() as f64 / secs, dups, d.occupancy_scans())
}

/// Hash-once flat-key batch path in [`BATCH`]-sized chunks, verdict
/// buffer reused across chunks (zero steady-state allocation).
fn drive_timed_batch<D: TimedDuplicateDetector + DetectorStats>(
    d: &mut D,
    keys: &[u8],
    ticks: &[u64],
) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    let mut verdicts = Vec::with_capacity(BATCH);
    for (kc, tc) in keys.chunks(BATCH * TIMED_KEY_LEN).zip(ticks.chunks(BATCH)) {
        d.observe_flat_at_into(kc, TIMED_KEY_LEN, tc, &mut verdicts);
        dups += verdicts
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (ticks.len() as f64 / secs, dups, d.occupancy_scans())
}

fn timed_benches(scale: &ScaleCfg) -> Vec<TimedBench> {
    let mut out = Vec::new();
    for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
        let blocked = layout == ProbeLayout::Blocked;
        let tbf_n = scale.tbf_n;
        let gbf_n = scale.gbf_n;
        out.push(TimedBench {
            name: if blocked {
                "time-tbf-blocked-seq"
            } else {
                "time-tbf-scattered-seq"
            },
            family: "time-tbf",
            layout,
            mode: "sequential",
            run: Box::new(move |keys, ticks| {
                let mut d = TimeTbf::new(time_tbf_cfg(tbf_n, layout)).expect("time-tbf");
                drive_timed_seq(&mut d, keys, ticks)
            }),
            rates: Vec::new(),
            duplicates: 0,
        });
        out.push(TimedBench {
            name: if blocked {
                "time-tbf-blocked-batch"
            } else {
                "time-tbf-scattered-batch"
            },
            family: "time-tbf",
            layout,
            mode: "batch",
            run: Box::new(move |keys, ticks| {
                let mut d = TimeTbf::new(time_tbf_cfg(tbf_n, layout)).expect("time-tbf");
                drive_timed_batch(&mut d, keys, ticks)
            }),
            rates: Vec::new(),
            duplicates: 0,
        });
        out.push(TimedBench {
            name: if blocked {
                "time-gbf-blocked-seq"
            } else {
                "time-gbf-scattered-seq"
            },
            family: "time-gbf",
            layout,
            mode: "sequential",
            run: Box::new(move |keys, ticks| {
                let mut d = TimeGbf::new(time_gbf_cfg(gbf_n, layout)).expect("time-gbf");
                drive_timed_seq(&mut d, keys, ticks)
            }),
            rates: Vec::new(),
            duplicates: 0,
        });
        out.push(TimedBench {
            name: if blocked {
                "time-gbf-blocked-batch"
            } else {
                "time-gbf-scattered-batch"
            },
            family: "time-gbf",
            layout,
            mode: "batch",
            run: Box::new(move |keys, ticks| {
                let mut d = TimeGbf::new(time_gbf_cfg(gbf_n, layout)).expect("time-gbf");
                drive_timed_batch(&mut d, keys, ticks)
            }),
            rates: Vec::new(),
            duplicates: 0,
        });
    }
    out
}

fn run_timed_scenario(quick: bool, out_path: &str) {
    let scale = if quick {
        ScaleCfg {
            label: "quick",
            clicks: 1 << 18,
            rounds: 3,
            tbf_n: 1 << 16,
            gbf_n: 1 << 17,
        }
    } else {
        ScaleCfg {
            label: "full",
            clicks: 1 << 22,
            rounds: 10,
            tbf_n: 1 << 20,
            gbf_n: 1 << 21,
        }
    };
    println!(
        "# throughput --timed — {} scale: {} clicks/round, {} measured rounds (+1 warm-up), \
         batch {BATCH}",
        scale.label, scale.clicks, scale.rounds
    );

    // Distinct 8-byte ids, ticks advancing one per click: every round
    // walks the whole unit-advance + incremental-cleaning machinery
    // (TIMED_TBF_UNITS sweeps per window span, Q lane rotations).
    let keys: Vec<u8> = (0..scale.clicks as u64)
        .flat_map(u64::to_le_bytes)
        .collect();
    let ticks: Vec<u64> = (0..scale.clicks as u64).collect();

    let mut benches = timed_benches(&scale);
    let mut scan_violations = 0u32;
    for round in 0..=scale.rounds {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            let (rate, dups, scans) = (b.run)(&keys, &ticks);
            if scans != 0 {
                scan_violations += 1;
                eprintln!(
                    "FAIL: {} performed {scans} occupancy scans in the timed hot loop",
                    b.name
                );
            }
            if round == 0 {
                b.duplicates = dups;
            } else if dups != b.duplicates {
                eprintln!(
                    "FAIL: {} duplicate count drifted across rounds ({} vs {})",
                    b.name, dups, b.duplicates
                );
                scan_violations += 1;
            }
            if round > 0 {
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }

    // The batch path must be a pure optimization: identical duplicate
    // counts to the sequential loop, per family and layout.
    let mut paths_agree = true;
    for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
        for family in ["time-tbf", "time-gbf"] {
            let dups = |mode: &str| {
                benches
                    .iter()
                    .find(|b| b.family == family && b.layout == layout && b.mode == mode)
                    .map(|b| b.duplicates)
                    .expect("all rows present")
            };
            if dups("sequential") != dups("batch") {
                paths_agree = false;
                eprintln!(
                    "FAIL: {family} ({}) batch and sequential verdicts disagree",
                    layout_name(layout)
                );
            }
        }
    }

    // ---- Human table ------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput --timed — sequential vs batch, scattered vs blocked \
         ({} scale, {} clicks, median of {} rounds)",
        scale.label, scale.clicks, scale.rounds
    );
    let _ = writeln!(table, "{:<28} {:>14} {:>14}", "config", "Mclicks/s", "dups");
    for b in &benches {
        let _ = writeln!(
            table,
            "{:<28} {:>14.2} {:>14}",
            b.name,
            median(&b.rates) / 1e6,
            b.duplicates
        );
    }
    let rate_of = |family: &str, layout: ProbeLayout, mode: &str| {
        benches
            .iter()
            .find(|b| b.family == family && b.layout == layout && b.mode == mode)
            .map(|b| median(&b.rates))
            .expect("all rows present")
    };
    let mut batch_speedups: Vec<(&str, f64)> = Vec::new();
    let mut blocked_speedups: Vec<(&str, f64)> = Vec::new();
    for family in ["time-tbf", "time-gbf"] {
        let batch = rate_of(family, ProbeLayout::Scattered, "batch")
            / rate_of(family, ProbeLayout::Scattered, "sequential");
        let blocked = rate_of(family, ProbeLayout::Blocked, "batch")
            / rate_of(family, ProbeLayout::Scattered, "batch");
        let _ = writeln!(
            table,
            "# {family}: batch/sequential = {batch:.2}x, blocked/scattered (batch) = {blocked:.2}x"
        );
        batch_speedups.push((family, batch));
        blocked_speedups.push((family, blocked));
    }
    print!("{table}");

    // ---- Gates ------------------------------------------------------
    let batch_ok = batch_speedups.iter().all(|&(_, s)| s >= 1.3);
    let blocked_ok = blocked_speedups.iter().all(|&(_, s)| s >= 1.3);
    let scans_ok = scan_violations == 0;
    let gate = |ok: bool| {
        if ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        }
    };
    println!(
        "# gates: batch>=1.3x {} | blocked>=1.3x {} | paths-agree {} | no-hot-scans {}",
        gate(batch_ok),
        gate(blocked_ok),
        if paths_agree { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON --------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-timed/1\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label);
    let _ = writeln!(json, "  \"clicks\": {},", scale.clicks);
    let _ = writeln!(json, "  \"rounds\": {},", scale.rounds);
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(json, "      \"family\": \"{}\",", b.family);
        let _ = writeln!(json, "      \"layout\": \"{}\",", layout_name(b.layout));
        let _ = writeln!(json, "      \"mode\": \"{}\",", b.mode);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rounds: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rounds.join(", ")
        );
        let _ = writeln!(json, "      \"duplicates\": {}", b.duplicates);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, family) in ["time-tbf", "time-gbf"].iter().enumerate() {
        let batch = batch_speedups
            .iter()
            .find(|(f, _)| f == family)
            .expect("family present")
            .1;
        let blocked = blocked_speedups
            .iter()
            .find(|(f, _)| f == family)
            .expect("family present")
            .1;
        let _ = writeln!(
            json,
            "    \"{family}\": {{ \"batch\": {}, \"blocked\": {} }}{}",
            json_f64(batch),
            json_f64(blocked),
            if i == 0 { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"batch_speedup_ok\": {batch_ok},");
    let _ = writeln!(json, "    \"blocked_speedup_ok\": {blocked_ok},");
    let _ = writeln!(json, "    \"paths_agree\": {paths_agree},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_timed_{}.txt", scale.label);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    let speedup_gates_ok = quick || (batch_ok && blocked_ok);
    if !paths_agree || !scans_ok || !speedup_gates_ok {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// PR 6 scenario: registry backend shootout at equal memory.
// ---------------------------------------------------------------------

/// Count-window backends entered in the shootout, registry names.
const SHOOT_ALGOS: [&str; 4] = ["tbf", "gbf", "apbf", "swbf"];

/// Shared memory budget in bits per window element: the TBF sizing
/// convention (16 entries per element at a 17-bit entry width). At the
/// full-scale window (`n = 2^20`) this funds ~34 MB tables — large
/// enough that probes miss the core-private caches, the regime the
/// batch prefetch schedule is built for.
const SHOOT_BITS_PER_ELEMENT: usize = 272;

/// FP-gate slack factor per shootout cell. The blocked TBF/GBF models
/// embed the Poisson block-load mixture and track measurements within
/// 10%; their *scattered* counterparts are first-order classical-Bloom
/// forms that undershoot the double-hash / jumping-window machinery by
/// up to ~2×, so they gate at 2.5×. The APBF/SWBF models are documented
/// upper bounds in both layouts, gated at 1.5× like their unit tests.
fn shoot_fp_slack(algo: &str, layout: ProbeLayout) -> f64 {
    match (algo, layout) {
        ("tbf" | "gbf", ProbeLayout::Blocked) => 1.1,
        ("tbf" | "gbf", ProbeLayout::Scattered) => 2.5,
        _ => 1.5,
    }
}

/// Bits needed to store values `0..=max` (local copy of
/// `cfd_bits::words::bits_for_value`; `cfd-bench` does not depend on
/// `cfd-bits`).
fn shoot_bits_for_value(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Closed-form FP bound for one shootout cell, from the `cfd-analysis`
/// model matching the backend and probe layout. The structural
/// parameters mirror the registry's `TotalBits` geometry arms exactly.
fn shoot_fp_model(algo: &str, layout: ProbeLayout, n: usize, total: usize) -> f64 {
    match algo {
        "tbf" => {
            let cfg = tbf_config_budget(n, total, layout);
            match cfg.block_geometry() {
                None => cfd_analysis::tbf::fp_sliding(cfg.m, K, n),
                Some(geo) => fp_blocked_tbf(cfg.m, geo.slots(), K, n),
            }
        }
        "gbf" => {
            let cfg = gbf_config_budget(n, total, layout);
            match cfg.block_geometry() {
                None => cfd_analysis::gbf::fp_worst_case(cfg.m, K, n, cfg.q),
                Some(geo) => fp_blocked_gbf(cfg.m, geo.slots(), K, n, cfg.q),
            }
        }
        "apbf" => {
            let cfg = ApbfConfig::for_budget(n, total, 7, layout).expect("apbf cfg");
            let d = Apbf::new(cfg).expect("apbf");
            match layout {
                ProbeLayout::Scattered => {
                    cfd_analysis::apbf::fp_sliding(n, cfg.k, cfg.l, d.slice_capacity())
                }
                ProbeLayout::Blocked => {
                    let lines = cfg.total_bits / 512;
                    let lane_bits = d.slice_capacity() / lines;
                    cfd_analysis::apbf::fp_sliding_blocked(n, cfg.k, cfg.l, lines, lane_bits)
                }
            }
        }
        "swbf" => {
            let cfg = SwbfConfig::for_budget(n, total, 7, layout).expect("swbf cfg");
            let d = Swbf::new(cfg).expect("swbf");
            match layout {
                ProbeLayout::Scattered => cfd_analysis::swbf::fp_sliding(
                    n,
                    cfg.cells(),
                    cfg.side_cells(),
                    cfg.fingerprint_bits,
                    d.effective_candidates(),
                    4,
                ),
                ProbeLayout::Blocked => {
                    let slots = 1 << (512usize / cfg.cell_bits() as usize).ilog2();
                    cfd_analysis::swbf::fp_sliding_blocked(
                        n,
                        cfg.cells(),
                        cfg.side_cells(),
                        cfg.fingerprint_bits,
                        slots,
                        d.effective_candidates(),
                        4,
                    )
                }
            }
        }
        other => unreachable!("unregistered shootout algo {other}"),
    }
}

/// The registry's `tbf` entry at `TotalBits`, reproduced so the model
/// sees the exact built shape (entry width included).
fn tbf_config_budget(n: usize, total: usize, layout: ProbeLayout) -> TbfConfig {
    let entry_bits = shoot_bits_for_value(2 * n as u64 - 1) as usize;
    TbfConfig::builder(n)
        .entries(total / entry_bits)
        .hash_count(K)
        .seed(7)
        .probe(layout)
        .build()
        .expect("tbf budget config")
}

/// The registry's `gbf` entry at `TotalBits`: the padded layout spends
/// one whole word per probe group, so the per-filter bit count divides
/// by the real group stride.
fn gbf_config_budget(n: usize, total: usize, layout: ProbeLayout) -> GbfConfig {
    let q = 8usize;
    let group_bits = (q + 1).div_ceil(64) * 64;
    GbfConfig::builder(n, q)
        .filter_bits(total / group_bits)
        .hash_count(K)
        .seed(7)
        .probe(layout)
        .build()
        .expect("gbf budget config")
}

/// Builds one shootout detector through the registry — the same
/// resolution path the CLI and pipeline use.
fn shoot_build(
    algo: &str,
    layout: ProbeLayout,
    n: usize,
    total: usize,
) -> Box<dyn DetectorBackend> {
    let geo = BackendGeometry::new(n, MemorySpec::TotalBits(total))
        .with_seed(7)
        .with_probe(layout);
    cfd_core::registry::build(algo, &geo).expect("registered backend builds at the shared budget")
}

/// Byte width of one shootout click id.
const SHOOT_KEY_LEN: usize = 8;

/// Per-click `observe` loop (the sequential half of the batch-parity
/// comparison).
fn drive_shoot_seq(d: &mut Box<dyn DetectorBackend>, keys: &[u8]) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    for key in keys.chunks_exact(SHOOT_KEY_LEN) {
        if d.observe(key) == Verdict::Duplicate {
            dups += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (
        (keys.len() / SHOOT_KEY_LEN) as f64 / secs,
        dups,
        d.occupancy_scans(),
    )
}

/// Hash-once flat-key batch path in [`BATCH`]-sized chunks, verdict
/// buffer reused across chunks (zero steady-state allocation) — the
/// same batch convention the timed scenario gates.
fn drive_shoot_batch(d: &mut Box<dyn DetectorBackend>, keys: &[u8]) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    let mut verdicts = Vec::with_capacity(BATCH);
    for chunk in keys.chunks(BATCH * SHOOT_KEY_LEN) {
        d.observe_flat_into(chunk, SHOOT_KEY_LEN, &mut verdicts);
        dups += verdicts
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (
        (keys.len() / SHOOT_KEY_LEN) as f64 / secs,
        dups,
        d.occupancy_scans(),
    )
}

/// A shootout runner over the flat key buffer (`SHOOT_KEY_LEN` bytes
/// per click).
type ShootRunFn = Box<dyn FnMut(&[u8]) -> RunResult>;

struct ShootBench {
    algo: &'static str,
    layout: ProbeLayout,
    mode: &'static str,
    run: ShootRunFn,
    fp_model: f64,
    memory_bits: usize,
    rates: Vec<f64>,
    false_positives: u64,
}

fn shoot_benches(n: usize, total: usize) -> Vec<ShootBench> {
    let mut out = Vec::new();
    for algo in SHOOT_ALGOS {
        for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let fp_model = shoot_fp_model(algo, layout, n, total);
            let memory_bits = shoot_build(algo, layout, n, total).memory_bits();
            for mode in ["sequential", "batch"] {
                let seq = mode == "sequential";
                out.push(ShootBench {
                    algo,
                    layout,
                    mode,
                    run: Box::new(move |keys| {
                        let mut d = shoot_build(algo, layout, n, total);
                        if seq {
                            drive_shoot_seq(&mut d, keys)
                        } else {
                            drive_shoot_batch(&mut d, keys)
                        }
                    }),
                    fp_model,
                    memory_bits,
                    rates: Vec::new(),
                    false_positives: 0,
                });
            }
        }
    }
    out
}

fn run_shootout_scenario(quick: bool, out_path: &str) {
    let (label, clicks, rounds, n) = if quick {
        ("quick", 1usize << 18, 3usize, 1usize << 14)
    } else {
        ("full", 1usize << 22, 10usize, 1usize << 20)
    };
    let total = n * SHOOT_BITS_PER_ELEMENT;
    println!(
        "# throughput --shootout — {label} scale: {clicks} clicks/round, {rounds} measured \
         rounds (+1 warm-up), window {n}, {total} bits/backend, batch {BATCH}"
    );

    // Distinct id stream (one flat buffer, SHOOT_KEY_LEN bytes per
    // click): every Duplicate verdict is a false positive.
    let keys: Vec<u8> = (0..clicks as u64).flat_map(u64::to_le_bytes).collect();

    let mut benches = shoot_benches(n, total);
    let mut scan_violations = 0u32;
    for round in 0..=rounds {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            let (rate, dups, scans) = (b.run)(&keys);
            if scans != 0 {
                scan_violations += 1;
                eprintln!(
                    "FAIL: {}-{}-{} performed {scans} occupancy scans in the hot loop",
                    b.algo,
                    layout_name(b.layout),
                    b.mode
                );
            }
            if round == 0 {
                b.false_positives = dups;
            } else {
                if dups != b.false_positives {
                    scan_violations += 1;
                    eprintln!(
                        "FAIL: {}-{}-{} verdicts drifted across rounds ({dups} vs {})",
                        b.algo,
                        layout_name(b.layout),
                        b.mode,
                        b.false_positives
                    );
                }
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }

    // Batch must be a pure optimization of the sequential loop.
    let cell = |algo: &str, layout: ProbeLayout, mode: &str| {
        benches
            .iter()
            .find(|b| b.algo == algo && b.layout == layout && b.mode == mode)
            .expect("all cells present")
    };
    let mut paths_agree = true;
    for algo in SHOOT_ALGOS {
        for layout in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let (s, b) = (
                cell(algo, layout, "sequential").false_positives,
                cell(algo, layout, "batch").false_positives,
            );
            if s != b {
                paths_agree = false;
                eprintln!(
                    "FAIL: {algo} ({}) batch and sequential verdicts disagree ({b} vs {s})",
                    layout_name(layout)
                );
            }
        }
    }

    // FP gate: measured within the per-backend model bound (plus
    // three-sigma sampling slack on the finite stream).
    let mut fp_ok = true;
    for b in &benches {
        let fp = b.false_positives as f64 / clicks as f64;
        let slack = 3.0 * (b.fp_model * (1.0 - b.fp_model) / clicks as f64).sqrt();
        if fp > b.fp_model * shoot_fp_slack(b.algo, b.layout) + slack {
            fp_ok = false;
            eprintln!(
                "FAIL: {}-{} measured FP {fp:.3e} exceeds model {:.3e}",
                b.algo,
                layout_name(b.layout),
                b.fp_model
            );
        }
    }

    // Memory fairness gate: every backend within ±12% of the budget.
    let mut memory_ok = true;
    for b in &benches {
        let used = b.memory_bits as f64 / total as f64;
        if !(0.88..=1.12).contains(&used) {
            memory_ok = false;
            eprintln!(
                "FAIL: {}-{} spent {used:.3} of the {total}-bit budget",
                b.algo,
                layout_name(b.layout)
            );
        }
    }

    // ---- Human table and Pareto summary -----------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput --shootout — registry backends at equal memory \
         ({label} scale, {clicks} clicks, median of {rounds} rounds, {total} bits/backend)"
    );
    let _ = writeln!(
        table,
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "config", "Mclicks/s", "fp-measured", "fp-model", "mem-bits"
    );
    for b in &benches {
        let fp = b.false_positives as f64 / clicks as f64;
        let _ = writeln!(
            table,
            "{:<26} {:>12.2} {:>12.3e} {:>12.3e} {:>12}",
            format!("{}-{}-{}", b.algo, layout_name(b.layout), b.mode),
            median(&b.rates) / 1e6,
            fp,
            b.fp_model,
            b.memory_bits
        );
    }
    let mut batch_speedups: Vec<(&str, f64)> = Vec::new();
    for algo in SHOOT_ALGOS {
        let s = median(&cell(algo, ProbeLayout::Scattered, "batch").rates)
            / median(&cell(algo, ProbeLayout::Scattered, "sequential").rates);
        let _ = writeln!(table, "# {algo}: batch/sequential (scattered) = {s:.2}x");
        batch_speedups.push((algo, s));
    }
    let _ = writeln!(table, "#");
    let _ = writeln!(
        table,
        "# Pareto (scattered batch): | backend | FP rate | memory bits | Mclicks/s |"
    );
    for algo in SHOOT_ALGOS {
        let b = cell(algo, ProbeLayout::Scattered, "batch");
        let _ = writeln!(
            table,
            "# | {algo} | {:.3e} | {} | {:.2} |",
            b.false_positives as f64 / clicks as f64,
            b.memory_bits,
            median(&b.rates) / 1e6
        );
    }
    print!("{table}");

    // ---- Gates ------------------------------------------------------
    // Batch-speedup gate: the new backends must keep hot-path parity
    // with the incumbents' batch machinery (full scale only).
    let batch_ok = batch_speedups
        .iter()
        .filter(|(a, _)| *a == "apbf" || *a == "swbf")
        .all(|&(_, s)| s >= 1.3);
    let scans_ok = scan_violations == 0;
    println!(
        "# gates: apbf/swbf batch>=1.3x {} | fp-within-model {} | memory±12% {} | \
         paths-agree {} | no-hot-scans {}",
        if batch_ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        },
        if fp_ok { "PASS" } else { "FAIL" },
        if memory_ok { "PASS" } else { "FAIL" },
        if paths_agree { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON --------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-shootout/1\",");
    let _ = writeln!(json, "  \"scale\": \"{label}\",");
    let _ = writeln!(json, "  \"clicks\": {clicks},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"window\": {n},");
    let _ = writeln!(json, "  \"memory_bits_budget\": {total},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let fp = b.false_positives as f64 / clicks as f64;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"algo\": \"{}\",", b.algo);
        let _ = writeln!(json, "      \"layout\": \"{}\",", layout_name(b.layout));
        let _ = writeln!(json, "      \"mode\": \"{}\",", b.mode);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rs: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rs.join(", ")
        );
        let _ = writeln!(json, "      \"fp_measured\": {},", json_f64(fp));
        let _ = writeln!(json, "      \"fp_model\": {},", json_f64(b.fp_model));
        let _ = writeln!(json, "      \"memory_bits\": {}", b.memory_bits);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (algo, s)) in batch_speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{algo}\": {{ \"batch\": {} }}{}",
            json_f64(*s),
            if i + 1 < batch_speedups.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pareto\": [");
    for (i, algo) in SHOOT_ALGOS.iter().enumerate() {
        let b = cell(algo, ProbeLayout::Scattered, "batch");
        let _ = writeln!(
            json,
            "    {{ \"algo\": \"{algo}\", \"fp_measured\": {}, \"memory_bits\": {}, \
             \"clicks_per_sec_median\": {} }}{}",
            json_f64(b.false_positives as f64 / clicks as f64),
            b.memory_bits,
            json_f64(median(&b.rates)),
            if i + 1 < SHOOT_ALGOS.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"batch_speedup_ok\": {batch_ok},");
    let _ = writeln!(json, "    \"fp_within_model\": {fp_ok},");
    let _ = writeln!(json, "    \"memory_within_budget\": {memory_ok},");
    let _ = writeln!(json, "    \"paths_agree\": {paths_agree},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_shootout_{label}.txt");
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    let speedup_gates_ok = quick || batch_ok;
    if !fp_ok || !memory_ok || !paths_agree || !scans_ok || !speedup_gates_ok {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// PR 8 scenario: SIMD vs forced-scalar dispatch on the blocked batch
// path — same stream, same backends, only the kernel dispatch differs.
// ---------------------------------------------------------------------

/// One (backend, dispatch) cell of the SIMD shootout.
struct SimdBench {
    algo: &'static str,
    /// `"scalar"` forces the portable kernels; `"wide"` allows AVX2.
    dispatch: &'static str,
    rates: Vec<f64>,
    false_positives: u64,
}

/// Blocked-layout batch throughput for every registry count backend,
/// with the probe/clean kernels forced scalar vs allowed wide. Both
/// sides replay the identical distinct-id stream, so any verdict
/// difference or occupancy scan is a correctness failure, and the
/// wide/scalar rate ratio isolates exactly the SIMD contribution
/// (hash lanes, batch schedule, and memory budget are shared).
fn run_simd_scenario(quick: bool, out_path: &str) {
    let (label, clicks, rounds, n) = if quick {
        ("quick", 1usize << 18, 3usize, 1usize << 14)
    } else {
        ("full", 1usize << 22, 10usize, 1usize << 20)
    };
    let total = n * SHOOT_BITS_PER_ELEMENT;
    // Lane width the "wide" rows will actually get on this machine
    // (1 on non-AVX2 hosts, where both rows dispatch scalar and the
    // speedup gates are vacuous).
    cfd_core::simd::set_scalar_override(Some(false));
    let lanes = cfd_core::simd::active_lanes();
    cfd_core::simd::set_scalar_override(None);
    println!(
        "# throughput --simd — {label} scale: {clicks} clicks/round, {rounds} measured \
         rounds (+1 warm-up), window {n}, {total} bits/backend, batch {BATCH}, \
         wide lanes {lanes}"
    );

    // Distinct id stream: every Duplicate verdict is a false positive,
    // and both dispatch rows must report the same count.
    let keys: Vec<u8> = (0..clicks as u64).flat_map(u64::to_le_bytes).collect();

    let mut benches: Vec<SimdBench> = SHOOT_ALGOS
        .iter()
        .flat_map(|&algo| {
            ["scalar", "wide"].map(|dispatch| SimdBench {
                algo,
                dispatch,
                rates: Vec::new(),
                false_positives: 0,
            })
        })
        .collect();

    let mut violations = 0u32;
    for round in 0..=rounds {
        // Alternate the visit order so slow drift (thermal, cache)
        // cannot systematically favor one dispatch.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            cfd_core::simd::set_scalar_override(Some(b.dispatch == "scalar"));
            let mut d = shoot_build(b.algo, ProbeLayout::Blocked, n, total);
            let (rate, dups, scans) = drive_shoot_batch(&mut d, &keys);
            if scans != 0 {
                violations += 1;
                eprintln!(
                    "FAIL: {}-{} performed {scans} occupancy scans in the hot loop",
                    b.algo, b.dispatch
                );
            }
            if round == 0 {
                b.false_positives = dups;
            } else {
                if dups != b.false_positives {
                    violations += 1;
                    eprintln!(
                        "FAIL: {}-{} verdicts drifted across rounds ({dups} vs {})",
                        b.algo, b.dispatch, b.false_positives
                    );
                }
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }
    cfd_core::simd::set_scalar_override(None);

    let cell = |algo: &str, dispatch: &str| {
        benches
            .iter()
            .find(|b| b.algo == algo && b.dispatch == dispatch)
            .expect("all cells present")
    };

    // Dispatch must never change a verdict.
    let mut verdicts_agree = true;
    for algo in SHOOT_ALGOS {
        let (s, w) = (
            cell(algo, "scalar").false_positives,
            cell(algo, "wide").false_positives,
        );
        if s != w {
            verdicts_agree = false;
            eprintln!("FAIL: {algo} wide and scalar verdicts disagree ({w} vs {s})");
        }
    }

    // ---- Human table ------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput --simd — blocked batch, wide vs forced-scalar kernels \
         ({label} scale, {clicks} clicks, median of {rounds} rounds, {total} bits/backend, \
         wide lanes {lanes})"
    );
    let _ = writeln!(
        table,
        "{:<20} {:>12} {:>14}",
        "config", "Mclicks/s", "false-positives"
    );
    for b in &benches {
        let _ = writeln!(
            table,
            "{:<20} {:>12.2} {:>14}",
            format!("{}-{}", b.algo, b.dispatch),
            median(&b.rates) / 1e6,
            b.false_positives
        );
    }
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for algo in SHOOT_ALGOS {
        let s = median(&cell(algo, "wide").rates) / median(&cell(algo, "scalar").rates);
        let _ = writeln!(table, "# {algo}: wide/scalar = {s:.2}x");
        speedups.push((algo, s));
    }
    print!("{table}");

    // ---- Gates ------------------------------------------------------
    // GBF's hot path is word-granular lane cleaning (~34 word RMWs per
    // click), which the wide dispatch turns into contiguous AND-store
    // sweeps — the one backend where SIMD buys a whole-pipeline win
    // (isolated sweep kernel ~1.9x; end-to-end 1.22–1.35x across runs,
    // median ~1.26x on the reference one-core host). The gate floor
    // sits at 1.2x — below the measured band, not at its midpoint — so
    // a rerun on a noisy host reproduces PASS instead of coin-flipping
    // around the point estimate. The probe-dominated backends are
    // early-exit branch-bound (see docs/PERFORMANCE.md "SIMD probe
    // path"): there the wide kernels are bit-identical rewrites gated
    // only against regression, with a floor loose enough for one-core
    // VM noise (APBF shares every instruction across both rows yet
    // still wobbles ~10% between runs). Full scale, AVX2 hosts only —
    // with one lane both rows run the same kernels.
    let speedup_ok = speedups.iter().all(|&(algo, s)| {
        let floor = if algo == "gbf" { 1.2 } else { 0.85 };
        s >= floor
    });
    let gates_apply = !quick && lanes > 1;
    let scans_ok = violations == 0;
    println!(
        "# gates: gbf wide>=1.2x + no backend <0.85x {} | verdicts-agree {} | no-hot-scans {}",
        if speedup_ok {
            "PASS"
        } else if gates_apply {
            "FAIL"
        } else {
            "SKIP (quick)"
        },
        if verdicts_agree { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON --------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-simd/1\",");
    let _ = writeln!(json, "  \"scale\": \"{label}\",");
    let _ = writeln!(json, "  \"clicks\": {clicks},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"window\": {n},");
    let _ = writeln!(json, "  \"memory_bits_budget\": {total},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"lanes\": {lanes},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"algo\": \"{}\",", b.algo);
        let _ = writeln!(json, "      \"dispatch\": \"{}\",", b.dispatch);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rs: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rs.join(", ")
        );
        let _ = writeln!(json, "      \"false_positives\": {}", b.false_positives);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (algo, s)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{algo}\": {{ \"wide\": {} }}{}",
            json_f64(*s),
            if i + 1 < speedups.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"simd_speedup_ok\": {speedup_ok},");
    let _ = writeln!(json, "    \"verdicts_agree\": {verdicts_agree},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_simd_{label}.txt");
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    let speedup_gate_ok = !gates_apply || speedup_ok;
    if !verdicts_agree || !scans_ok || !speedup_gate_ok {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// PR 9 scenario: multi-tenant arena vs one big detector at equal memory.
// ---------------------------------------------------------------------

/// Per-tenant sliding window: each (advertiser, campaign) pair gets its
/// own dedup horizon of this many clicks.
const TENANT_WINDOW: usize = 32;

/// Per-tenant FP target the arena regions are sized for (the
/// `arena_tenant_budget` operating point the bytes/tenant gate uses).
const TENANT_TARGET_FP: f64 = 0.01;

/// Shards for the tenant-routed sharded row.
const TENANT_SHARDS: usize = 4;

/// A tenant-scenario runner over (flat 16-byte keys, per-key slices);
/// arena rows also return their post-run [`cfd_core::ArenaStats`]
/// `(live_tenants, slab_bytes)` pair, read *after* the timed region.
type TenantRunFn = Box<dyn FnMut(&[u8], &[&[u8]]) -> (RunResult, Option<(usize, usize)>)>;

struct TenantBench {
    name: &'static str,
    run: TenantRunFn,
    rates: Vec<f64>,
    duplicates: u64,
}

/// One arena provisioned for `slots` tenants at the budgeted per-tenant
/// geometry.
fn tenant_arena(budget: TenantBudget, slots: usize, seed: u64) -> TenantArena {
    TenantArena::new(
        ArenaConfig::new(TENANT_WINDOW, budget.entries, budget.k, seed).with_initial_slots(slots),
    )
    .expect("arena config")
}

/// Four arenas behind a tenant-routing shard router, probe families
/// aligned so routing hashes each click once.
fn tenant_sharded(budget: TenantBudget, slots_per_shard: usize) -> ShardedDetector<TenantArena> {
    let router = cfd_core::ShardRouter::new(7, TENANT_SHARDS).expect("router");
    let seed = router.probe_seed();
    let shards = (0..TENANT_SHARDS)
        .map(|_| tenant_arena(budget, slots_per_shard, seed))
        .collect();
    ShardedDetector::new(7, shards).expect("sharded arena")
}

/// The single-detector baseline: one big TBF holding the same total
/// memory the arena slab holds, window spanning the same aggregate
/// element capacity (`live_tenants · TENANT_WINDOW`).
fn tenant_baseline(total_bits: usize, window: usize, k: usize) -> Tbf {
    let entry_bits = shoot_bits_for_value(2 * window as u64 - 1) as usize;
    Tbf::new(
        TbfConfig::builder(window)
            .entries((total_bits / entry_bits).max(1))
            .hash_count(k)
            .seed(7)
            .build()
            .expect("baseline config"),
    )
    .expect("baseline tbf")
}

/// Flat-key batch drive shared by the arena-batch and baseline rows.
fn drive_tenant_flat<D: DuplicateDetector + DetectorStats>(d: &mut D, keys: &[u8]) -> RunResult {
    let start = Instant::now();
    let mut dups = 0u64;
    let mut verdicts = Vec::with_capacity(BATCH);
    for chunk in keys.chunks(BATCH * TENANT_KEY_LEN) {
        d.observe_flat_into(chunk, TENANT_KEY_LEN, &mut verdicts);
        dups += verdicts
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (
        (keys.len() / TENANT_KEY_LEN) as f64 / secs,
        dups,
        d.occupancy_scans(),
    )
}

fn tenant_benches(budget: TenantBudget, live: usize, total_bits: usize) -> Vec<TenantBench> {
    let baseline_window = (live * TENANT_WINDOW).max(2);
    vec![
        TenantBench {
            name: "arena-seq",
            run: Box::new(move |keys, _| {
                let mut d = tenant_arena(budget, live, 7);
                let start = Instant::now();
                let mut dups = 0u64;
                for key in keys.chunks_exact(TENANT_KEY_LEN) {
                    if d.observe(key) == Verdict::Duplicate {
                        dups += 1;
                    }
                }
                let secs = start.elapsed().as_secs_f64();
                let rate = (keys.len() / TENANT_KEY_LEN) as f64 / secs;
                let scans = d.occupancy_scans();
                let stats = d.arena_stats();
                (
                    (rate, dups, scans),
                    Some((stats.live_tenants, stats.slab_bytes)),
                )
            }),
            rates: Vec::new(),
            duplicates: 0,
        },
        TenantBench {
            name: "arena-batch",
            run: Box::new(move |keys, _| {
                let mut d = tenant_arena(budget, live, 7);
                let result = drive_tenant_flat(&mut d, keys);
                let stats = d.arena_stats();
                (result, Some((stats.live_tenants, stats.slab_bytes)))
            }),
            rates: Vec::new(),
            duplicates: 0,
        },
        TenantBench {
            name: "arena-sharded",
            run: Box::new(move |_, ids| {
                let mut d = tenant_sharded(budget, live.div_ceil(TENANT_SHARDS));
                let start = Instant::now();
                let mut dups = 0u64;
                for chunk in ids.chunks(BATCH) {
                    dups += d
                        .observe_batch_tenant_routed(chunk)
                        .iter()
                        .filter(|&&v| v == Verdict::Duplicate)
                        .count() as u64;
                }
                let secs = start.elapsed().as_secs_f64();
                let rate = ids.len() as f64 / secs;
                let scans = d.occupancy_scans();
                let (mut live_total, mut slab_total) = (0usize, 0usize);
                for shard in d.shards() {
                    let stats = shard.arena_stats();
                    live_total += stats.live_tenants;
                    slab_total += stats.slab_bytes;
                }
                ((rate, dups, scans), Some((live_total, slab_total)))
            }),
            rates: Vec::new(),
            duplicates: 0,
        },
        TenantBench {
            name: "single-tbf",
            run: Box::new(move |keys, _| {
                let mut d = tenant_baseline(total_bits, baseline_window, budget.k);
                (drive_tenant_flat(&mut d, keys), None)
            }),
            rates: Vec::new(),
            duplicates: 0,
        },
    ]
}

fn run_tenants_scenario(quick: bool, out_path: &str) {
    let (label, clicks, rounds, tenants) = if quick {
        ("quick", 1usize << 18, 3usize, 1usize << 12)
    } else {
        ("full", 1usize << 22, 10usize, 1usize << 20)
    };
    let budget = arena_tenant_budget(TENANT_WINDOW, TENANT_TARGET_FP);
    println!(
        "# throughput --tenants — {label} scale: {clicks} clicks/round, {rounds} measured \
         rounds (+1 warm-up), {tenants}-tenant universe, window {TENANT_WINDOW}/tenant, \
         budget {} B/tenant (m_t = {}, k = {}), batch {BATCH}",
        budget.bytes_per_tenant, budget.entries, budget.k
    );

    // Deterministic Zipf-skewed tenant stream, generated once outside
    // every timed region. The generator counts the duplicates it
    // injects (all at tenant-relative lag 1, guaranteed in-window), so
    // the stream doubles as the isolation experiment.
    let mut traffic = TenantTraffic::new(TenantTrafficConfig::new(tenants, 9));
    let mut keys: Vec<u8> = Vec::new();
    traffic.fill_flat(clicks, &mut keys);
    let injected = traffic.duplicates_emitted();
    let ids: Vec<&[u8]> = keys.chunks_exact(TENANT_KEY_LEN).collect();

    // Tenants the stream actually touches: the arena materializes
    // exactly these, so provisioning for them keeps the amortized
    // bytes/tenant at the analysis budget (capacity planning, not
    // oracle knowledge — a deployment sizes for its tenant count).
    let live: usize = {
        let mut seen = std::collections::HashSet::new();
        for id in &ids {
            seen.insert(cfd_hash::tenant_prefix(id));
        }
        seen.len()
    };
    let total_bits = live * budget.bytes_per_tenant * 8;
    println!("# stream: {live} distinct tenants hit, {injected} duplicates injected");

    let mut benches = tenant_benches(budget, live, total_bits);
    let mut violations = 0u32;
    let mut isolation_ok = true;
    let mut bytes_per_tenant_measured = 0.0f64;
    let mut live_measured = 0usize;
    // Per-probe FP bound for the excess-duplicate isolation gate: each
    // click probes one tenant region at most this full.
    let fp_bound = budget.predicted_fp;
    let fp_slack = 3.0 * (fp_bound * (1.0 - fp_bound) / clicks as f64).sqrt();
    for round in 0..=rounds {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            let ((rate, dups, scans), stats) = (b.run)(&keys, &ids);
            if scans != 0 {
                violations += 1;
                eprintln!(
                    "FAIL: {} performed {scans} occupancy scans in the hot loop",
                    b.name
                );
            }
            if let Some((live_seen, slab_bytes)) = stats {
                // Verdict isolation, asserted every round: at least the
                // injected duplicates (no tenant lost window state), at
                // most the per-tenant FP bound beyond them (no
                // cross-tenant contamination).
                if dups < injected {
                    isolation_ok = false;
                    eprintln!(
                        "FAIL: {} missed injected duplicates ({dups} < {injected})",
                        b.name
                    );
                }
                let excess = (dups.saturating_sub(injected)) as f64 / clicks as f64;
                if excess > fp_bound + fp_slack {
                    isolation_ok = false;
                    eprintln!(
                        "FAIL: {} excess duplicate rate {excess:.3e} exceeds the \
                         per-tenant FP bound {fp_bound:.3e}",
                        b.name
                    );
                }
                if live_seen != live {
                    isolation_ok = false;
                    eprintln!(
                        "FAIL: {} materialized {live_seen} tenants, stream hit {live}",
                        b.name
                    );
                }
                if b.name == "arena-batch" {
                    bytes_per_tenant_measured = slab_bytes as f64 / live_seen.max(1) as f64;
                    live_measured = live_seen;
                }
            }
            if round == 0 {
                b.duplicates = dups;
            } else {
                if dups != b.duplicates {
                    violations += 1;
                    eprintln!(
                        "FAIL: {} verdicts drifted across rounds ({dups} vs {})",
                        b.name, b.duplicates
                    );
                }
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }

    let rate_of = |name: &str| {
        benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| median(&b.rates))
            .expect("all rows present")
    };
    let baseline_ratio = rate_of("arena-batch") / rate_of("single-tbf");
    let batch_speedup = rate_of("arena-batch") / rate_of("arena-seq");
    let bytes_ratio = bytes_per_tenant_measured / budget.bytes_per_tenant as f64;

    // ---- Human table ------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput --tenants — arena vs one big TBF at equal memory \
         ({label} scale, {clicks} clicks, median of {rounds} rounds, {live} live tenants, \
         {total_bits} bits/side)"
    );
    let _ = writeln!(table, "{:<18} {:>12} {:>14}", "config", "Mclicks/s", "dups");
    for b in &benches {
        let _ = writeln!(
            table,
            "{:<18} {:>12.2} {:>14}",
            b.name,
            median(&b.rates) / 1e6,
            b.duplicates
        );
    }
    let _ = writeln!(
        table,
        "# arena-batch/single-tbf = {baseline_ratio:.2}x, batch/seq = {batch_speedup:.2}x"
    );
    let _ = writeln!(
        table,
        "# bytes/live-tenant = {bytes_per_tenant_measured:.1} \
         (budget {}, ratio {bytes_ratio:.3})",
        budget.bytes_per_tenant
    );
    print!("{table}");

    // ---- Gates ------------------------------------------------------
    let throughput_ok = baseline_ratio >= 0.7;
    let bytes_ok = bytes_ratio <= 1.25;
    let scans_ok = violations == 0;
    println!(
        "# gates: arena>=0.7x-baseline {} | bytes/tenant<=1.25x-budget {} | isolation {} | \
         rounds-stable+no-hot-scans {}",
        if throughput_ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        },
        if bytes_ok { "PASS" } else { "FAIL" },
        if isolation_ok { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON --------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-tenants/1\",");
    let _ = writeln!(json, "  \"scale\": \"{label}\",");
    let _ = writeln!(json, "  \"clicks\": {clicks},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"tenant_universe\": {tenants},");
    let _ = writeln!(json, "  \"live_tenants\": {live_measured},");
    let _ = writeln!(json, "  \"tenant_window\": {TENANT_WINDOW},");
    let _ = writeln!(json, "  \"duplicates_injected\": {injected},");
    let _ = writeln!(json, "  \"memory_bits_per_side\": {total_bits},");
    let _ = writeln!(json, "  \"budget\": {{");
    let _ = writeln!(json, "    \"entries\": {},", budget.entries);
    let _ = writeln!(json, "    \"hash_count\": {},", budget.k);
    let _ = writeln!(
        json,
        "    \"predicted_fp\": {},",
        json_f64(budget.predicted_fp)
    );
    let _ = writeln!(
        json,
        "    \"bytes_per_tenant\": {}",
        budget.bytes_per_tenant
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rs: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rs.join(", ")
        );
        let _ = writeln!(json, "      \"duplicates\": {}", b.duplicates);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"bytes_per_tenant_measured\": {},",
        json_f64(bytes_per_tenant_measured)
    );
    let _ = writeln!(json, "  \"baseline_ratio\": {},", json_f64(baseline_ratio));
    let _ = writeln!(json, "  \"batch_speedup\": {},", json_f64(batch_speedup));
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"throughput_ok\": {throughput_ok},");
    let _ = writeln!(json, "    \"bytes_per_tenant_ok\": {bytes_ok},");
    let _ = writeln!(json, "    \"isolation_ok\": {isolation_ok},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_tenants_{label}.txt");
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    let throughput_gate_ok = quick || throughput_ok;
    if !bytes_ok || !isolation_ok || !scans_ok || !throughput_gate_ok {
        std::process::exit(1);
    }
}

/// PR 10 scenario: `--scenario <file.toml>` — compile a declarative
/// scenario spec and brute-force its sweep grid, writing the
/// `cfd-bench-sweep/1` artifact (same driver as `cfd sweep`).
fn run_scenario_sweep(path: &str, quick: bool, out: &str) {
    use click_fraud_detection::cli::UsageError;
    use click_fraud_detection::sweep;

    let spec = cfd_stream::scenario::ScenarioSpec::from_path(path.as_ref()).unwrap_or_else(|e| {
        let err = UsageError::Invalid {
            option: "scenario",
            reason: e.to_string(),
        };
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let opts = if quick {
        sweep::SweepOptions::quick()
    } else {
        sweep::SweepOptions::full()
    };
    eprintln!(
        "sweeping `{}`: {} grid points over {} clicks{}",
        spec.name,
        spec.grid().len(),
        spec.clicks,
        if opts.quick { " [quick]" } else { "" }
    );
    let report = sweep::run(&spec, &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    print!("{}", sweep::render_table(&report));
    std::fs::write(out, sweep::report_json(&report)).unwrap_or_else(|e| {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn main() {
    let parsed = cfd_bench::args::parse_or_exit(
        &[
            "quick", "full", "pipeline", "timed", "shootout", "simd", "tenants",
        ],
        &["out", "scenario"],
    );
    let quick = parsed.flag("quick") && !parsed.flag("full");
    let pipeline = parsed.flag("pipeline");
    let timed = parsed.flag("timed");
    let shootout = parsed.flag("shootout");
    let simd = parsed.flag("simd");
    let tenants = parsed.flag("tenants");
    let out_path: Option<String> = parsed.option("out").map(ToOwned::to_owned);
    if let Some(path) = parsed.option("scenario") {
        let out = out_path.unwrap_or_else(|| "BENCH_sweep.json".to_owned());
        run_scenario_sweep(path, quick, &out);
        return;
    }
    if pipeline {
        let out = out_path.unwrap_or_else(|| "BENCH_pr4.json".to_owned());
        run_pipeline_scenario(quick, &out);
        return;
    }
    if timed {
        let out = out_path.unwrap_or_else(|| "BENCH_pr5.json".to_owned());
        run_timed_scenario(quick, &out);
        return;
    }
    if shootout {
        let out = out_path.unwrap_or_else(|| "BENCH_pr6.json".to_owned());
        run_shootout_scenario(quick, &out);
        return;
    }
    if simd {
        let out = out_path.unwrap_or_else(|| "BENCH_pr8.json".to_owned());
        run_simd_scenario(quick, &out);
        return;
    }
    if tenants {
        let out = out_path.unwrap_or_else(|| "BENCH_pr9.json".to_owned());
        run_tenants_scenario(quick, &out);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr3.json".to_owned());
    let scale = if quick {
        ScaleCfg {
            label: "quick",
            clicks: 1 << 18,
            rounds: 3,
            tbf_n: 1 << 16,
            gbf_n: 1 << 17,
        }
    } else {
        ScaleCfg {
            label: "full",
            clicks: 1 << 22,
            rounds: 10,
            tbf_n: 1 << 20,
            gbf_n: 1 << 21,
        }
    };

    // Distinct id stream: generation is outside every timed region.
    let raw: Vec<[u8; 8]> = (0..scale.clicks as u64).map(u64::to_le_bytes).collect();
    let ids: Vec<&[u8]> = raw.iter().map(<[u8; 8]>::as_slice).collect();

    let mut benches = benches(&scale);
    println!(
        "# throughput — {} scale: {} clicks/round, {} measured rounds (+1 warm-up), batch {BATCH}",
        scale.label, scale.clicks, scale.rounds
    );

    let mut scan_violations = 0u32;
    for round in 0..=scale.rounds {
        // Alternate configuration order so slow drift (thermal, noisy
        // neighbours) hits scattered and blocked symmetrically.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..benches.len()).collect()
        } else {
            (0..benches.len()).rev().collect()
        };
        for idx in order {
            let b = &mut benches[idx];
            let (rate, dups, scans) = (b.run)(&ids);
            if scans != 0 {
                scan_violations += 1;
                eprintln!(
                    "FAIL: {} performed {scans} occupancy scans in the hot loop",
                    b.name
                );
            }
            if round == 0 {
                // Warm-up round: keep the (deterministic) FP count,
                // discard the timing.
                b.false_positives = dups;
            } else {
                b.rates.push(rate);
            }
        }
        if round == 0 {
            println!("# warm-up complete");
        }
    }

    // ---- Human table ---------------------------------------------------
    let mut table = String::new();
    let _ = writeln!(
        table,
        "# throughput — scattered vs blocked probing ({} scale, {} clicks, median of {} rounds)",
        scale.label, scale.clicks, scale.rounds
    );
    let _ = writeln!(
        table,
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "config", "Mclicks/s", "fp-measured", "fp-model", "model-ratio"
    );
    for b in &benches {
        let fp = b.false_positives as f64 / scale.clicks as f64;
        let (model, ratio) = match b.fp_model {
            Some(m) => (
                format!("{m:.3e}"),
                format!("{:.2}", fp / m.max(f64::MIN_POSITIVE)),
            ),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let _ = writeln!(
            table,
            "{:<24} {:>12.2} {:>12.3e} {:>12} {:>12}",
            b.name,
            median(&b.rates) / 1e6,
            fp,
            model,
            ratio
        );
    }
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for family in ["tbf", "gbf", "sharded-tbf"] {
        let rate = |layout: ProbeLayout| {
            benches
                .iter()
                .find(|b| b.family == family && b.layout == layout)
                .map(|b| median(&b.rates))
                .expect("both layouts present")
        };
        speedups.push((
            family,
            rate(ProbeLayout::Blocked) / rate(ProbeLayout::Scattered),
        ));
    }
    for (family, s) in &speedups {
        let _ = writeln!(table, "# {family}: blocked/scattered speedup = {s:.2}x");
    }
    print!("{table}");

    // ---- PASS/FAIL gates ----------------------------------------------
    // Speedup gate: the memory-bound single-thread families must clear
    // 1.3x at full scale (quick CI runs only smoke the machinery).
    let speedup_ok = speedups
        .iter()
        .filter(|(f, _)| *f == "tbf" || *f == "gbf")
        .all(|(_, s)| *s >= 1.3);
    // FP gate: measured blocked FP within 10% of the closed-form model,
    // plus three-sigma sampling slack for the finite stream.
    let mut fp_ok = true;
    for b in &benches {
        if let Some(model) = b.fp_model {
            let fp = b.false_positives as f64 / scale.clicks as f64;
            let slack = 3.0 * (model * (1.0 - model) / scale.clicks as f64).sqrt();
            if fp > model * 1.1 + slack {
                fp_ok = false;
                eprintln!(
                    "FAIL: {} measured FP {fp:.3e} exceeds model {model:.3e} by >10%",
                    b.name
                );
            }
        }
    }
    let scans_ok = scan_violations == 0;
    println!(
        "# gates: speedup>=1.3x {} | fp-within-model {} | no-hot-scans {}",
        if speedup_ok {
            "PASS"
        } else if quick {
            "SKIP (quick)"
        } else {
            "FAIL"
        },
        if fp_ok { "PASS" } else { "FAIL" },
        if scans_ok { "PASS" } else { "FAIL" },
    );

    // ---- Machine-readable JSON ----------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cfd-bench-throughput/1\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label);
    let _ = writeln!(json, "  \"clicks\": {},", scale.clicks);
    let _ = writeln!(json, "  \"rounds\": {},", scale.rounds);
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, b) in benches.iter().enumerate() {
        let fp = b.false_positives as f64 / scale.clicks as f64;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(json, "      \"family\": \"{}\",", b.family);
        let _ = writeln!(json, "      \"layout\": \"{}\",", layout_name(b.layout));
        let _ = writeln!(json, "      \"sharded\": {},", b.sharded);
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_median\": {},",
            json_f64(median(&b.rates))
        );
        let rounds: Vec<String> = b.rates.iter().map(|&r| json_f64(r)).collect();
        let _ = writeln!(
            json,
            "      \"clicks_per_sec_rounds\": [{}],",
            rounds.join(", ")
        );
        let _ = writeln!(json, "      \"fp_measured\": {},", json_f64(fp));
        let _ = writeln!(
            json,
            "      \"fp_model\": {}",
            b.fp_model.map_or("null".to_owned(), json_f64)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < benches.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (family, s)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{family}\": {}{}",
            json_f64(*s),
            if i + 1 < speedups.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checks\": {{");
    let _ = writeln!(json, "    \"speedup_ok\": {speedup_ok},");
    let _ = writeln!(json, "    \"fp_within_model\": {fp_ok},");
    let _ = writeln!(json, "    \"no_occupancy_scans\": {scans_ok}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write json");
    println!("# wrote {out_path}");

    let table_path = format!("results/throughput_{}.txt", scale.label);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(&table_path, &table);
        println!("# wrote {table_path}");
    }

    if !fp_ok || !scans_ok || (!quick && !speedup_ok) {
        std::process::exit(1);
    }
}
