//! Figure 2(a): false-positive rate of GBF over jumping windows,
//! theoretical vs. experimental, as a function of the hash count `k`.
//!
//! Paper protocol (§5): `N = 2^20`, `Q = 8`, per-filter `m = 1,876,246`
//! bits, `20·N` distinct click identifiers, false positives counted over
//! the last `10·N`. Run with `--paper` for the exact sizes; the default
//! `--quick` keeps every ratio but shrinks `N` to `2^18`.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin fig2a [--paper|--smoke]
//! ```

use cfd_bench::measure_fp;
use cfd_core::{Gbf, GbfConfig};
use cfd_windows::DetectorStats;

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let n = scale.n();
    let q = 8usize;
    let m = scale.scaled(1_876_246);

    println!(
        "# Figure 2(a) — GBF over jumping windows, {}",
        scale.label()
    );
    println!("# N = {n}, Q = {q}, m = {m} bits/filter");
    println!(
        "{:>3} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "k", "theory", "measured", "online-est", "ci-lo", "ci-hi", "fp-count"
    );

    for k in 1..=14usize {
        let cfg = GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(k)
            .seed(0xF1624A + k as u64)
            .build()
            .expect("valid configuration");
        let mut gbf = Gbf::new(cfg).expect("valid detector");
        let measured = measure_fp(&mut gbf, n, 0x2A + k as u64);
        let theory = cfd_analysis::gbf::fp_steady(m, k, n, q);
        println!(
            "{:>3} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>10}",
            k,
            theory,
            measured.rate.estimate,
            gbf.estimated_fp(),
            measured.rate.lo,
            measured.rate.hi,
            measured.false_positives
        );
    }
    println!("# shape check: both curves fall steeply with k and flatten near");
    println!("# k = ln2 * m/(N/Q) ~ 10; experiment tracks theory (paper Fig. 2a).");
    println!("# online-est is the telemetry estimator (DetectorStats::estimated_fp)");
    println!("# recomputed from live lane occupancy at end of stream: it should");
    println!("# track the theory column without knowing N (docs/OBSERVABILITY.md).");
}
