//! Table T3 (§1.1 motivation): end-to-end fraud savings in the PPC
//! network simulator.
//!
//! A botnet drives 30% of clicks at a $0.25 CPC. The table compares the
//! network's billing under no dedup, GBF, TBF, and the exact oracle:
//! blocked clicks, revenue, the advertiser money saved, and the detector
//! memory spent to get it.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin table_adnet [--paper|--smoke]
//! ```

use cfd_adnet::{AdNetwork, Advertiser, AdvertiserId, Campaign, NetworkReport};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::{AdId, BotnetConfig, BotnetStream, Click};
use cfd_windows::{DuplicateDetector, ExactLandmarkDedup, ExactSlidingDedup};

const ADS: u32 = 64;
const CPC: u64 = 250_000;

fn build_network<D: DuplicateDetector>(detector: D) -> AdNetwork<D> {
    let mut net = AdNetwork::new(detector);
    net.registry_mut()
        .add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..ADS {
        net.registry_mut()
            .add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: CPC,
            })
            .expect("advertiser registered");
    }
    net
}

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let window = scale.n() / 32;
    let clicks_total = window * 40;

    let clicks: Vec<Click> = BotnetStream::new(
        BotnetConfig {
            bots: 2_000,
            attack_fraction: 0.3,
            target_cpc_micros: CPC,
            ..BotnetConfig::default()
        },
        16,
        ADS,
    )
    .take(clicks_total)
    .map(|c| c.click)
    .collect();

    println!(
        "# Table T3 — PPC billing under a botnet, {} (window = {window}, {clicks_total} clicks)",
        scale.label()
    );
    println!("{}", NetworkReport::header());

    let mut reports = Vec::new();
    // "No dedup": a 1-element landmark window never blocks.
    let mut none = build_network(ExactLandmarkDedup::new(1));
    reports.push(none.run(clicks.iter()));

    let gbf = Gbf::new(
        GbfConfig::builder(window, 8)
            .filter_bits(window / 8 * 14)
            .build()
            .expect("cfg"),
    )
    .expect("detector");
    let mut with_gbf = build_network(gbf);
    reports.push(with_gbf.run(clicks.iter()));

    let tbf = Tbf::new(
        TbfConfig::builder(window)
            .entries(window * 14)
            .build()
            .expect("cfg"),
    )
    .expect("detector");
    let mut with_tbf = build_network(tbf);
    reports.push(with_tbf.run(clicks.iter()));

    let mut exact = build_network(ExactSlidingDedup::new(window));
    reports.push(exact.run(clicks.iter()));

    for r in &reports {
        println!("{}", r.row());
    }

    let baseline = reports[0].revenue_micros;
    let oracle_blocked = reports[3].savings_micros;
    println!();
    for r in &reports[1..] {
        println!(
            "# {:<14} blocks ${:>10.2} of fraud ({:>5.1}% of oracle) with {:>8.1} KiB",
            r.detector,
            r.savings_micros as f64 / 1e6,
            100.0 * r.savings_micros as f64 / oracle_blocked.max(1) as f64,
            r.detector_memory_bits as f64 / 8.0 / 1024.0
        );
    }
    println!(
        "# unprotected network over-bills ${:.2} on this stream",
        (baseline - reports[3].revenue_micros) as f64 / 1e6
    );
    println!("# shape check: TBF ~= oracle savings at a fraction of the memory.");
    println!("# GBF can over-block a little (false positives block clicks, and its");
    println!("# jumping window covers N-N/Q..N of the stream) — the one-sided-error");
    println!("# direction advertisers prefer.");
}
