//! Derived figure: the warm-up transient behind the §5 protocol.
//!
//! The paper counts false positives only "within the last 10·N clicks to
//! make sure [the filter] has been stable". This binary shows *why*: it
//! plots the FP rate of GBF and TBF in windows of N/2 clicks from a cold
//! start. The rate climbs while the window fills, overshoots slightly as
//! the first expiries and the cleaning sweep settle, then locks onto the
//! steady state the analytic models predict.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin fig_warmup [--paper|--smoke]
//! ```

use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::UniqueIdStream;
use cfd_windows::DuplicateDetector;

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let n = scale.n() / 4;
    let q = 8usize;
    let k = 10usize;
    let gbf_m = scale.scaled(1_876_246) / 4;
    let tbf_m = scale.scaled(15_112_980) / 4;

    let mut gbf = Gbf::new(
        GbfConfig::builder(n, q)
            .filter_bits(gbf_m)
            .hash_count(k)
            .seed(0x77A8)
            .build()
            .expect("valid configuration"),
    )
    .expect("valid detector");
    let mut tbf = Tbf::new(
        TbfConfig::builder(n)
            .entries(tbf_m)
            .hash_count(k)
            .seed(0x77A9)
            .build()
            .expect("valid configuration"),
    )
    .expect("valid detector");

    let bucket = n / 2;
    let buckets = 24usize;
    println!(
        "# Warm-up transient, {} (N = {n}, buckets of N/2 clicks)",
        scale.label()
    );
    println!(
        "# theory steady state: gbf {:.3e}, tbf {:.3e}",
        cfd_analysis::gbf::fp_steady(gbf_m, k, n, q),
        cfd_analysis::tbf::fp_sliding(tbf_m, k, n)
    );
    println!("{:>8} {:>14} {:>14}", "bucket", "gbf-fp", "tbf-fp");

    let mut ids = UniqueIdStream::new(0xACE);
    for b in 0..buckets {
        let mut gbf_fp = 0u64;
        let mut tbf_fp = 0u64;
        for _ in 0..bucket {
            let id = ids.next().expect("infinite stream");
            let key = id.to_le_bytes();
            if gbf.observe(&key).is_duplicate() {
                gbf_fp += 1;
            }
            if tbf.observe(&key).is_duplicate() {
                tbf_fp += 1;
            }
        }
        println!(
            "{:>8} {:>14.6e} {:>14.6e}",
            b,
            gbf_fp as f64 / bucket as f64,
            tbf_fp as f64 / bucket as f64
        );
    }
    println!("# shape check: ~zero while the window fills (first 2 buckets),");
    println!("# then a rapid climb to the steady state the models predict —");
    println!("# the §5 protocol's 10N warm-up is comfortably past the knee.");
}
