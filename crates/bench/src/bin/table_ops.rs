//! Table T1 (derived from Theorems 1 & 2): per-element processing cost.
//!
//! The paper states running time in *memory operations*; this table
//! reports both the counted memory ops per element (for the instrumented
//! detectors) and the measured wall-clock throughput, across the
//! algorithms and their baselines, for small and large sub-window counts.
//!
//! Expected shape (§3.1, §4.1): GBF beats the naive separate-filter
//! layout, and degrades as `Q` grows (probe width `k·⌈(Q+1)/64⌉` and the
//! \[21\] scheme's `O(m)` expiry bursts); TBF's cost is independent of `Q`,
//! making it the better choice at large `Q` — the paper's headline
//! running-time claim.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin table_ops [--paper|--smoke]
//! ```

use cfd_bench::NaiveJumpingBloom;
use cfd_bloom::metwally::{MetwallyConfig, MetwallyJumping};
use cfd_bloom::stable::{StableBloomFilter, StableConfig};
use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::UniqueIdStream;
use cfd_windows::{DuplicateDetector, ExactSlidingDedup};
use std::time::Instant;

/// Drives `detector` over `count` distinct ids, returning Melem/s.
fn throughput<D: DuplicateDetector + ?Sized>(d: &mut D, count: u64, seed: u64) -> f64 {
    let ids: Vec<u64> = UniqueIdStream::new(seed).take(count as usize).collect();
    let start = Instant::now();
    for id in &ids {
        d.observe(&id.to_le_bytes());
    }
    let secs = start.elapsed().as_secs_f64();
    count as f64 / secs / 1e6
}

fn row(
    name: &str,
    q: &str,
    melems: f64,
    ops: Option<f64>,
    predicted: Option<f64>,
    memory_bits: usize,
) {
    let ops = ops.map_or_else(|| "-".to_owned(), |o| format!("{o:.2}"));
    let predicted = predicted.map_or_else(|| "-".to_owned(), |o| format!("{o:.2}"));
    println!(
        "{:<22} {:>6} {:>12.2} {:>14} {:>14} {:>12.1}",
        name,
        q,
        melems,
        ops,
        predicted,
        memory_bits as f64 / 8.0 / 1024.0
    );
}

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let n = scale.n() / 4; // cost table does not need the full figure N
    let count = (n * 12) as u64;
    let bits_per_elem = 14usize;

    println!("# Table T1 — per-element cost, {} (N = {n})", scale.label());
    println!(
        "{:<22} {:>6} {:>12} {:>14} {:>14} {:>12}",
        "detector", "Q", "Melem/s", "mem-ops/elem", "thm-predicted", "mem (KiB)"
    );

    for &q in &[8usize, 31, 255] {
        let m = (n / q).max(1) * bits_per_elem;

        let mut gbf = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(m)
                .hash_count(10)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let t = throughput(&mut gbf, count, 1);
        let predicted = cfd_analysis::cost::gbf_cost(m, 10, n, q, gbf.lane_words()).total(1.0);
        row(
            "gbf",
            &q.to_string(),
            t,
            Some(gbf.ops().mem_ops_per_element()),
            Some(predicted),
            gbf.memory_bits(),
        );

        let mut naive = NaiveJumpingBloom::new(n, q, m, 10, 1);
        let t = throughput(&mut naive, count, 2);
        row(
            "naive-separate",
            &q.to_string(),
            t,
            None,
            None,
            naive.memory_bits(),
        );

        let mut met = MetwallyJumping::new(MetwallyConfig {
            n,
            q,
            m,
            k: 10,
            seed: 1,
        });
        let t = throughput(&mut met, count, 3);
        row(
            "metwally[21]",
            &q.to_string(),
            t,
            None,
            None,
            met.memory_bits(),
        );

        let mut jtbf = JumpingTbf::new(
            JumpingTbfConfig::new(n, q, n * bits_per_elem / 12, 10, 1).expect("cfg"),
        )
        .expect("detector");
        let t = throughput(&mut jtbf, count, 4);
        row(
            "jumping-tbf",
            &q.to_string(),
            t,
            Some(jtbf.ops().mem_ops_per_element()),
            None,
            jtbf.memory_bits(),
        );
        println!();
    }

    let mut tbf = Tbf::new(
        TbfConfig::builder(n)
            .entries(n * bits_per_elem / 12)
            .hash_count(10)
            .build()
            .expect("cfg"),
    )
    .expect("detector");
    let t = throughput(&mut tbf, count, 5);
    let tbf_pred = cfd_analysis::cost::tbf_cost(tbf.config().m, 10, tbf.config().c).total(1.0);
    row(
        "tbf (sliding)",
        "-",
        t,
        Some(tbf.ops().mem_ops_per_element()),
        Some(tbf_pred),
        tbf.memory_bits(),
    );

    let mut stable = StableBloomFilter::new(StableConfig {
        m: n * 2,
        cell_bits: 3,
        k: 6,
        p: 26,
        nominal_window: n,
        seed: 1,
    });
    let t = throughput(&mut stable, count, 6);
    row("stable-bloom[10]", "-", t, None, None, stable.memory_bits());

    let mut exact = ExactSlidingDedup::new(n);
    let t = throughput(&mut exact, count, 7);
    row("exact-sliding", "-", t, None, None, exact.memory_bits());

    println!();
    println!("# shape check: GBF >> naive at every Q; GBF degrades as Q grows while");
    println!("# TBF/jumping-TBF stay flat; exact dedup pays ~64x the memory.");
}
