//! Figure 1: false-positive rate vs. window size — the Metwally et al.
//! \[21\] counting-filter scheme vs. GBF (§3.3).
//!
//! Paper setting: `Q = 31`, per-filter `m = 2^20` bits, `N` swept from
//! `2^15` to `2^20`. The paper plots analytic curves; this binary prints
//! them and, below, an *empirical* overlay at 1/16 scale (both detectors
//! actually run on distinct-id streams) so the shape claim is verified by
//! execution, not just by formula.
//!
//! The paper does not state the `k` used for Fig. 1; we use `k = 10`
//! (the Fig. 2 operating point) and document the choice in
//! EXPERIMENTS.md. The *shape* — the \[21\] scheme's rate exploding with
//! `N` while GBF stays orders of magnitude lower — holds for any
//! reasonable `k`.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin fig1 [--paper|--smoke]
//! ```

use cfd_bench::{measure_fp, Scale};
use cfd_bloom::metwally::{MetwallyConfig, MetwallyJumping};
use cfd_core::{Gbf, GbfConfig};
use cfd_windows::DetectorStats;

const Q: usize = 31;
const K: usize = 10;

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();

    // ---- Analytic curves at the paper's exact sizes -------------------
    let m_paper = 1usize << 20;
    println!("# Figure 1 — FP rate vs window size N (analytic, paper sizes)");
    println!("# Q = {Q}, m = 2^20 bits per filter, k = {K}");
    println!(
        "{:>9} {:>16} {:>16} {:>12}",
        "log2(N)", "metwally[21]", "gbf", "ratio"
    );
    for log_n in 15..=20u32 {
        let n = 1usize << log_n;
        let prev = cfd_analysis::counting_scheme::fp_same_m(m_paper, K, n);
        let ours = cfd_analysis::gbf::fp_worst_case(m_paper, K, n, Q);
        let ratio = if ours > 1e-15 {
            format!("{:.1}", prev / ours)
        } else {
            ">1e15".to_owned() // GBF's rate underflows f64 at small N
        };
        println!("{log_n:>9} {prev:>16.6e} {ours:>16.6e} {ratio:>12}");
    }

    // ---- Empirical overlay (both schemes actually executed) -----------
    let shrink = match scale {
        Scale::Paper => 4,  // N up to 2^18, m = 2^18: hours otherwise
        Scale::Quick => 16, // N up to 2^16, m = 2^16
        Scale::Smoke => 64,
    };
    let m_sim = m_paper / shrink;
    println!();
    println!(
        "# empirical overlay at 1/{shrink} of the paper sizes ({})",
        scale.label()
    );
    println!(
        "{:>9} {:>16} {:>16} {:>16}",
        "log2(N)", "metwally-meas", "gbf-meas", "gbf-online-est"
    );
    for log_n in 15..=20u32 {
        let n = (1usize << log_n) / shrink;
        let mut prev = MetwallyJumping::new(MetwallyConfig {
            n,
            q: Q,
            m: m_sim,
            k: K,
            seed: 0xF161 + u64::from(log_n),
        });
        let prev_meas = measure_fp(&mut prev, n, 0x91 + u64::from(log_n));

        let cfg = GbfConfig::builder(n, Q)
            .filter_bits(m_sim)
            .hash_count(K)
            .seed(0xF162 + u64::from(log_n))
            .build()
            .expect("valid configuration");
        let mut gbf = Gbf::new(cfg).expect("valid detector");
        let gbf_meas = measure_fp(&mut gbf, n, 0x92 + u64::from(log_n));

        println!(
            "{:>9} {:>16.6e} {:>16.6e} {:>16.6e}",
            log_n,
            prev_meas.rate.estimate,
            gbf_meas.rate.estimate,
            gbf.estimated_fp()
        );
    }
    println!("# shape check: the [21] scheme's FP rises steeply with N; GBF stays");
    println!("# orders of magnitude lower across the sweep (paper Fig. 1).");
    println!("# gbf-online-est: the telemetry estimator from live lane occupancy");
    println!("# (DetectorStats::estimated_fp); it should rise with N alongside the");
    println!("# measured column.");
}
