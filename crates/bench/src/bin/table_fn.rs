//! Table T2 (Theorems 1.1 & 2.1): zero-false-negative verification.
//!
//! Runs every detector over adversarial duplicate-heavy streams next to
//! an oracle of its own verdict history (paper Definition 1: a false
//! negative is a repeat of a click *the detector itself determined
//! valid* within the window that it nevertheless calls `Distinct`). The
//! streaming detectors must print 0 in the `false-neg` column; the
//! Stable Bloom Filter baseline \[10\] shows why the theorem is
//! non-trivial — its random eviction produces thousands.
//!
//! ```text
//! cargo run --release -p cfd-bench --bin table_fn [--paper|--smoke]
//! ```

use cfd_bloom::stable::{StableBloomFilter, StableConfig};
use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::{BotnetConfig, BotnetStream, DuplicateInjector, UniqueClickStream};
use cfd_windows::{DuplicateDetector, Verdict};
use std::collections::{HashSet, VecDeque};

/// Counts self-consistent false negatives and duplicates over a sliding
/// window of `n` (jumping detectors are checked against their jumping
/// coverage via `sub_len`).
fn run_check<D: DuplicateDetector + ?Sized>(
    d: &mut D,
    keys: &[Vec<u8>],
    n: usize,
    sub_windows: Option<usize>,
) -> (u64, u64) {
    let mut false_negatives = 0u64;
    let mut duplicates = 0u64;
    match sub_windows {
        None => {
            let mut ring: VecDeque<(Vec<u8>, bool)> = VecDeque::with_capacity(n);
            let mut valid: HashSet<Vec<u8>> = HashSet::new();
            for key in keys {
                let dup = d.observe(key) == Verdict::Duplicate;
                duplicates += u64::from(dup);
                if ring.len() == n {
                    let (old, was_valid) = ring.pop_front().expect("full");
                    if was_valid {
                        valid.remove(&old);
                    }
                }
                if !dup && valid.contains(key) {
                    false_negatives += 1;
                }
                let fresh = !dup && !valid.contains(key);
                if fresh {
                    valid.insert(key.clone());
                }
                ring.push_back((key.clone(), fresh));
            }
        }
        Some(q) => {
            let sub_len = n.div_ceil(q);
            let mut subs: VecDeque<HashSet<Vec<u8>>> = VecDeque::new();
            subs.push_back(HashSet::new());
            let mut filled = 0usize;
            for key in keys {
                let dup = d.observe(key) == Verdict::Duplicate;
                duplicates += u64::from(dup);
                let known = subs.iter().any(|s| s.contains(key));
                if !dup && known {
                    false_negatives += 1;
                }
                if !dup && !known {
                    subs.back_mut().expect("non-empty").insert(key.clone());
                }
                filled += 1;
                if filled == sub_len {
                    filled = 0;
                    subs.push_back(HashSet::new());
                    if subs.len() > q {
                        subs.pop_front();
                    }
                }
            }
        }
    }
    (false_negatives, duplicates)
}

fn main() {
    let scale = cfd_bench::args::parse_or_exit(cfd_bench::args::SCALE_FLAGS, &[]).scale();
    let n = scale.n() / 16;
    let q = 8usize;
    let clicks = 40 * n;

    // Two adversarial streams.
    let injected: Vec<Vec<u8>> =
        DuplicateInjector::new(UniqueClickStream::new(5, 8, 64), 0.35, n, 7)
            .take(clicks)
            .map(|c| c.key().to_vec())
            .collect();
    let botnet: Vec<Vec<u8>> = BotnetStream::new(
        BotnetConfig {
            bots: 256,
            attack_fraction: 0.5,
            ..BotnetConfig::default()
        },
        8,
        64,
    )
    .take(clicks)
    .map(|c| c.click.key().to_vec())
    .collect();

    println!(
        "# Table T2 — zero-false-negative verification, {} (N = {n}, {} clicks/stream)",
        scale.label(),
        clicks
    );
    println!(
        "{:<22} {:<10} {:>12} {:>12}",
        "detector", "stream", "duplicates", "false-neg"
    );

    for (stream_name, keys) in [("injected", &injected), ("botnet", &botnet)] {
        // Memory-starved configurations on purpose: FP pressure maximal.
        let mut tbf = Tbf::new(
            TbfConfig::builder(n)
                .entries(n * 2)
                .hash_count(4)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let (fns, dups) = run_check(&mut tbf, keys, n, None);
        println!("{:<22} {:<10} {:>12} {:>12}", "tbf", stream_name, dups, fns);
        assert_eq!(fns, 0, "TBF false negative!");

        let mut gbf = Gbf::new(
            GbfConfig::builder(n, q)
                .filter_bits(n / q * 3)
                .hash_count(3)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let (fns, dups) = run_check(&mut gbf, keys, n, Some(q));
        println!("{:<22} {:<10} {:>12} {:>12}", "gbf", stream_name, dups, fns);
        assert_eq!(fns, 0, "GBF false negative!");

        let mut jtbf = JumpingTbf::new(JumpingTbfConfig::new(n, 64, n * 2, 4, 3).expect("cfg"))
            .expect("detector");
        let (fns, dups) = run_check(&mut jtbf, keys, n, Some(64));
        println!(
            "{:<22} {:<10} {:>12} {:>12}",
            "jumping-tbf", stream_name, dups, fns
        );
        assert_eq!(fns, 0, "jumping-TBF false negative!");

        let mut stable = StableBloomFilter::new(StableConfig {
            m: n * 2,
            cell_bits: 3,
            k: 4,
            p: 26,
            nominal_window: n,
            seed: 1,
        });
        let (fns, dups) = run_check(&mut stable, keys, n, None);
        println!(
            "{:<22} {:<10} {:>12} {:>12}",
            "stable-bloom[10]", stream_name, dups, fns
        );
        println!();
    }
    println!("# shape check: GBF/TBF columns are exactly 0 (Theorems 1.1, 2.1);");
    println!("# the stable Bloom filter misses thousands — the paper's §2.4 point.");
}
