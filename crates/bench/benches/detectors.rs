//! Criterion throughput benches: per-element `observe` cost of every
//! detector (the wall-clock side of Theorems 1 & 2).
//!
//! ```text
//! cargo bench -p cfd-bench --bench detectors
//! ```

use cfd_bench::NaiveJumpingBloom;
use cfd_bloom::metwally::{MetwallyConfig, MetwallyJumping};
use cfd_bloom::stable::{StableBloomFilter, StableConfig};
use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::UniqueIdStream;
use cfd_windows::{DuplicateDetector, ExactSlidingDedup};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 1 << 16;
const BITS_PER_ELEM: usize = 14;
const K: usize = 10;

fn keys(count: usize, seed: u64) -> Vec<[u8; 8]> {
    UniqueIdStream::new(seed)
        .take(count)
        .map(|id| id.to_le_bytes())
        .collect()
}

fn bench_detector<D: DuplicateDetector>(
    c: &mut Criterion,
    group_name: &str,
    id: BenchmarkId,
    mut detector: D,
) {
    let ks = keys(N, 99);
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(1)); // one observe per iteration
    let mut i = 0usize;
    group.bench_function(id, |b| {
        b.iter(|| {
            let key = &ks[i & (N - 1)];
            i = i.wrapping_add(1);
            detector.observe(key)
        })
    });
    group.finish();
}

fn jumping_detectors(c: &mut Criterion) {
    for q in [8usize, 31, 255] {
        let m = (N / q).max(1) * BITS_PER_ELEM;
        bench_detector(
            c,
            "jumping",
            BenchmarkId::new("gbf", q),
            Gbf::new(
                GbfConfig::builder(N, q)
                    .filter_bits(m)
                    .hash_count(K)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector"),
        );
        bench_detector(
            c,
            "jumping",
            BenchmarkId::new("naive-separate", q),
            NaiveJumpingBloom::new(N, q, m, K, 1),
        );
        bench_detector(
            c,
            "jumping",
            BenchmarkId::new("metwally", q),
            MetwallyJumping::new(MetwallyConfig {
                n: N,
                q,
                m,
                k: K,
                seed: 1,
            }),
        );
        bench_detector(
            c,
            "jumping",
            BenchmarkId::new("jumping-tbf", q),
            JumpingTbf::new(
                JumpingTbfConfig::new(N, q, N * BITS_PER_ELEM / 12, K, 1).expect("cfg"),
            )
            .expect("detector"),
        );
    }
}

fn sliding_detectors(c: &mut Criterion) {
    bench_detector(
        c,
        "sliding",
        BenchmarkId::new("tbf", N),
        Tbf::new(
            TbfConfig::builder(N)
                .entries(N * BITS_PER_ELEM / 12)
                .hash_count(K)
                .build()
                .expect("cfg"),
        )
        .expect("detector"),
    );
    bench_detector(
        c,
        "sliding",
        BenchmarkId::new("stable-bloom", N),
        StableBloomFilter::new(StableConfig {
            m: N * 2,
            cell_bits: 3,
            k: 6,
            p: 26,
            nominal_window: N,
            seed: 1,
        }),
    );
    bench_detector(
        c,
        "sliding",
        BenchmarkId::new("exact-sliding", N),
        ExactSlidingDedup::new(N),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(60);
    targets = jumping_detectors, sliding_detectors
}
criterion_main!(benches);
