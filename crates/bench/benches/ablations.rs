//! Ablation benches for the design choices called out in DESIGN.md §6.
//!
//! * `layout/*` — GBF's interleaved bit matrix vs. the naive separate
//!   filters, at growing `Q` (the §3.1 motivation for group Bloom
//!   filters).
//! * `tbf_c/*` — the TBF cleaning/width trade-off: sweep the range
//!   extension `C` (§4.1: "a smaller C means less space requirement and
//!   larger operation time").
//! * `hashing/*` — Kirsch–Mitzenmacher double hashing vs. `k`
//!   independently seeded hashes.
//!
//! ```text
//! cargo bench -p cfd-bench --bench ablations
//! ```

use cfd_bench::NaiveJumpingBloom;
use cfd_core::{Gbf, GbfConfig, GbfLayout, Tbf, TbfConfig};
use cfd_hash::{DoubleHashFamily, HashFamily, IndependentHashFamily, SipHashFamily};
use cfd_stream::UniqueIdStream;
use cfd_windows::DuplicateDetector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 1 << 16;
const K: usize = 10;

fn keys(count: usize, seed: u64) -> Vec<[u8; 8]> {
    UniqueIdStream::new(seed)
        .take(count)
        .map(|id| id.to_le_bytes())
        .collect()
}

fn layout_ablation(c: &mut Criterion) {
    let ks = keys(N, 7);
    let mut group = c.benchmark_group("layout");
    group.throughput(Throughput::Elements(1)); // one observe per iteration
    for q in [8usize, 31, 63, 255] {
        let m = (N / q).max(1) * 14;
        let mut gbf = Gbf::new(
            GbfConfig::builder(N, q)
                .filter_bits(m)
                .hash_count(K)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("interleaved", q), |b| {
            b.iter(|| {
                let key = &ks[i & (N - 1)];
                i = i.wrapping_add(1);
                gbf.observe(key)
            })
        });
        let mut naive = NaiveJumpingBloom::new(N, q, m, K, 1);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("separate", q), |b| {
            b.iter(|| {
                let key = &ks[i & (N - 1)];
                i = i.wrapping_add(1);
                naive.observe(key)
            })
        });
        if q < 32 {
            let mut tight = Gbf::new(
                GbfConfig::builder(N, q)
                    .filter_bits(m)
                    .hash_count(K)
                    .layout(GbfLayout::Tight)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector");
            let mut i = 0usize;
            group.bench_function(BenchmarkId::new("tight", q), |b| {
                b.iter(|| {
                    let key = &ks[i & (N - 1)];
                    i = i.wrapping_add(1);
                    tight.observe(key)
                })
            });
        }
    }
    group.finish();
}

fn tbf_c_sweep(c: &mut Criterion) {
    let ks = keys(N, 8);
    let mut group = c.benchmark_group("tbf_c");
    group.throughput(Throughput::Elements(1)); // one observe per iteration
    for (label, c_ext) in [
        ("N/16", N / 16),
        ("N/4", N / 4),
        ("N-1", N - 1),
        ("4N", 4 * N),
    ] {
        let mut tbf = Tbf::new(
            TbfConfig::builder(N)
                .entries(N * 14 / 12)
                .hash_count(K)
                .range_extension(c_ext)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("c", label), |b| {
            b.iter(|| {
                let key = &ks[i & (N - 1)];
                i = i.wrapping_add(1);
                tbf.observe(key)
            })
        });
    }
    group.finish();
}

fn hash_family_ablation(c: &mut Criterion) {
    let ks = keys(N, 9);
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(1)); // one observe per iteration
    let double = DoubleHashFamily::new(1);
    let independent = IndependentHashFamily::new(1);
    let mut buf = [0usize; K];
    let mut i = 0usize;
    group.bench_function("double-hashing", |b| {
        b.iter(|| {
            let key = &ks[i & (N - 1)];
            i = i.wrapping_add(1);
            double.fill(key, 1 << 20, &mut buf);
            buf[K - 1]
        })
    });
    let mut i = 0usize;
    group.bench_function("k-independent", |b| {
        b.iter(|| {
            let key = &ks[i & (N - 1)];
            i = i.wrapping_add(1);
            independent.fill(key, 1 << 20, &mut buf);
            buf[K - 1]
        })
    });
    let keyed = SipHashFamily::new(0xFEED, 0xBEEF);
    let mut i = 0usize;
    group.bench_function("siphash-keyed", |b| {
        b.iter(|| {
            let key = &ks[i & (N - 1)];
            i = i.wrapping_add(1);
            keyed.fill(key, 1 << 20, &mut buf);
            buf[K - 1]
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(60);
    targets = layout_ablation, tbf_c_sweep, hash_family_ablation
}
criterion_main!(benches);
