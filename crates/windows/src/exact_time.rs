//! Exact duplicate detectors over *time-based* windows.
//!
//! The timed counterparts of [`crate::exact`]: ground-truth oracles for
//! the `TimeTbf` / `TimeGbf` detectors of `cfd-core`. Same Definition-1
//! semantics — a click is a duplicate iff an identical click was
//! determined valid within the current window — with expiry driven by
//! time units instead of element counts.

use crate::detector::{TimedDuplicateDetector, Verdict};
use crate::spec::WindowSpec;
use crate::time::UnitClock;
use std::collections::{HashMap, VecDeque};

/// Exact duplicate detection over a time-based sliding window: the last
/// `window_units` time units, the current unit included.
///
/// ```rust
/// use cfd_windows::exact_time::ExactTimeSlidingDedup;
/// use cfd_windows::{TimedDuplicateDetector, Verdict};
/// let mut d = ExactTimeSlidingDedup::new(10, 100); // 10 units of 100 ticks
/// assert_eq!(d.observe_at(b"x", 0), Verdict::Distinct);
/// assert_eq!(d.observe_at(b"x", 950), Verdict::Duplicate);  // unit 9
/// assert_eq!(d.observe_at(b"x", 1_000), Verdict::Distinct); // unit 10
/// ```
#[derive(Debug, Clone)]
pub struct ExactTimeSlidingDedup {
    window_units: u64,
    units: UnitClock,
    /// id -> unit of its current valid click.
    valid: HashMap<Vec<u8>, u64>,
    /// Valid clicks in arrival order for O(1) expiry.
    order: VecDeque<(u64, Vec<u8>)>,
}

impl ExactTimeSlidingDedup {
    /// Creates the oracle.
    ///
    /// # Panics
    ///
    /// Panics if `window_units == 0` or `unit_ticks == 0`.
    #[must_use]
    pub fn new(window_units: u64, unit_ticks: u64) -> Self {
        assert!(window_units > 0, "window must be positive");
        Self {
            window_units,
            units: UnitClock::new(unit_ticks),
            valid: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Number of valid clicks currently active.
    #[must_use]
    pub fn active_valid(&self) -> usize {
        self.valid.len()
    }

    fn expire_before(&mut self, oldest_active: u64) {
        while let Some(&(u, _)) = self.order.front() {
            if u >= oldest_active {
                break;
            }
            let (u0, id0) = self.order.pop_front().expect("front exists");
            if self.valid.get(&id0) == Some(&u0) {
                self.valid.remove(&id0);
            }
        }
    }
}

impl TimedDuplicateDetector for ExactTimeSlidingDedup {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let unit = self.units.unit_of(tick);
        let oldest_active = unit.saturating_sub(self.window_units - 1);
        self.expire_before(oldest_active);
        if let Some(&u) = self.valid.get(id) {
            if u >= oldest_active {
                return Verdict::Duplicate;
            }
        }
        self.valid.insert(id.to_vec(), unit);
        self.order.push_back((unit, id.to_vec()));
        Verdict::Distinct
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeSliding {
            ticks: self.window_units * self.units.unit_ticks(),
        }
    }

    fn memory_bits(&self) -> usize {
        self.valid.keys().map(|k| k.len() * 8 + 64).sum::<usize>()
            + self
                .order
                .iter()
                .map(|(_, k)| k.len() * 8 + 64)
                .sum::<usize>()
    }

    fn reset(&mut self) {
        self.valid.clear();
        self.order.clear();
    }

    fn name(&self) -> &'static str {
        "exact-time-sliding"
    }
}

/// Exact duplicate detection over a time-based jumping window: `q`
/// sub-windows of `sub_units` time units each (current partial + `q − 1`
/// previous).
#[derive(Debug, Clone)]
pub struct ExactTimeJumpingDedup {
    q: usize,
    sub_units: u64,
    units: UnitClock,
    /// (sub-window index, valid ids inserted during it), newest last.
    subs: VecDeque<(u64, std::collections::HashSet<Vec<u8>>)>,
}

impl ExactTimeJumpingDedup {
    /// Creates the oracle.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(q: usize, sub_units: u64, unit_ticks: u64) -> Self {
        assert!(q > 0 && sub_units > 0, "window must be positive");
        Self {
            q,
            sub_units,
            units: UnitClock::new(unit_ticks),
            subs: VecDeque::new(),
        }
    }

    fn sub_of(&self, tick: u64) -> u64 {
        self.units.unit_of(tick) / self.sub_units
    }
}

impl TimedDuplicateDetector for ExactTimeJumpingDedup {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let sub = self.sub_of(tick);
        // Drop sub-windows outside [sub - q + 1, sub].
        let oldest = sub.saturating_sub(self.q as u64 - 1);
        while let Some(&(s, _)) = self.subs.front() {
            if s >= oldest {
                break;
            }
            self.subs.pop_front();
        }
        if self.subs.iter().any(|(_, set)| set.contains(id)) {
            return Verdict::Duplicate;
        }
        match self.subs.back_mut() {
            Some((s, set)) if *s == sub => {
                set.insert(id.to_vec());
            }
            _ => {
                let mut set = std::collections::HashSet::new();
                set.insert(id.to_vec());
                self.subs.push_back((sub, set));
            }
        }
        Verdict::Distinct
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeJumping {
            ticks: self.q as u64 * self.sub_units * self.units.unit_ticks(),
            q: self.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.subs
            .iter()
            .flat_map(|(_, s)| s.iter())
            .map(|id| id.len() * 8)
            .sum()
    }

    fn reset(&mut self) {
        self.subs.clear();
    }

    fn name(&self) -> &'static str {
        "exact-time-jumping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_same_unit_repeat_is_duplicate() {
        let mut d = ExactTimeSlidingDedup::new(5, 10);
        assert_eq!(d.observe_at(b"a", 3), Verdict::Distinct);
        assert_eq!(d.observe_at(b"a", 7), Verdict::Duplicate);
        assert_eq!(d.active_valid(), 1);
    }

    #[test]
    fn sliding_expires_by_units_not_arrivals() {
        let mut d = ExactTimeSlidingDedup::new(3, 10);
        d.observe_at(b"a", 0); // unit 0
                               // Many arrivals, but little time passes: still duplicate.
        for i in 0..100 {
            assert_eq!(d.observe_at(b"a", 10 + i % 5), Verdict::Duplicate);
        }
        // Unit 3: window = units 1..=3; a@0 expired.
        assert_eq!(d.observe_at(b"a", 30), Verdict::Distinct);
    }

    #[test]
    fn sliding_duplicates_do_not_refresh() {
        let mut d = ExactTimeSlidingDedup::new(3, 1);
        assert_eq!(d.observe_at(b"a", 0), Verdict::Distinct); // unit 0
        assert_eq!(d.observe_at(b"a", 2), Verdict::Duplicate); // unit 2
                                                               // Unit 3: the valid a@0 expired; the duplicate at unit 2 did not
                                                               // extend it.
        assert_eq!(d.observe_at(b"a", 3), Verdict::Distinct);
    }

    #[test]
    fn jumping_expires_whole_subwindows() {
        // q = 2 sub-windows of 5 units.
        let mut d = ExactTimeJumpingDedup::new(2, 5, 1);
        assert_eq!(d.observe_at(b"a", 0), Verdict::Distinct); // sub 0
        assert_eq!(d.observe_at(b"a", 9), Verdict::Duplicate); // sub 1
                                                               // Sub 2: window = subs 1..=2; a (sub 0) gone.
        assert_eq!(d.observe_at(b"a", 10), Verdict::Distinct);
    }

    #[test]
    fn jumping_quiet_gap_drops_everything() {
        let mut d = ExactTimeJumpingDedup::new(4, 10, 1);
        d.observe_at(b"a", 0);
        assert_eq!(d.observe_at(b"a", 100_000), Verdict::Distinct);
    }

    #[test]
    fn reset_restores_empty() {
        let mut d = ExactTimeSlidingDedup::new(5, 1);
        d.observe_at(b"a", 0);
        d.reset();
        assert_eq!(d.observe_at(b"a", 0), Verdict::Distinct);
        let mut j = ExactTimeJumpingDedup::new(2, 5, 1);
        j.observe_at(b"a", 0);
        j.reset();
        assert_eq!(j.observe_at(b"a", 0), Verdict::Distinct);
    }

    #[test]
    fn window_specs_report_ticks() {
        let d = ExactTimeSlidingDedup::new(5, 100);
        assert_eq!(d.window(), WindowSpec::TimeSliding { ticks: 500 });
        let j = ExactTimeJumpingDedup::new(2, 5, 100);
        assert_eq!(j.window(), WindowSpec::TimeJumping { ticks: 1_000, q: 2 });
    }
}
