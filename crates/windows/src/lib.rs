//! Decaying-window models and the duplicate-detection contract.
//!
//! The paper (§1.2) classifies decaying windows into *landmark*, *jumping*
//! and *sliding* models, each in a count-based and a time-based flavour.
//! This crate provides:
//!
//! * [`spec::WindowSpec`] — the window taxonomy as data.
//! * [`detector::DuplicateDetector`] — the one-pass contract every
//!   detector in the suite implements (GBF, TBF, the baselines, and the
//!   exact oracles).
//! * [`wrap::WrapCounter`] — modular timestamp arithmetic with the
//!   `N + C` wraparound range of §4.1.
//! * [`clock::JumpingClock`] — sub-window rotation bookkeeping for
//!   count-based jumping windows.
//! * [`time::UnitClock`] — time-unit bookkeeping for time-based windows.
//! * [`exact`] — exact (hash-table) duplicate detectors over every window
//!   model: the ground-truth oracles for the zero-false-negative property
//!   tests and the memory-hungry baseline in the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod detector;
pub mod exact;
pub mod exact_time;
pub mod spec;
pub mod time;
pub mod wrap;

pub use cfd_telemetry::{DetectorHealth, DetectorStats};
pub use clock::JumpingClock;
pub use detector::{
    DuplicateDetector, ObservableDetector, StreamSummary, TimedDuplicateDetector,
    TimedObservableDetector, Verdict,
};
pub use exact::{ExactJumpingDedup, ExactLandmarkDedup, ExactSlidingDedup};
pub use exact_time::{ExactTimeJumpingDedup, ExactTimeSlidingDedup};
pub use spec::WindowSpec;
pub use wrap::WrapCounter;
