//! Wraparound timestamp arithmetic (paper §4.1).
//!
//! The timing Bloom filter bounds its per-entry bit width by representing
//! stream positions with a *wraparound counter* of range `N + C`: the
//! `(N + C)`-th element after position `p` reuses the value `p`. All the
//! age logic needed to classify an entry as *active*, *expired*, or an
//! *alias* of a reused value lives here, in one well-tested place.

use serde::{Deserialize, Serialize};

/// A modular position counter with range `range = N + C`.
///
/// `now()` is the value that will be assigned to the *next* element; the
/// most recent element holds `now − 1 (mod range)`.
///
/// ```rust
/// use cfd_windows::WrapCounter;
/// let mut c = WrapCounter::new(8); // range 8
/// let t0 = c.advance();            // first element gets 0
/// assert_eq!(t0, 0);
/// assert_eq!(c.now(), 1);
/// assert_eq!(c.age_of(t0), 1);     // one element ago
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrapCounter {
    now: u64,
    range: u64,
}

impl WrapCounter {
    /// Creates a counter over `0..range`.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    #[must_use]
    pub fn new(range: u64) -> Self {
        assert!(range > 0, "wraparound range must be positive");
        Self { now: 0, range }
    }

    /// Rebuilds a counter at a specific position (checkpoint restore).
    /// Returns `None` if `now` is outside the range.
    #[must_use]
    pub fn from_parts(range: u64, now: u64) -> Option<Self> {
        if range == 0 || now >= range {
            return None;
        }
        Some(Self { now, range })
    }

    /// The wraparound range (`N + C`).
    #[inline]
    #[must_use]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The timestamp the next element will receive.
    #[inline]
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Assigns the current timestamp and advances, returning the assigned
    /// value.
    #[inline]
    pub fn advance(&mut self) -> u64 {
        let t = self.now;
        self.now += 1;
        if self.now == self.range {
            self.now = 0;
        }
        t
    }

    /// Age of timestamp `t` relative to `now`, in `[0, range)`.
    ///
    /// Age 1 = the most recent element; age 0 = a value that aliases the
    /// timestamp about to be assigned (i.e. a full wraparound ago, or an
    /// entry written "in the future" — impossible for well-formed input).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t >= range`.
    #[inline]
    #[must_use]
    pub fn age_of(&self, t: u64) -> u64 {
        debug_assert!(t < self.range, "timestamp {t} outside range {}", self.range);
        if self.now >= t {
            self.now - t
        } else {
            self.range - t + self.now
        }
    }

    /// `true` if timestamp `t` is within the last `window` elements
    /// (age in `[1, window]`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t >= range` or `window >= range`.
    #[inline]
    #[must_use]
    pub fn is_active(&self, t: u64, window: u64) -> bool {
        debug_assert!(window < self.range, "window must be below the range");
        let age = self.age_of(t);
        age >= 1 && age <= window
    }

    /// `true` if timestamp `t` must be evicted before its value can be
    /// reused: age 0 (alias) or age beyond the window.
    #[inline]
    #[must_use]
    pub fn is_expired(&self, t: u64, window: u64) -> bool {
        !self.is_active(t, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn advance_wraps_at_range() {
        let mut c = WrapCounter::new(3);
        assert_eq!(c.advance(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.advance(), 0);
        assert_eq!(c.now(), 1);
    }

    #[test]
    fn age_counts_elements_since_assignment() {
        let mut c = WrapCounter::new(10);
        let t = c.advance(); // t = 0
        assert_eq!(c.age_of(t), 1);
        for _ in 0..8 {
            c.advance();
        }
        assert_eq!(c.age_of(t), 9);
        c.advance(); // now wraps to 0
        assert_eq!(c.age_of(t), 0); // alias point reached
    }

    #[test]
    fn active_band_is_one_to_window() {
        // range = N + C with N = 4, C = 3.
        let mut c = WrapCounter::new(7);
        let t = c.advance();
        for expect_active in [true, true, true, true, false, false] {
            assert_eq!(c.is_active(t, 4), expect_active, "now={}", c.now());
            c.advance();
        }
        // Full wraparound: t aliases `now` again -> age 0 -> expired.
        assert_eq!(c.now(), 0);
        assert_eq!(c.age_of(t), 0);
        assert!(c.is_expired(t, 4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_panics() {
        let _ = WrapCounter::new(0);
    }

    proptest! {
        #[test]
        fn age_matches_unbounded_model(range in 2u64..500, steps in 0usize..1000, probe in 0usize..1000) {
            // Drive the wrap counter alongside an unbounded absolute clock.
            let mut c = WrapCounter::new(range);
            let mut stamps = Vec::new();
            for _abs in 0..steps {
                stamps.push(c.advance());
            }
            if probe < stamps.len() {
                let abs_age = steps - probe; // elements since assignment
                if (abs_age as u64) < range {
                    prop_assert_eq!(c.age_of(stamps[probe]), abs_age as u64);
                } else {
                    // Beyond the range the age is only meaningful mod range.
                    prop_assert_eq!(c.age_of(stamps[probe]), (abs_age as u64) % range);
                }
            }
        }

        #[test]
        fn activity_matches_model(range in 3u64..200, window_off in 1u64..100, steps in 1usize..400) {
            let window = window_off.min(range - 1);
            let mut c = WrapCounter::new(range);
            let t = c.advance();
            for abs_age in 1..=steps as u64 {
                let model_active = abs_age <= window
                    || (abs_age % range >= 1 && abs_age % range <= window && abs_age >= range);
                // For ages below the range the model is exact:
                if abs_age < range {
                    prop_assert_eq!(c.is_active(t, window), abs_age <= window);
                } else {
                    // After aliasing the counter cannot distinguish; just
                    // confirm consistency with modular age.
                    prop_assert_eq!(c.is_active(t, window), model_active);
                }
                c.advance();
            }
        }
    }
}
