//! The decaying-window taxonomy of paper §1.2, as data.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A decaying-window model over a click stream.
///
/// Count-based windows are defined in *elements*; time-based windows in
/// abstract *ticks* (the paper's "time units"), mapped to wall time by the
/// caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Landmark window: starts fresh every `n` elements; all elements
    /// expire simultaneously at the boundary.
    Landmark {
        /// Window length in elements.
        n: usize,
    },
    /// Count-based jumping window: the last `n` elements, approximated by
    /// `q` sub-windows that expire one sub-window at a time.
    Jumping {
        /// Window length in elements.
        n: usize,
        /// Number of sub-windows (`Q` in the paper).
        q: usize,
    },
    /// Count-based sliding window: exactly the last `n` elements,
    /// expiring one element at a time.
    Sliding {
        /// Window length in elements.
        n: usize,
    },
    /// Time-based jumping window: the last `ticks` time units, divided
    /// into `q` sub-windows of equal duration.
    TimeJumping {
        /// Window span in ticks.
        ticks: u64,
        /// Number of sub-windows.
        q: usize,
    },
    /// Time-based sliding window: all elements that arrived in the last
    /// `ticks` time units.
    TimeSliding {
        /// Window span in ticks.
        ticks: u64,
    },
}

impl WindowSpec {
    /// Length of a count-based window in elements, if count-based.
    #[must_use]
    pub fn count_len(&self) -> Option<usize> {
        match *self {
            WindowSpec::Landmark { n }
            | WindowSpec::Jumping { n, .. }
            | WindowSpec::Sliding { n } => Some(n),
            _ => None,
        }
    }

    /// Span of a time-based window in ticks, if time-based.
    #[must_use]
    pub fn tick_span(&self) -> Option<u64> {
        match *self {
            WindowSpec::TimeJumping { ticks, .. } | WindowSpec::TimeSliding { ticks } => {
                Some(ticks)
            }
            _ => None,
        }
    }

    /// Number of sub-windows, if the model is jumping.
    #[must_use]
    pub fn sub_windows(&self) -> Option<usize> {
        match *self {
            WindowSpec::Jumping { q, .. } | WindowSpec::TimeJumping { q, .. } => Some(q),
            _ => None,
        }
    }

    /// Elements per sub-window (`⌈n/q⌉`) for a count-based jumping window.
    #[must_use]
    pub fn sub_window_len(&self) -> Option<usize> {
        match *self {
            WindowSpec::Jumping { n, q } => Some(n.div_ceil(q)),
            _ => None,
        }
    }

    /// Validates the structural invariants of the spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a dimension is zero or a
    /// jumping window has more sub-windows than elements.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            WindowSpec::Landmark { n } | WindowSpec::Sliding { n } => {
                if n == 0 {
                    return Err("window length n must be positive".into());
                }
            }
            WindowSpec::Jumping { n, q } => {
                if n == 0 {
                    return Err("window length n must be positive".into());
                }
                if q == 0 {
                    return Err("sub-window count q must be positive".into());
                }
                if q > n {
                    return Err(format!("q = {q} sub-windows exceed n = {n} elements"));
                }
            }
            WindowSpec::TimeJumping { ticks, q } => {
                if ticks == 0 {
                    return Err("window span must be positive".into());
                }
                if q == 0 {
                    return Err("sub-window count q must be positive".into());
                }
                if q as u64 > ticks {
                    return Err(format!("q = {q} sub-windows exceed {ticks} ticks"));
                }
            }
            WindowSpec::TimeSliding { ticks } => {
                if ticks == 0 {
                    return Err("window span must be positive".into());
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WindowSpec::Landmark { n } => write!(f, "landmark(n={n})"),
            WindowSpec::Jumping { n, q } => write!(f, "jumping(n={n}, q={q})"),
            WindowSpec::Sliding { n } => write!(f, "sliding(n={n})"),
            WindowSpec::TimeJumping { ticks, q } => {
                write!(f, "time-jumping(ticks={ticks}, q={q})")
            }
            WindowSpec::TimeSliding { ticks } => write!(f, "time-sliding(ticks={ticks})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let j = WindowSpec::Jumping { n: 100, q: 4 };
        assert_eq!(j.count_len(), Some(100));
        assert_eq!(j.sub_windows(), Some(4));
        assert_eq!(j.sub_window_len(), Some(25));
        assert_eq!(j.tick_span(), None);

        let t = WindowSpec::TimeSliding { ticks: 60 };
        assert_eq!(t.tick_span(), Some(60));
        assert_eq!(t.count_len(), None);
    }

    #[test]
    fn sub_window_len_rounds_up() {
        let j = WindowSpec::Jumping { n: 10, q: 3 };
        assert_eq!(j.sub_window_len(), Some(4));
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(WindowSpec::Sliding { n: 0 }.validate().is_err());
        assert!(WindowSpec::Jumping { n: 10, q: 0 }.validate().is_err());
        assert!(WindowSpec::Jumping { n: 3, q: 4 }.validate().is_err());
        assert!(WindowSpec::TimeJumping { ticks: 2, q: 3 }
            .validate()
            .is_err());
        assert!(WindowSpec::Jumping { n: 10, q: 10 }.validate().is_ok());
        assert!(WindowSpec::TimeSliding { ticks: 1 }.validate().is_ok());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            WindowSpec::Jumping { n: 8, q: 2 }.to_string(),
            "jumping(n=8, q=2)"
        );
        assert_eq!(WindowSpec::Sliding { n: 5 }.to_string(), "sliding(n=5)");
    }

    #[test]
    fn serde_roundtrip() {
        let spec = WindowSpec::TimeJumping { ticks: 3600, q: 60 };
        let json = serde_json_like(&spec);
        assert!(json.contains("3600"));
    }

    // serde_json is not a sanctioned dependency; exercise Serialize via the
    // compact debug of the serde data model instead.
    fn serde_json_like(spec: &WindowSpec) -> String {
        format!("{spec:?}")
    }
}
