//! Time-based window bookkeeping (paper §3.1 and §4.1 extensions).
//!
//! Time is modeled as a monotone `u64` tick supplied by the caller with
//! every observation; detectors never read a wall clock. A *time unit* is
//! the granularity at which time-based windows expire data.

use serde::{Deserialize, Serialize};

/// A point in stream time, in caller-defined ticks (e.g. milliseconds).
pub type Tick = u64;

/// Maps absolute ticks to time-*unit* indices of a fixed width.
///
/// ```rust
/// use cfd_windows::time::UnitClock;
/// let clock = UnitClock::new(1000); // 1 unit = 1000 ticks
/// assert_eq!(clock.unit_of(0), 0);
/// assert_eq!(clock.unit_of(999), 0);
/// assert_eq!(clock.unit_of(1000), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitClock {
    unit_ticks: u64,
}

impl UnitClock {
    /// Creates a clock whose unit spans `unit_ticks` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `unit_ticks == 0`.
    #[must_use]
    pub fn new(unit_ticks: u64) -> Self {
        assert!(unit_ticks > 0, "unit width must be positive");
        Self { unit_ticks }
    }

    /// Ticks per unit.
    #[inline]
    #[must_use]
    pub fn unit_ticks(&self) -> u64 {
        self.unit_ticks
    }

    /// The unit index containing `tick`.
    #[inline]
    #[must_use]
    pub fn unit_of(&self, tick: Tick) -> u64 {
        tick / self.unit_ticks
    }
}

/// Rotation bookkeeping for a *time-based* jumping window: `q`
/// sub-windows, each spanning `sub_ticks` ticks.
///
/// Unlike the count-based [`crate::JumpingClock`], several sub-windows may
/// expire at once if the stream goes quiet; `advance_to` reports how many
/// boundaries were crossed so the detector can clean the corresponding
/// slots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeJumpingClock {
    q: usize,
    sub_ticks: u64,
    current_sub: u64,
    started: bool,
}

impl TimeJumpingClock {
    /// Creates a clock for `q` sub-windows of `sub_ticks` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `sub_ticks == 0`.
    #[must_use]
    pub fn new(q: usize, sub_ticks: u64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(sub_ticks > 0, "sub-window span must be positive");
        Self {
            q,
            sub_ticks,
            current_sub: 0,
            started: false,
        }
    }

    /// Number of sub-windows.
    #[inline]
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Sub-window span in ticks.
    #[inline]
    #[must_use]
    pub fn sub_ticks(&self) -> u64 {
        self.sub_ticks
    }

    /// Index of the sub-window containing the last observed tick.
    #[inline]
    #[must_use]
    pub fn current_sub(&self) -> u64 {
        self.current_sub
    }

    /// Advances to `tick`, returning how many sub-window boundaries were
    /// crossed since the previous observation (0 if within the same
    /// sub-window).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending pair if `tick` moves backwards
    /// across a sub-window boundary (out-of-order beyond sub-window
    /// granularity cannot be processed one-pass).
    pub fn advance_to(&mut self, tick: Tick) -> Result<u64, TimeWentBackwards> {
        let sub = tick / self.sub_ticks;
        if !self.started {
            self.started = true;
            self.current_sub = sub;
            return Ok(0);
        }
        if sub < self.current_sub {
            return Err(TimeWentBackwards {
                last_sub: self.current_sub,
                new_sub: sub,
            });
        }
        let crossed = sub - self.current_sub;
        self.current_sub = sub;
        Ok(crossed)
    }
}

/// Error: an observation's tick belongs to an earlier sub-window than one
/// already processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWentBackwards {
    /// Sub-window index of the previous observation.
    pub last_sub: u64,
    /// Sub-window index of the offending observation.
    pub new_sub: u64,
}

impl std::fmt::Display for TimeWentBackwards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "observation in sub-window {} arrived after sub-window {}",
            self.new_sub, self.last_sub
        )
    }
}

impl std::error::Error for TimeWentBackwards {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_clock_maps_boundaries() {
        let c = UnitClock::new(60);
        assert_eq!(c.unit_of(59), 0);
        assert_eq!(c.unit_of(60), 1);
        assert_eq!(c.unit_of(61), 1);
        assert_eq!(c.unit_of(600), 10);
    }

    #[test]
    fn jumping_clock_counts_crossings() {
        let mut c = TimeJumpingClock::new(4, 10);
        assert_eq!(c.advance_to(3), Ok(0)); // first observation anchors
        assert_eq!(c.advance_to(9), Ok(0));
        assert_eq!(c.advance_to(10), Ok(1));
        assert_eq!(c.advance_to(45), Ok(3)); // quiet period crosses 3
        assert_eq!(c.current_sub(), 4);
    }

    #[test]
    fn backwards_time_is_rejected_across_boundaries_only() {
        let mut c = TimeJumpingClock::new(2, 10);
        c.advance_to(25).unwrap();
        // Same sub-window, slightly earlier tick: fine (one-pass tolerant).
        assert_eq!(c.advance_to(21), Ok(0));
        // Earlier sub-window: rejected.
        let err = c.advance_to(9).unwrap_err();
        assert_eq!(err.last_sub, 2);
        assert_eq!(err.new_sub, 0);
        assert!(err.to_string().contains("sub-window"));
    }

    #[test]
    fn first_observation_can_start_anywhere() {
        let mut c = TimeJumpingClock::new(2, 10);
        assert_eq!(c.advance_to(1_000_000), Ok(0));
        assert_eq!(c.current_sub(), 100_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unit_panics() {
        let _ = UnitClock::new(0);
    }
}
