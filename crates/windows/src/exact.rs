//! Exact duplicate detectors over every window model.
//!
//! These keep every active click identifier in a hash table, so they are
//! memory-hungry (`O(N)` identifiers — precisely what the paper's
//! algorithms avoid), but they make *no* errors in either direction.
//! They serve two roles:
//!
//! 1. **Ground truth** for the zero-false-negative property tests: every
//!    click an oracle calls `Duplicate` must also be called `Duplicate`
//!    by GBF/TBF over the same window model.
//! 2. **Baseline** in the benchmark tables, to quantify the space the
//!    streaming algorithms save.
//!
//! All three oracles implement the paper's Definition 1: a click is a
//! duplicate iff an identical click was *determined valid* within the
//! current window. Duplicates themselves do not refresh validity.

use crate::clock::JumpingClock;
use crate::detector::{DuplicateDetector, Verdict};
use crate::spec::WindowSpec;
use cfd_telemetry::DetectorStats;
use std::collections::{HashSet, VecDeque};

/// Observation tallies shared by the exact oracles, so they can answer
/// the [`DetectorStats`] health contract alongside the approximate
/// detectors (their false-positive estimate is identically zero).
#[derive(Debug, Clone, Copy, Default)]
struct ExactTally {
    observed: u64,
    duplicates: u64,
}

impl ExactTally {
    #[inline]
    fn record(&mut self, v: Verdict) {
        self.observed += 1;
        if v == Verdict::Duplicate {
            self.duplicates += 1;
        }
    }
}

/// Exact duplicate detection over a count-based *sliding* window.
///
/// ```rust
/// use cfd_windows::{DuplicateDetector, ExactSlidingDedup, Verdict};
/// let mut d = ExactSlidingDedup::new(3);
/// assert_eq!(d.observe(b"a"), Verdict::Distinct);
/// assert_eq!(d.observe(b"a"), Verdict::Duplicate);
/// assert_eq!(d.observe(b"b"), Verdict::Distinct);
/// // The valid "a" (position 0) is now 3 elements old and slides out:
/// assert_eq!(d.observe(b"a"), Verdict::Distinct);
/// ```
#[derive(Debug, Clone)]
pub struct ExactSlidingDedup {
    n: usize,
    /// Arrival ring: `(id, was_valid)` for the last `n` arrivals.
    ring: VecDeque<(Vec<u8>, bool)>,
    /// Ids of valid clicks currently inside the window (at most one valid
    /// instance of an id can be active at a time).
    valid: HashSet<Vec<u8>>,
    tally: ExactTally,
}

impl ExactSlidingDedup {
    /// Creates an oracle over the last `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window length must be positive");
        Self {
            n,
            ring: VecDeque::with_capacity(n),
            valid: HashSet::new(),
            tally: ExactTally::default(),
        }
    }

    /// Number of valid clicks currently active.
    #[must_use]
    pub fn active_valid(&self) -> usize {
        self.valid.len()
    }
}

impl DuplicateDetector for ExactSlidingDedup {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        if self.ring.len() == self.n {
            let (old, was_valid) = self.ring.pop_front().expect("ring non-empty");
            if was_valid {
                self.valid.remove(&old);
            }
        }
        let verdict = if self.valid.contains(id) {
            self.ring.push_back((id.to_vec(), false));
            Verdict::Duplicate
        } else {
            self.valid.insert(id.to_vec());
            self.ring.push_back((id.to_vec(), true));
            Verdict::Distinct
        };
        self.tally.record(verdict);
        verdict
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding { n: self.n }
    }

    fn memory_bits(&self) -> usize {
        // Payload accounting only: ring entries + valid-set keys.
        let ring: usize = self.ring.iter().map(|(id, _)| id.len() * 8 + 8).sum();
        let set: usize = self.valid.iter().map(|id| id.len() * 8).sum();
        ring + set
    }

    fn reset(&mut self) {
        self.ring.clear();
        self.valid.clear();
        self.tally = ExactTally::default();
    }

    fn name(&self) -> &'static str {
        "exact-sliding"
    }
}

impl DetectorStats for ExactSlidingDedup {
    fn stats_name(&self) -> &'static str {
        "exact-sliding"
    }

    /// One entry: the fraction of the `n`-slot window holding valid
    /// clicks (exact analogue of a Bloom fill ratio).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.valid.len() as f64 / self.n as f64]
    }

    fn observed_elements(&self) -> u64 {
        self.tally.observed
    }

    fn observed_duplicates(&self) -> u64 {
        self.tally.duplicates
    }

    /// Exact oracles make no false positives.
    fn estimated_fp(&self) -> f64 {
        0.0
    }
}

/// Exact duplicate detection over a count-based *jumping* window
/// (current partial sub-window plus the `q − 1` most recent full ones).
#[derive(Debug, Clone)]
pub struct ExactJumpingDedup {
    n: usize,
    clock: JumpingClock,
    /// Newest sub-window last; at most `q` sets.
    subs: VecDeque<HashSet<Vec<u8>>>,
    tally: ExactTally,
}

impl ExactJumpingDedup {
    /// Creates an oracle over a jumping window of `n` elements in `q`
    /// sub-windows (`⌈n/q⌉` elements each).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `q == 0`, or `q > n`.
    #[must_use]
    pub fn new(n: usize, q: usize) -> Self {
        assert!(
            n > 0 && q > 0 && q <= n,
            "invalid jumping window (n={n}, q={q})"
        );
        let mut subs = VecDeque::with_capacity(q);
        subs.push_back(HashSet::new());
        Self {
            n,
            clock: JumpingClock::new(q, n.div_ceil(q)),
            subs,
            tally: ExactTally::default(),
        }
    }

    /// Number of valid clicks across all active sub-windows.
    #[must_use]
    pub fn active_valid(&self) -> usize {
        self.subs.iter().map(HashSet::len).sum()
    }
}

impl DuplicateDetector for ExactJumpingDedup {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let verdict = if self.subs.iter().any(|s| s.contains(id)) {
            Verdict::Duplicate
        } else {
            self.subs
                .back_mut()
                .expect("at least one sub-window")
                .insert(id.to_vec());
            Verdict::Distinct
        };
        if self.clock.record_arrival().is_some() {
            self.subs.push_back(HashSet::new());
            if self.subs.len() > self.clock.q() {
                self.subs.pop_front();
            }
        }
        self.tally.record(verdict);
        verdict
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.n,
            q: self.clock.q(),
        }
    }

    fn memory_bits(&self) -> usize {
        self.subs
            .iter()
            .flat_map(|s| s.iter())
            .map(|id| id.len() * 8)
            .sum()
    }

    fn reset(&mut self) {
        let q = self.clock.q();
        let sub_len = self.clock.sub_len();
        self.clock = JumpingClock::new(q, sub_len);
        self.subs.clear();
        self.subs.push_back(HashSet::new());
        self.tally = ExactTally::default();
    }

    fn name(&self) -> &'static str {
        "exact-jumping"
    }
}

impl DetectorStats for ExactJumpingDedup {
    fn stats_name(&self) -> &'static str {
        "exact-jumping"
    }

    /// One entry per active sub-window: valid clicks over the
    /// sub-window's element capacity.
    fn fill_ratios(&self) -> Vec<f64> {
        let sub_len = self.clock.sub_len().max(1) as f64;
        self.subs.iter().map(|s| s.len() as f64 / sub_len).collect()
    }

    fn observed_elements(&self) -> u64 {
        self.tally.observed
    }

    fn observed_duplicates(&self) -> u64 {
        self.tally.duplicates
    }

    /// Exact oracles make no false positives.
    fn estimated_fp(&self) -> f64 {
        0.0
    }
}

/// Exact duplicate detection over a *landmark* window: the set restarts
/// every `n` elements.
#[derive(Debug, Clone)]
pub struct ExactLandmarkDedup {
    n: usize,
    filled: usize,
    seen: HashSet<Vec<u8>>,
    tally: ExactTally,
}

impl ExactLandmarkDedup {
    /// Creates an oracle over landmark windows of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window length must be positive");
        Self {
            n,
            filled: 0,
            seen: HashSet::new(),
            tally: ExactTally::default(),
        }
    }
}

impl DuplicateDetector for ExactLandmarkDedup {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        if self.filled == self.n {
            self.seen.clear();
            self.filled = 0;
        }
        self.filled += 1;
        let verdict = if self.seen.insert(id.to_vec()) {
            Verdict::Distinct
        } else {
            Verdict::Duplicate
        };
        self.tally.record(verdict);
        verdict
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Landmark { n: self.n }
    }

    fn memory_bits(&self) -> usize {
        self.seen.iter().map(|id| id.len() * 8).sum()
    }

    fn reset(&mut self) {
        self.seen.clear();
        self.filled = 0;
        self.tally = ExactTally::default();
    }

    fn name(&self) -> &'static str {
        "exact-landmark"
    }
}

impl DetectorStats for ExactLandmarkDedup {
    fn stats_name(&self) -> &'static str {
        "exact-landmark"
    }

    /// One entry: distinct clicks seen in the current landmark window
    /// over the window's element capacity.
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.seen.len() as f64 / self.n as f64]
    }

    fn observed_elements(&self) -> u64 {
        self.tally.observed
    }

    fn observed_duplicates(&self) -> u64 {
        self.tally.duplicates
    }

    /// Exact oracles make no false positives.
    fn estimated_fp(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sliding_duplicate_within_window_only() {
        let mut d = ExactSlidingDedup::new(4);
        assert_eq!(d.observe(b"x"), Verdict::Distinct); // pos 0
        assert_eq!(d.observe(b"y"), Verdict::Distinct); // pos 1
        assert_eq!(d.observe(b"x"), Verdict::Duplicate); // pos 2, x@0 active
        assert_eq!(d.observe(b"z"), Verdict::Distinct); // pos 3
                                                        // pos 4: window is positions 1..=4; the valid x@0 slid out, and the
                                                        // duplicate x@2 never counted as valid.
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
    }

    #[test]
    fn sliding_duplicates_do_not_refresh_validity() {
        let mut d = ExactSlidingDedup::new(3);
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // valid a@0
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // a@1 (invalid)
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // a@2 (invalid)
                                                         // a@0 expires now -> fresh valid click.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
    }

    #[test]
    fn jumping_expires_whole_subwindows() {
        // n = 4, q = 2 -> sub-windows of 2.
        let mut d = ExactJumpingDedup::new(4, 2);
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // sub 0
        assert_eq!(d.observe(b"b"), Verdict::Distinct); // sub 0 completes
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // sub 1; a in sub 0
        assert_eq!(d.observe(b"c"), Verdict::Distinct); // sub 1 completes; sub 0 expires
                                                        // Window now = sub 1 (full) + sub 2 (empty): a was valid in sub 0.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
    }

    #[test]
    fn landmark_restarts_exactly_on_boundary() {
        let mut d = ExactLandmarkDedup::new(3);
        assert_eq!(d.observe(b"p"), Verdict::Distinct);
        assert_eq!(d.observe(b"p"), Verdict::Duplicate);
        assert_eq!(d.observe(b"q"), Verdict::Distinct);
        // New landmark window: everything is fresh again.
        assert_eq!(d.observe(b"p"), Verdict::Distinct);
        assert_eq!(d.observe(b"q"), Verdict::Distinct);
        assert_eq!(d.observe(b"q"), Verdict::Duplicate);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut d = ExactSlidingDedup::new(2);
        d.observe(b"a");
        d.reset();
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        let mut j = ExactJumpingDedup::new(4, 2);
        j.observe(b"a");
        j.reset();
        assert_eq!(j.observe(b"a"), Verdict::Distinct);
    }

    #[test]
    fn sliding_active_valid_is_bounded_by_n() {
        let mut d = ExactSlidingDedup::new(5);
        for i in 0..100u32 {
            d.observe(&i.to_le_bytes());
            assert!(d.active_valid() <= 5);
        }
        assert_eq!(d.active_valid(), 5);
    }

    /// Brute-force re-derivation of Definition 1 over a sliding window,
    /// used to cross-check the incremental oracle.
    fn brute_force_sliding(n: usize, stream: &[u8]) -> Vec<Verdict> {
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(stream.len());
        for (i, &id) in stream.iter().enumerate() {
            let lo = i.saturating_sub(n - 1);
            let dup = (lo..i).any(|j| stream[j] == id && verdicts[j] == Verdict::Distinct);
            verdicts.push(if dup {
                Verdict::Duplicate
            } else {
                Verdict::Distinct
            });
        }
        verdicts
    }

    proptest! {
        #[test]
        fn sliding_matches_brute_force(
            n in 1usize..12,
            stream in prop::collection::vec(0u8..6, 0..200),
        ) {
            let mut d = ExactSlidingDedup::new(n);
            let got: Vec<Verdict> = stream.iter().map(|b| d.observe(&[*b])).collect();
            prop_assert_eq!(got, brute_force_sliding(n, &stream));
        }

        #[test]
        fn jumping_never_remembers_beyond_n_nor_forgets_current_sub(
            q in 1usize..6,
            sub in 1usize..6,
            stream in prop::collection::vec(0u8..4, 0..150),
        ) {
            let n = q * sub;
            let mut d = ExactJumpingDedup::new(n, q);
            let mut history: Vec<(u8, Verdict)> = Vec::new();
            for &b in &stream {
                let v = d.observe(&[b]);
                // If v is Distinct there must be no valid occurrence of b in
                // the last n-1 arrivals *of the same jumping coverage*; at
                // minimum, none in the current sub-window (always covered).
                let pos = history.len();
                let sub_start = pos - (pos % sub);
                if v == Verdict::Distinct {
                    let dup_in_current_sub = history[sub_start..]
                        .iter()
                        .any(|&(ob, ov)| ob == b && ov == Verdict::Distinct);
                    prop_assert!(!dup_in_current_sub, "missed duplicate in current sub-window");
                }
                // If v is Duplicate there must be a valid occurrence within
                // the last n arrivals (jumping coverage is a subset).
                if v == Verdict::Duplicate {
                    let lo = pos.saturating_sub(n);
                    let any_valid = history[lo..]
                        .iter()
                        .any(|&(ob, ov)| ob == b && ov == Verdict::Distinct);
                    prop_assert!(any_valid, "phantom duplicate beyond window");
                }
                history.push((b, v));
            }
        }
    }
}
