//! Sub-window rotation bookkeeping for count-based jumping windows.

use serde::{Deserialize, Serialize};

/// Tracks arrivals within a count-based jumping window of `q` sub-windows
/// of `sub_len` elements each.
///
/// The clock reports, for every arrival, whether the sub-window *rotates*
/// (i.e. the arrival is the first element of a new sub-window), which
/// slot index is current, and which slot just expired. Slot indices run
/// over `q + 1` values because the paper's GBF keeps one extra filter
/// that is being cleaned while the other `q` serve queries (§3.1).
///
/// ```rust
/// use cfd_windows::JumpingClock;
/// let mut clock = JumpingClock::new(2, 3); // q = 2 sub-windows of 3
/// let slots: Vec<usize> = (0..7).map(|_| { let s = clock.slot(); clock.record_arrival(); s }).collect();
/// assert_eq!(slots, vec![0, 0, 0, 1, 1, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JumpingClock {
    q: usize,
    sub_len: usize,
    slot: usize,
    filled: usize,
    completed_subwindows: u64,
}

/// What happened at a sub-window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotation {
    /// The slot that became current.
    pub new_slot: usize,
    /// The slot whose contents just expired and must be cleaned, if the
    /// window is already full.
    pub expired_slot: Option<usize>,
}

impl JumpingClock {
    /// Creates a clock for `q` sub-windows of `sub_len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `sub_len == 0`.
    #[must_use]
    pub fn new(q: usize, sub_len: usize) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(sub_len > 0, "sub-window length must be positive");
        Self {
            q,
            sub_len,
            slot: 0,
            filled: 0,
            completed_subwindows: 0,
        }
    }

    /// Rebuilds a clock at a specific position (checkpoint restore).
    /// Returns `None` when the parts are mutually inconsistent.
    #[must_use]
    pub fn from_parts(
        q: usize,
        sub_len: usize,
        slot: usize,
        filled: usize,
        completed_subwindows: u64,
    ) -> Option<Self> {
        if q == 0 || sub_len == 0 || slot > q || filled >= sub_len {
            return None;
        }
        // The slot index is determined by the completed-sub-window count.
        if slot != (completed_subwindows % (q as u64 + 1)) as usize {
            return None;
        }
        Some(Self {
            q,
            sub_len,
            slot,
            filled,
            completed_subwindows,
        })
    }

    /// Number of sub-windows `q`.
    #[inline]
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Elements per sub-window.
    #[inline]
    #[must_use]
    pub fn sub_len(&self) -> usize {
        self.sub_len
    }

    /// Total slots cycled through (`q + 1`).
    #[inline]
    #[must_use]
    pub fn slots(&self) -> usize {
        self.q + 1
    }

    /// The slot receiving insertions right now.
    #[inline]
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Arrivals recorded in the current sub-window so far.
    #[inline]
    #[must_use]
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Completed sub-windows since construction.
    #[inline]
    #[must_use]
    pub fn completed_subwindows(&self) -> u64 {
        self.completed_subwindows
    }

    /// `true` once at least `q` sub-windows have completed, i.e. the
    /// jumping window covers its full span and rotations start expiring
    /// slots.
    #[inline]
    #[must_use]
    pub fn window_full(&self) -> bool {
        self.completed_subwindows >= self.q as u64
    }

    /// Records one arrival; returns the rotation if this arrival *filled*
    /// the current sub-window (the next arrival lands in a fresh slot).
    pub fn record_arrival(&mut self) -> Option<Rotation> {
        self.filled += 1;
        if self.filled < self.sub_len {
            return None;
        }
        self.filled = 0;
        self.completed_subwindows += 1;
        let slots = self.slots();
        self.slot = (self.slot + 1) % slots;
        // Once q sub-windows completed, each rotation expires the slot
        // q positions behind the new current one (mod q+1): with slots
        // 0..=q, that is exactly the slot that will be cleaned while the
        // new one fills.
        let expired_slot = if self.window_full() {
            Some((self.slot + 1) % slots)
        } else {
            None
        };
        Some(Rotation {
            new_slot: self.slot,
            expired_slot,
        })
    }

    /// Slot indices currently holding *active* (queryable) data: the
    /// current slot plus up to `q − 1` predecessors.
    #[must_use]
    pub fn active_slots(&self) -> Vec<usize> {
        let slots = self.slots();
        let have = (self.completed_subwindows.min(self.q as u64 - 1) as usize) + 1;
        (0..have)
            .map(|back| (self.slot + slots - back) % slots)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_fires_every_sub_len_arrivals() {
        let mut c = JumpingClock::new(3, 4);
        let mut rotations = 0;
        for i in 1..=24 {
            if c.record_arrival().is_some() {
                rotations += 1;
                assert_eq!(i % 4, 0, "rotation not on boundary at {i}");
            }
        }
        assert_eq!(rotations, 6);
        assert_eq!(c.completed_subwindows(), 6);
    }

    #[test]
    fn expiry_starts_only_when_window_full() {
        let mut c = JumpingClock::new(2, 2);
        // Sub-window 1 completes: no expiry yet (window covers 1 sub-window).
        c.record_arrival();
        let r1 = c.record_arrival().expect("rotation");
        assert_eq!(r1.new_slot, 1);
        assert_eq!(r1.expired_slot, None);
        // Sub-window 2 completes: window now full; slot 0 expires... not
        // yet — with q = 2, slots cycle 0,1,2 and the expired one is the
        // slot two behind the new current.
        c.record_arrival();
        let r2 = c.record_arrival().expect("rotation");
        assert_eq!(r2.new_slot, 2);
        assert_eq!(r2.expired_slot, Some(0));
        c.record_arrival();
        let r3 = c.record_arrival().expect("rotation");
        assert_eq!(r3.new_slot, 0);
        assert_eq!(r3.expired_slot, Some(1));
    }

    #[test]
    fn active_slots_grow_then_saturate_at_q() {
        let mut c = JumpingClock::new(3, 1);
        assert_eq!(c.active_slots(), vec![0]);
        c.record_arrival(); // slot -> 1
        assert_eq!(c.active_slots(), vec![1, 0]);
        c.record_arrival(); // slot -> 2
        assert_eq!(c.active_slots(), vec![2, 1, 0]);
        c.record_arrival(); // slot -> 3, window full
        assert_eq!(c.active_slots(), vec![3, 2, 1]);
        c.record_arrival(); // slot -> 0 (wrap)
        assert_eq!(c.active_slots(), vec![0, 3, 2]);
    }

    #[test]
    fn expired_slot_is_never_active() {
        let mut c = JumpingClock::new(4, 3);
        for _ in 0..200 {
            if let Some(r) = c.record_arrival() {
                if let Some(e) = r.expired_slot {
                    assert!(!c.active_slots().contains(&e), "expired slot active");
                    assert_ne!(e, c.slot());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_q_panics() {
        let _ = JumpingClock::new(0, 1);
    }
}
