//! The one-pass duplicate-detection contract (paper Definition 1).

use crate::spec::WindowSpec;
use serde::{Deserialize, Serialize};

/// The classification of one click.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// First occurrence within the current window: a *valid* click that
    /// the advertiser is charged for.
    Distinct,
    /// An identical click was already determined valid within the current
    /// window: not charged (paper Definition 1).
    Duplicate,
}

impl Verdict {
    /// `true` for [`Verdict::Duplicate`].
    #[inline]
    #[must_use]
    pub fn is_duplicate(self) -> bool {
        matches!(self, Verdict::Duplicate)
    }

    /// `true` for [`Verdict::Distinct`].
    #[inline]
    #[must_use]
    pub fn is_distinct(self) -> bool {
        matches!(self, Verdict::Distinct)
    }
}

/// A one-pass duplicate detector over a count-based decaying window.
///
/// The contract mirrors the paper's problem statement (§1.3): given
/// limited memory and a window of `N` elements, classify each click of an
/// unbounded stream in a single pass. Implementations may be approximate
/// with one-sided error: the GBF/TBF detectors guarantee *zero false
/// negatives* while allowing a small false-positive rate.
///
/// # Error direction
///
/// Following the paper: a *false positive* is a distinct click wrongly
/// reported as [`Verdict::Duplicate`]; a *false negative* is a duplicate
/// wrongly reported as [`Verdict::Distinct`]. GBF and TBF have zero false
/// negatives; exact oracles have zero error in both directions.
pub trait DuplicateDetector {
    /// Classifies the next click of the stream and updates internal state.
    fn observe(&mut self, id: &[u8]) -> Verdict;

    /// Classifies a batch of consecutive clicks, in stream order.
    ///
    /// Verdict-for-verdict equivalent to calling [`observe`] on each id
    /// in order; implementations may override to hash the whole batch up
    /// front before touching filter state (the GBF/TBF detectors do),
    /// which improves locality without changing any verdict. The default
    /// is the plain loop, so trait objects and third-party detectors get
    /// batching for free.
    ///
    /// [`observe`]: DuplicateDetector::observe
    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        ids.iter().map(|id| self.observe(id)).collect()
    }

    /// Allocation-free form of [`observe_batch`]: verdicts are written into
    /// `out` (cleared first, capacity reused), so a caller recycling the
    /// buffer performs no heap allocation once it has grown to the batch
    /// size. Verdict-for-verdict equivalent to [`observe_batch`].
    ///
    /// [`observe_batch`]: DuplicateDetector::observe_batch
    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        out.clear();
        for id in ids {
            out.push(self.observe(id));
        }
    }

    /// Classifies a batch of fixed-stride ids packed end-to-end in a flat
    /// buffer (`key_len` bytes each), writing verdicts into `out` (cleared
    /// first, capacity reused).
    ///
    /// The flat layout is what the zero-allocation pipeline ships between
    /// stages: no per-id slice headers, and batch implementations can hash
    /// the whole buffer in one multi-lane pass. Verdict-for-verdict
    /// equivalent to observing each `key_len`-byte chunk in order.
    ///
    /// # Panics
    /// Implementations may panic if `key_len == 0` or `keys.len()` is not
    /// a multiple of `key_len`.
    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        assert!(key_len > 0, "key_len must be non-zero");
        assert_eq!(
            keys.len() % key_len,
            0,
            "flat key buffer length {} is not a multiple of key_len {}",
            keys.len(),
            key_len
        );
        out.clear();
        for id in keys.chunks_exact(key_len) {
            out.push(self.observe(id));
        }
    }

    /// The window model this detector approximates.
    fn window(&self) -> WindowSpec;

    /// Total payload memory, in bits (for the paper's space accounting).
    fn memory_bits(&self) -> usize;

    /// Resets to the empty-stream state, keeping the configuration.
    fn reset(&mut self);

    /// Human-readable algorithm name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Boxed detectors forward the whole contract, so trait objects compose
/// with generic wrappers (e.g. `ShardedDetector<Box<dyn DuplicateDetector>>`
/// in the CLI, where the algorithm is chosen at runtime).
impl<D: DuplicateDetector + ?Sized> DuplicateDetector for Box<D> {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        (**self).observe(id)
    }
    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        (**self).observe_batch(ids)
    }
    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        (**self).observe_batch_into(ids, out)
    }
    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        (**self).observe_flat_into(keys, key_len, out)
    }
    fn window(&self) -> WindowSpec {
        (**self).window()
    }
    fn memory_bits(&self) -> usize {
        (**self).memory_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A duplicate detector that also reports health telemetry.
///
/// Marker for `DuplicateDetector + DetectorStats`, blanket-implemented
/// for every type satisfying both — its purpose is trait objects:
/// `Box<dyn ObservableDetector>` keeps runtime-chosen detectors (the
/// `cfd` CLI) both observable and drivable, where two separate `dyn`
/// bounds could not share one box.
///
/// [`DetectorStats`]: cfd_telemetry::DetectorStats
pub trait ObservableDetector: DuplicateDetector + cfd_telemetry::DetectorStats {}

impl<D: DuplicateDetector + cfd_telemetry::DetectorStats + ?Sized> ObservableDetector for D {}

/// A one-pass duplicate detector over a *time-based* decaying window.
///
/// Each observation carries its tick. Ticks should be non-decreasing;
/// implementations document their policy for out-of-order ticks (the
/// `cfd-core` detectors clamp them to the high-water unit and count the
/// event — time never moves backwards).
pub trait TimedDuplicateDetector {
    /// Classifies the click arriving at `tick`.
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict;

    /// Classifies a batch of consecutive clicks, each with its own tick,
    /// in stream order.
    ///
    /// Verdict-for-verdict equivalent to calling [`observe_at`] on each
    /// `(id, tick)` pair in order; implementations may override to hash
    /// the whole batch up front and amortize clock-advance work across
    /// ticks that share a unit (the `cfd-core` timed detectors do).
    ///
    /// # Panics
    /// Implementations may panic if `ids.len() != ticks.len()`.
    ///
    /// [`observe_at`]: TimedDuplicateDetector::observe_at
    fn observe_batch_at(&mut self, ids: &[&[u8]], ticks: &[u64]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_at_into(ids, ticks, &mut out);
        out
    }

    /// Allocation-free form of [`observe_batch_at`]: verdicts are written
    /// into `out` (cleared first, capacity reused).
    ///
    /// # Panics
    /// Implementations may panic if `ids.len() != ticks.len()`.
    ///
    /// [`observe_batch_at`]: TimedDuplicateDetector::observe_batch_at
    fn observe_batch_at_into(&mut self, ids: &[&[u8]], ticks: &[u64], out: &mut Vec<Verdict>) {
        assert_eq!(ids.len(), ticks.len(), "one tick per id");
        out.clear();
        for (id, &tick) in ids.iter().zip(ticks) {
            out.push(self.observe_at(id, tick));
        }
    }

    /// Classifies a batch of fixed-stride ids packed end-to-end in a flat
    /// buffer (`key_len` bytes each), each with its own tick, writing
    /// verdicts into `out` (cleared first, capacity reused). The timed
    /// analogue of [`DuplicateDetector::observe_flat_into`] — what the
    /// pipeline's timed mode ships between stages.
    ///
    /// # Panics
    /// Implementations may panic if `key_len == 0`, `keys.len()` is not a
    /// multiple of `key_len`, or the key count differs from `ticks.len()`.
    fn observe_flat_at_into(
        &mut self,
        keys: &[u8],
        key_len: usize,
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        assert!(key_len > 0, "key_len must be non-zero");
        assert_eq!(
            keys.len() % key_len,
            0,
            "flat key buffer length {} is not a multiple of key_len {}",
            keys.len(),
            key_len
        );
        assert_eq!(keys.len() / key_len, ticks.len(), "one tick per key");
        out.clear();
        for (id, &tick) in keys.chunks_exact(key_len).zip(ticks) {
            out.push(self.observe_at(id, tick));
        }
    }

    /// The window model this detector approximates.
    fn window(&self) -> WindowSpec;

    /// Total payload memory, in bits.
    fn memory_bits(&self) -> usize;

    /// Resets to the empty-stream state, keeping the configuration.
    fn reset(&mut self);

    /// Human-readable algorithm name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Boxed timed detectors forward the whole contract, mirroring the
/// count-based [`DuplicateDetector`] forwarding impl, so runtime-chosen
/// timed algorithms compose with generic wrappers.
impl<D: TimedDuplicateDetector + ?Sized> TimedDuplicateDetector for Box<D> {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        (**self).observe_at(id, tick)
    }
    fn observe_batch_at(&mut self, ids: &[&[u8]], ticks: &[u64]) -> Vec<Verdict> {
        (**self).observe_batch_at(ids, ticks)
    }
    fn observe_batch_at_into(&mut self, ids: &[&[u8]], ticks: &[u64], out: &mut Vec<Verdict>) {
        (**self).observe_batch_at_into(ids, ticks, out)
    }
    fn observe_flat_at_into(
        &mut self,
        keys: &[u8],
        key_len: usize,
        ticks: &[u64],
        out: &mut Vec<Verdict>,
    ) {
        (**self).observe_flat_at_into(keys, key_len, ticks, out)
    }
    fn window(&self) -> WindowSpec {
        (**self).window()
    }
    fn memory_bits(&self) -> usize {
        (**self).memory_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A timed duplicate detector that also reports health telemetry — the
/// time-based counterpart of [`ObservableDetector`], blanket-implemented
/// for every type satisfying both bounds so the CLI can drive
/// runtime-chosen timed algorithms through one box.
pub trait TimedObservableDetector: TimedDuplicateDetector + cfd_telemetry::DetectorStats {}

impl<D: TimedDuplicateDetector + cfd_telemetry::DetectorStats + ?Sized> TimedObservableDetector
    for D
{
}

/// Running tallies of a detector over a stream.
///
/// ```rust
/// use cfd_windows::{StreamSummary, Verdict};
/// let mut s = StreamSummary::default();
/// s.record(Verdict::Distinct);
/// s.record(Verdict::Duplicate);
/// assert_eq!(s.total(), 2);
/// assert_eq!(s.duplicates, 1);
/// assert!((s.duplicate_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Clicks classified [`Verdict::Distinct`].
    pub distinct: u64,
    /// Clicks classified [`Verdict::Duplicate`].
    pub duplicates: u64,
}

impl StreamSummary {
    /// Records one verdict.
    #[inline]
    pub fn record(&mut self, v: Verdict) {
        match v {
            Verdict::Distinct => self.distinct += 1,
            Verdict::Duplicate => self.duplicates += 1,
        }
    }

    /// Total clicks recorded.
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.distinct + self.duplicates
    }

    /// Fraction of clicks classified duplicate (0 when empty).
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.total() as f64
        }
    }
}

/// Runs `detector` over `stream`, returning the summary tally.
///
/// Convenience for tests, examples, and the figure harness.
pub fn run_stream<'a, D, I>(detector: &mut D, stream: I) -> StreamSummary
where
    D: DuplicateDetector + ?Sized,
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut summary = StreamSummary::default();
    for id in stream {
        summary.record(detector.observe(id));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial landmark-window detector used to exercise the trait
    /// machinery (real detectors live in `cfd-core` / `cfd-bloom`).
    struct ToyLandmark {
        seen: std::collections::HashSet<Vec<u8>>,
        n: usize,
        count: usize,
    }

    impl DuplicateDetector for ToyLandmark {
        fn observe(&mut self, id: &[u8]) -> Verdict {
            if self.count == self.n {
                self.seen.clear();
                self.count = 0;
            }
            self.count += 1;
            if self.seen.insert(id.to_vec()) {
                Verdict::Distinct
            } else {
                Verdict::Duplicate
            }
        }
        fn window(&self) -> WindowSpec {
            WindowSpec::Landmark { n: self.n }
        }
        fn memory_bits(&self) -> usize {
            self.seen.len() * 8
        }
        fn reset(&mut self) {
            self.seen.clear();
            self.count = 0;
        }
        fn name(&self) -> &'static str {
            "toy-landmark"
        }
    }

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Duplicate.is_duplicate());
        assert!(!Verdict::Duplicate.is_distinct());
        assert!(Verdict::Distinct.is_distinct());
    }

    #[test]
    fn run_stream_tallies() {
        let mut d = ToyLandmark {
            seen: Default::default(),
            n: 100,
            count: 0,
        };
        let ids: Vec<&[u8]> = vec![b"a", b"b", b"a", b"c", b"a"];
        let s = run_stream(&mut d, ids);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn landmark_expires_all_at_boundary() {
        let mut d = ToyLandmark {
            seen: Default::default(),
            n: 2,
            count: 0,
        };
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
        // Boundary: window restarts, x is fresh again.
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
    }

    #[test]
    fn trait_object_usable() {
        let mut d: Box<dyn DuplicateDetector> = Box::new(ToyLandmark {
            seen: Default::default(),
            n: 10,
            count: 0,
        });
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
        assert_eq!(d.name(), "toy-landmark");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
    }

    #[test]
    fn summary_rate_handles_empty() {
        assert_eq!(StreamSummary::default().duplicate_rate(), 0.0);
    }
}
