//! The scenario sweep driver: brute-force a [`ScenarioSpec`]'s declared
//! grid over (algo, m, k, Q, layout, shards, batch) against its
//! compiled click stream.
//!
//! One compiled stream, many detector configurations. For every
//! [`SweepPoint`] of the grid the driver:
//!
//! 1. resolves `algo = "auto"` through the
//!    [`cfd_analysis::select`] closed forms;
//! 2. replays the stream through an exact oracle matching the
//!    backend's window semantics (sliding for TBF/APBF/SWBF, jumping
//!    for GBF, wall-clock for the time variants) — cached per
//!    semantics, so the grid doesn't re-pay it;
//! 3. runs an accuracy pass (false positives / false negatives against
//!    the oracle) and `rounds` timed passes with the configuration
//!    order alternated between rounds, reporting the median clicks/s —
//!    the same protocol as the `cfd-bench` binaries;
//! 4. folds the per-config rows into a compare-groups report along the
//!    spec's `group_by` axis.
//!
//! [`report_json`] emits the `cfd-bench-sweep/1` artifact
//! `tools/check_bench.py` validates; [`render_table`] the human table.
//!
//! Used by `cfd sweep --scenario <file>` and
//! `throughput --scenario <file>`.

use cfd_analysis::select::{auto_select, auto_select_timed, AutoChoice};
use cfd_core::config::ProbeLayout;
use cfd_core::registry::{self, BackendGeometry, MemorySpec};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{TimeGbf, TimeGbfConfig, TimeTbf, TimeTbfConfig};
use cfd_stream::scenario::{ScenarioSpec, ScenarioWindow, SweepPoint};
use cfd_stream::Click;
use cfd_windows::{
    DuplicateDetector, ExactJumpingDedup, ExactSlidingDedup, ExactTimeJumpingDedup,
    ExactTimeSlidingDedup, ObservableDetector, TimedDuplicateDetector, TimedObservableDetector,
    Verdict,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// How hard to drive the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Quick (CI) scale: clicks capped, fewer timed rounds.
    pub quick: bool,
    /// Timed rounds per configuration (the median is reported).
    pub rounds: usize,
    /// Cap on the stream length, regardless of the spec.
    pub max_clicks: Option<u64>,
}

impl SweepOptions {
    /// Full scale: the spec's click count, 5 timed rounds.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            rounds: 5,
            max_clicks: None,
        }
    }

    /// CI smoke scale: at most 2^15 clicks, 2 timed rounds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            rounds: 2,
            max_clicks: Some(1 << 15),
        }
    }
}

/// The measured outcome of one grid point.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// The grid point as declared (algo possibly `auto`).
    pub point: SweepPoint,
    /// The backend actually built.
    pub resolved_algo: String,
    /// The closed-form FP prediction behind an `auto` resolution.
    pub auto_predicted_fp: Option<f64>,
    /// Whether that prediction met the spec's `target_fp`.
    pub auto_meets_target: Option<bool>,
    /// Distinct clicks under the oracle's window semantics.
    pub distinct: u64,
    /// Oracle duplicates (ground truth).
    pub duplicates: u64,
    /// Duplicates the detector reported.
    pub detected: u64,
    /// Detector said duplicate, oracle said distinct.
    pub false_positives: u64,
    /// Detector said distinct, oracle said duplicate. For unsharded
    /// configs this is bounded by `false_positives`: the paper's
    /// no-false-negative guarantee holds for every *inserted* click,
    /// and the only way a click goes uninserted is an earlier false
    /// positive on the same id (which suppresses the stamp), so each
    /// miss is pre-paid by an FP. Sharded configs can also miss via
    /// per-shard window slide-out (`cfd_analysis::sharding`).
    pub false_negatives: u64,
    /// `false_positives / distinct`.
    pub fp_rate: f64,
    /// Closed-form FP model where one applies (unsharded scattered
    /// TBF/GBF families).
    pub fp_model: Option<f64>,
    /// Detector memory, bits.
    pub memory_bits: u64,
    /// Every timed round, clicks/s.
    pub rates: Vec<f64>,
    /// Median of `rates`.
    pub clicks_per_sec: f64,
}

/// One `group_by` bucket of the compare-groups report.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// The axis value (e.g. `"gbf"` when grouping by algo).
    pub value: String,
    /// Grid points in the bucket.
    pub configs: usize,
    /// Best median throughput in the bucket.
    pub best_clicks_per_sec: f64,
    /// Label of the config that achieved it.
    pub best_config: String,
    /// Lowest measured FP rate in the bucket.
    pub min_fp_rate: f64,
    /// Highest measured FP rate in the bucket.
    pub max_fp_rate: f64,
    /// Smallest detector in the bucket, bits.
    pub min_memory_bits: u64,
    /// `true` when every unsharded config in the bucket kept its
    /// misses within the FP-propagation bound (`fn ≤ fp`).
    pub fn_within_fp_bound: bool,
}

/// A finished sweep: the spec, the stream's vitals, and every row.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The scenario that was swept.
    pub spec: ScenarioSpec,
    /// Whether this ran at quick (CI) scale.
    pub quick: bool,
    /// Clicks actually streamed (after any quick-scale cap).
    pub clicks: u64,
    /// Injected guaranteed duplicates in the stream.
    pub injected: u64,
    /// Timed rounds per config.
    pub rounds: usize,
    /// One row per grid point, in grid order.
    pub configs: Vec<ConfigOutcome>,
    /// The compare-groups folding along `spec.sweep.group_by`.
    pub groups: Vec<GroupSummary>,
}

/// Window semantics an exact oracle must replay — the cache key that
/// lets every same-semantics grid point share one oracle pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OracleKind {
    Sliding,
    Jumping(usize),
    TimeSliding,
    TimeJumping(usize),
}

/// The oracle semantics of a (resolved) backend name.
fn oracle_kind(algo: &str, q: usize) -> OracleKind {
    match algo {
        "gbf" | "jumping-tbf" => OracleKind::Jumping(q),
        "time-tbf" => OracleKind::TimeSliding,
        "time-gbf" => OracleKind::TimeJumping(q),
        _ => OracleKind::Sliding,
    }
}

/// Count-window backends the sweep accepts (`arena` needs per-tenant
/// ground truth the global oracles cannot express; it has its own
/// harness in `throughput --tenants`).
fn validate_algos(spec: &ScenarioSpec) -> Result<(), String> {
    for algo in &spec.sweep.algos {
        let ok = if spec.window.is_timed() {
            matches!(algo.as_str(), "auto" | "time-tbf" | "time-gbf")
        } else {
            algo == "auto" || (algo != "arena" && registry::find(algo).is_some())
        };
        if !ok {
            let accepted = if spec.window.is_timed() {
                "auto, time-tbf, time-gbf (window.model = \"time\")".to_owned()
            } else {
                format!(
                    "auto or a registry backend except arena (have: {})",
                    registry::algo_list()
                )
            };
            return Err(format!(
                "sweep.algo: `{algo}` is not sweepable (accepted: {accepted})"
            ));
        }
    }
    Ok(())
}

fn parse_layout(layout: &str) -> ProbeLayout {
    match layout {
        "blocked" => ProbeLayout::Blocked,
        _ => ProbeLayout::Scattered,
    }
}

/// A built detector of either clock discipline, driven uniformly.
enum Driver {
    Count(Box<dyn ObservableDetector + Send>),
    Timed(Box<dyn TimedObservableDetector + Send>),
}

impl Driver {
    fn observe_chunk(&mut self, refs: &[&[u8]], ticks: &[u64]) -> Vec<Verdict> {
        match self {
            Self::Count(d) => d.observe_batch(refs),
            Self::Timed(d) => d.observe_batch_at(refs, ticks),
        }
    }

    fn memory_bits(&self) -> u64 {
        match self {
            Self::Count(d) => d.memory_bits() as u64,
            Self::Timed(d) => TimedDuplicateDetector::memory_bits(&**d) as u64,
        }
    }
}

/// Builds one count-window backend at the per-shard window.
fn build_count_one(
    algo: &str,
    window: usize,
    point: &SweepPoint,
    seed: u64,
) -> Result<Box<dyn ObservableDetector + Send>, String> {
    let geo = BackendGeometry::new(window, MemorySpec::CellsPerElement(point.cells_per_element))
        .with_sub_windows(point.q)
        .with_hash_count(point.k)
        .with_seed(seed)
        .with_probe(parse_layout(&point.layout));
    let backend = registry::build(algo, &geo).map_err(|e| format!("{}: {e}", point.label()))?;
    Ok(Box::new(backend))
}

/// Builds one time-window backend sized for `capacity` expected clicks
/// (mirrors the `cfd` binary's builder, so sweep rows and `cfd detect`
/// agree exactly).
fn build_timed_one(
    algo: &str,
    capacity: usize,
    spec: &ScenarioSpec,
    point: &SweepPoint,
) -> Result<Box<dyn TimedObservableDetector + Send>, String> {
    let ScenarioWindow::Time {
        window_units,
        sub_units,
        unit_ticks,
        ..
    } = spec.window
    else {
        return Err(format!(
            "{}: time backend under a count window",
            point.label()
        ));
    };
    let layout = parse_layout(&point.layout);
    let err = |e: cfd_core::ConfigError| format!("{}: {e}", point.label());
    Ok(match algo {
        "time-tbf" => Box::new(
            TimeTbf::new(
                TimeTbfConfig::new(
                    window_units,
                    unit_ticks,
                    capacity * point.cells_per_element,
                    point.k,
                    spec.seed,
                )
                .and_then(|c| c.with_probe(layout))
                .map_err(err)?,
            )
            .map_err(err)?,
        ),
        _ => Box::new(
            TimeGbf::new(
                TimeGbfConfig::new(
                    point.q,
                    sub_units,
                    unit_ticks,
                    capacity.div_ceil(point.q) * point.cells_per_element,
                    point.k,
                    spec.seed,
                )
                .and_then(|c| c.with_probe(layout))
                .map_err(err)?,
            )
            .map_err(err)?,
        ),
    })
}

/// Builds the full (possibly sharded) detector for one grid point.
fn build_driver(resolved: &str, spec: &ScenarioSpec, point: &SweepPoint) -> Result<Driver, String> {
    let n = spec.window.n();
    if spec.window.is_timed() {
        if point.shards > 1 {
            // Shards share one wall clock, so each keeps the full time
            // window; memory splits via per-shard capacity.
            let capacity = n.div_ceil(point.shards);
            let mut inner = Vec::with_capacity(point.shards);
            for _ in 0..point.shards {
                inner.push(build_timed_one(resolved, capacity, spec, point)?);
            }
            let sharded = ShardedDetector::new(spec.seed, inner)
                .map_err(|e| format!("{}: {e}", point.label()))?;
            Ok(Driver::Timed(Box::new(sharded)))
        } else {
            Ok(Driver::Timed(build_timed_one(resolved, n, spec, point)?))
        }
    } else if point.shards > 1 {
        let per = per_shard_window(n, point.shards);
        let mut inner = Vec::with_capacity(point.shards);
        for _ in 0..point.shards {
            inner.push(build_count_one(resolved, per, point, spec.seed)?);
        }
        let sharded = ShardedDetector::new(spec.seed, inner)
            .map_err(|e| format!("{}: {e}", point.label()))?;
        Ok(Driver::Count(Box::new(sharded)))
    } else {
        Ok(Driver::Count(build_count_one(
            resolved, n, point, spec.seed,
        )?))
    }
}

/// Replays the stream through the exact oracle of the given semantics.
fn oracle_verdicts(
    kind: OracleKind,
    spec: &ScenarioSpec,
    keys: &[[u8; 16]],
    ticks: &[u64],
) -> Vec<bool> {
    let n = spec.window.n();
    match kind {
        OracleKind::Sliding => {
            let mut o = ExactSlidingDedup::new(n);
            keys.iter()
                .map(|k| o.observe(k) == Verdict::Duplicate)
                .collect()
        }
        OracleKind::Jumping(q) => {
            let mut o = ExactJumpingDedup::new(n, q.max(1));
            keys.iter()
                .map(|k| o.observe(k) == Verdict::Duplicate)
                .collect()
        }
        OracleKind::TimeSliding => {
            let ScenarioWindow::Time {
                window_units,
                unit_ticks,
                ..
            } = spec.window
            else {
                unreachable!("validated: time oracle only under a time window")
            };
            let mut o = ExactTimeSlidingDedup::new(window_units, unit_ticks);
            keys.iter()
                .zip(ticks)
                .map(|(k, &t)| o.observe_at(k, t) == Verdict::Duplicate)
                .collect()
        }
        OracleKind::TimeJumping(q) => {
            let ScenarioWindow::Time {
                sub_units,
                unit_ticks,
                ..
            } = spec.window
            else {
                unreachable!("validated: time oracle only under a time window")
            };
            let mut o = ExactTimeJumpingDedup::new(q.max(1), sub_units, unit_ticks);
            keys.iter()
                .zip(ticks)
                .map(|(k, &t)| o.observe_at(k, t) == Verdict::Duplicate)
                .collect()
        }
    }
}

/// The closed-form FP model for rows where one applies: unsharded,
/// scattered, TBF/GBF families (the models the figures validate).
fn fp_model_for(resolved: &str, spec: &ScenarioSpec, point: &SweepPoint) -> Option<f64> {
    if point.shards != 1 || point.layout != "scattered" {
        return None;
    }
    let n = spec.window.n();
    let c = point.cells_per_element;
    match resolved {
        "tbf" | "time-tbf" => Some(cfd_analysis::tbf::fp_sliding(n * c, point.k, n)),
        "gbf" | "time-gbf" => Some(cfd_analysis::gbf::fp_worst_case(
            n.div_ceil(point.q) * c,
            point.k,
            n,
            point.q,
        )),
        "jumping-tbf" => Some(cfd_analysis::tbf::fp_jumping_bounds(n * c, point.k, n, point.q).1),
        _ => None,
    }
}

/// Resolves `auto` for the spec's window model at this grid point.
fn resolve_auto(spec: &ScenarioSpec, point: &SweepPoint) -> AutoChoice {
    let n = spec.window.n();
    if spec.window.is_timed() {
        auto_select_timed(
            n,
            point.q,
            point.cells_per_element,
            point.k,
            spec.sweep.target_fp,
        )
    } else {
        auto_select(
            n,
            point.q,
            point.cells_per_element,
            point.k,
            spec.sweep.target_fp,
        )
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Drives the whole stream through a fresh detector, returning the
/// duplicate count (accuracy passes compare verdicts instead).
fn timed_pass(driver: &mut Driver, keys: &[[u8; 16]], ticks: &[u64], batch: usize) -> (f64, u64) {
    let mut dups = 0u64;
    let mut refs: Vec<&[u8]> = Vec::with_capacity(batch);
    let start = Instant::now();
    for (kc, tc) in keys.chunks(batch).zip(ticks.chunks(batch)) {
        refs.clear();
        refs.extend(kc.iter().map(<[u8; 16]>::as_slice));
        dups += driver
            .observe_chunk(&refs, tc)
            .iter()
            .filter(|&&v| v == Verdict::Duplicate)
            .count() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (keys.len() as f64 / secs, dups)
}

/// Runs the full sweep of `spec` at the given scale.
///
/// # Errors
///
/// Returns a message naming the grid point (or spec field) when a
/// backend cannot be built or an algo is not sweepable.
pub fn run(spec: &ScenarioSpec, opts: &SweepOptions) -> Result<SweepReport, String> {
    validate_algos(spec)?;

    // Compile the stream once; every grid point replays the same
    // clicks.
    let clicks_wanted = match opts.max_clicks {
        Some(cap) => spec.clicks.min(cap),
        None => spec.clicks,
    };
    let mut stream = spec.compile();
    let clicks: Vec<Click> = stream
        .by_ref()
        .take(clicks_wanted as usize)
        .map(|sc| sc.click)
        .collect();
    let injected = stream.injected_duplicates();
    let keys: Vec<[u8; 16]> = clicks.iter().map(Click::key).collect();
    let ticks: Vec<u64> = clicks.iter().map(|c| c.tick).collect();
    drop(clicks);

    let grid = spec.grid();
    let mut oracles: HashMap<OracleKind, Rc<Vec<bool>>> = HashMap::new();
    let mut outcomes: Vec<ConfigOutcome> = Vec::with_capacity(grid.len());

    // Accuracy pass (also the warm-up) per grid point.
    for point in &grid {
        let (resolved, auto_predicted_fp, auto_meets_target) = if point.algo == "auto" {
            let choice = resolve_auto(spec, point);
            (
                choice.algo.to_owned(),
                Some(choice.predicted_fp),
                Some(choice.meets_target),
            )
        } else {
            (point.algo.clone(), None, None)
        };

        let kind = oracle_kind(&resolved, point.q);
        let oracle = oracles
            .entry(kind)
            .or_insert_with(|| Rc::new(oracle_verdicts(kind, spec, &keys, &ticks)))
            .clone();

        let mut driver = build_driver(&resolved, spec, point)?;
        let memory_bits = driver.memory_bits();
        let mut refs: Vec<&[u8]> = Vec::with_capacity(point.batch);
        let (mut fp, mut fneg, mut detected, mut dup_truth) = (0u64, 0u64, 0u64, 0u64);
        let mut pos = 0usize;
        for (kc, tc) in keys.chunks(point.batch).zip(ticks.chunks(point.batch)) {
            refs.clear();
            refs.extend(kc.iter().map(<[u8; 16]>::as_slice));
            for v in driver.observe_chunk(&refs, tc) {
                let truth = oracle[pos];
                pos += 1;
                let said_dup = v == Verdict::Duplicate;
                detected += u64::from(said_dup);
                dup_truth += u64::from(truth);
                fp += u64::from(said_dup && !truth);
                fneg += u64::from(!said_dup && truth);
            }
        }
        let distinct = keys.len() as u64 - dup_truth;
        outcomes.push(ConfigOutcome {
            point: point.clone(),
            fp_model: fp_model_for(&resolved, spec, point),
            resolved_algo: resolved,
            auto_predicted_fp,
            auto_meets_target,
            distinct,
            duplicates: dup_truth,
            detected,
            false_positives: fp,
            false_negatives: fneg,
            fp_rate: if distinct == 0 {
                0.0
            } else {
                fp as f64 / distinct as f64
            },
            memory_bits,
            rates: Vec::new(),
            clicks_per_sec: 0.0,
        });
    }

    // Timed rounds, configuration order alternated so drift hits the
    // grid symmetrically.
    for round in 0..opts.rounds {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..outcomes.len()).collect()
        } else {
            (0..outcomes.len()).rev().collect()
        };
        for idx in order {
            let o = &mut outcomes[idx];
            let mut driver = build_driver(&o.resolved_algo, spec, &o.point)?;
            let (rate, _) = timed_pass(&mut driver, &keys, &ticks, o.point.batch);
            o.rates.push(rate);
        }
    }
    for o in &mut outcomes {
        o.clicks_per_sec = median(&o.rates);
    }

    let groups = fold_groups(spec, &outcomes);
    Ok(SweepReport {
        spec: spec.clone(),
        quick: opts.quick,
        clicks: keys.len() as u64,
        injected,
        rounds: opts.rounds,
        configs: outcomes,
        groups,
    })
}

/// Folds per-config rows into `group_by` buckets, in first-seen order
/// (which is grid order, so it follows the spec's axis order).
fn fold_groups(spec: &ScenarioSpec, outcomes: &[ConfigOutcome]) -> Vec<GroupSummary> {
    let axis = &spec.sweep.group_by;
    let mut order: Vec<String> = Vec::new();
    let mut buckets: HashMap<String, Vec<&ConfigOutcome>> = HashMap::new();
    for o in outcomes {
        let value = o.point.axis(axis);
        if !buckets.contains_key(&value) {
            order.push(value.clone());
        }
        buckets.entry(value).or_default().push(o);
    }
    order
        .into_iter()
        .map(|value| {
            let rows = &buckets[&value];
            let best = rows
                .iter()
                .max_by(|a, b| a.clicks_per_sec.total_cmp(&b.clicks_per_sec))
                .expect("bucket is never empty");
            GroupSummary {
                value,
                configs: rows.len(),
                best_clicks_per_sec: best.clicks_per_sec,
                best_config: best.point.label(),
                min_fp_rate: rows.iter().map(|o| o.fp_rate).fold(f64::INFINITY, f64::min),
                max_fp_rate: rows.iter().map(|o| o.fp_rate).fold(0.0, f64::max),
                min_memory_bits: rows.iter().map(|o| o.memory_bits).min().unwrap_or(0),
                fn_within_fp_bound: rows
                    .iter()
                    .all(|o| o.point.shards > 1 || o.false_negatives <= o.false_positives),
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

fn json_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_owned(), json_f64)
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

fn json_usize_array(items: &[usize]) -> String {
    let nums: Vec<String> = items.iter().map(ToString::to_string).collect();
    format!("[{}]", nums.join(", "))
}

/// Serializes a report as the `cfd-bench-sweep/1` JSON artifact.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn report_json(r: &SweepReport) -> String {
    let spec = &r.spec;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"cfd-bench-sweep/1\",\n");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        if r.quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"clicks\": {},", r.clicks);
    let _ = writeln!(out, "  \"rounds\": {},", r.rounds);
    let _ = writeln!(out, "  \"injected_duplicates\": {},", r.injected);
    let _ = writeln!(out, "  \"scenario\": {{");
    let _ = writeln!(out, "    \"name\": \"{}\",", json_escape(&spec.name));
    let _ = writeln!(out, "    \"seed\": {},", spec.seed);
    let _ = writeln!(
        out,
        "    \"window_model\": \"{}\",",
        if spec.window.is_timed() {
            "time"
        } else {
            "count"
        }
    );
    let _ = writeln!(out, "    \"window_n\": {},", spec.window.n());
    let mix: Vec<String> = spec
        .traffic
        .mix
        .iter()
        .map(|e| e.kind.name().to_owned())
        .collect();
    let _ = writeln!(out, "    \"mix_kinds\": {},", json_str_array(&mix));
    let _ = writeln!(out, "    \"inject_rate\": {}", json_f64(spec.inject.rate));
    let _ = writeln!(out, "  }},");
    let s = &spec.sweep;
    let _ = writeln!(out, "  \"group_by\": \"{}\",", json_escape(&s.group_by));
    let _ = writeln!(out, "  \"grid\": {{");
    let _ = writeln!(out, "    \"algo\": {},", json_str_array(&s.algos));
    let _ = writeln!(
        out,
        "    \"cells_per_element\": {},",
        json_usize_array(&s.cells_per_element)
    );
    let _ = writeln!(out, "    \"k\": {},", json_usize_array(&s.hash_counts));
    let _ = writeln!(
        out,
        "    \"sub_windows\": {},",
        json_usize_array(&s.sub_windows)
    );
    let _ = writeln!(out, "    \"layout\": {},", json_str_array(&s.layouts));
    let _ = writeln!(out, "    \"shards\": {},", json_usize_array(&s.shards));
    let _ = writeln!(out, "    \"batch\": {},", json_usize_array(&s.batches));
    let _ = writeln!(out, "    \"target_fp\": {}", json_f64(s.target_fp));
    let _ = writeln!(out, "  }},");
    out.push_str("  \"configs\": [\n");
    for (i, o) in r.configs.iter().enumerate() {
        let p = &o.point;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"algo\": \"{}\", \"resolved_algo\": \"{}\", \"cells_per_element\": {}, \
             \"k\": {}, \"sub_windows\": {}, \"layout\": \"{}\", \"shards\": {}, \"batch\": {}, ",
            json_escape(&p.algo),
            json_escape(&o.resolved_algo),
            p.cells_per_element,
            p.k,
            p.q,
            json_escape(&p.layout),
            p.shards,
            p.batch
        );
        let _ = write!(
            out,
            "\"distinct\": {}, \"duplicates\": {}, \"detected\": {}, \
             \"false_positives\": {}, \"false_negatives\": {}, \"fp_rate\": {}, ",
            o.distinct,
            o.duplicates,
            o.detected,
            o.false_positives,
            o.false_negatives,
            json_f64(o.fp_rate)
        );
        let _ = write!(
            out,
            "\"fp_model\": {}, \"auto_predicted_fp\": {}, \"auto_meets_target\": {}, ",
            json_opt_f64(o.fp_model),
            json_opt_f64(o.auto_predicted_fp),
            o.auto_meets_target
                .map_or_else(|| "null".to_owned(), |b| b.to_string()),
        );
        let rates: Vec<String> = o.rates.iter().map(|&x| json_f64(x)).collect();
        let _ = write!(
            out,
            "\"memory_bits\": {}, \"clicks_per_sec_median\": {}, \"clicks_per_sec_rounds\": [{}]",
            o.memory_bits,
            json_f64(o.clicks_per_sec),
            rates.join(", ")
        );
        out.push_str(if i + 1 == r.configs.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ],\n  \"groups\": [\n");
    for (i, g) in r.groups.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"value\": \"{}\", \"configs\": {}, \"best_clicks_per_sec\": {}, \
             \"best_config\": \"{}\", \"min_fp_rate\": {}, \"max_fp_rate\": {}, \
             \"min_memory_bits\": {}, \"fn_within_fp_bound\": {}",
            json_escape(&g.value),
            g.configs,
            json_f64(g.best_clicks_per_sec),
            json_escape(&g.best_config),
            json_f64(g.min_fp_rate),
            json_f64(g.max_fp_rate),
            g.min_memory_bits,
            g.fn_within_fp_bound
        );
        out.push_str(if i + 1 == r.groups.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable per-config table plus the compare-groups
/// summary.
#[must_use]
pub fn render_table(r: &SweepReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# sweep `{}` — {} clicks ({} injected duplicates), {} configs, {} rounds{}",
        r.spec.name,
        r.clicks,
        r.injected,
        r.configs.len(),
        r.rounds,
        if r.quick { " [quick]" } else { "" }
    );
    let _ = writeln!(
        out,
        "{:<42} {:>12} {:>10} {:>5} {:>12} {:>14}",
        "config", "fp_rate", "fp_model", "fn", "mem_bits", "clicks/s"
    );
    for o in &r.configs {
        let label = if o.point.algo == "auto" {
            format!("{} (auto->{})", o.point.label(), o.resolved_algo)
        } else {
            o.point.label()
        };
        let _ = writeln!(
            out,
            "{:<42} {:>12.3e} {:>10} {:>5} {:>12} {:>14.0}",
            label,
            o.fp_rate,
            o.fp_model
                .map_or_else(|| "-".to_owned(), |m| format!("{m:.1e}")),
            o.false_negatives,
            o.memory_bits,
            o.clicks_per_sec
        );
    }
    let _ = writeln!(out, "\n# compare groups by `{}`", r.spec.sweep.group_by);
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>14} {:>12} {:>12} {:>12} {:>7}",
        "group", "configs", "best clicks/s", "min fp", "max fp", "min bits", "fn<=fp"
    );
    for g in &r.groups {
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>14.0} {:>12.3e} {:>12.3e} {:>12} {:>7}",
            g.value,
            g.configs,
            g.best_clicks_per_sec,
            g.min_fp_rate,
            g.max_fp_rate,
            g.min_memory_bits,
            if g.fn_within_fp_bound { "yes" } else { "NO" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
[scenario]
name = "sweep-unit"
seed = 7
clicks = 6000

[window]
model = "count"
n = 1024

[traffic]
publishers = 4
ads = 16

[[traffic.mix]]
kind = "unique"
weight = 0.8

[[traffic.mix]]
kind = "zipf"
weight = 0.2
universe = 500
skew = 1.0

[inject]
rate = 0.05
max_lag = 256

[sweep]
algo = ["tbf", "gbf", "auto"]
cells_per_element = [14]
k = [8]
sub_windows = [8]
layout = ["scattered"]
shards = [1, 2]
batch = [128]
target_fp = 0.01
group_by = "algo"
"#;

    fn quick() -> SweepOptions {
        SweepOptions {
            quick: true,
            rounds: 1,
            max_clicks: Some(6_000),
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_bounds_misses_by_false_positives() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let report = run(&spec, &quick()).unwrap();
        assert_eq!(report.configs.len(), 3 * 2);
        assert!(report.injected > 100, "injection too rare");
        for o in &report.configs {
            assert!(o.memory_bits > 0);
            assert!(o.clicks_per_sec > 0.0);
            assert!(
                o.duplicates > 0,
                "{}: oracle saw no duplicates",
                o.point.label()
            );
            if o.point.shards == 1 {
                // Every miss must be pre-paid by a false positive on
                // the same id (FP suppresses the insert).
                assert!(
                    o.false_negatives <= o.false_positives,
                    "{}: {} misses > {} false positives",
                    o.point.label(),
                    o.false_negatives,
                    o.false_positives
                );
            }
            if o.point.algo == "auto" {
                assert!(o.auto_predicted_fp.is_some());
                assert_ne!(o.resolved_algo, "auto");
            }
        }
        assert_eq!(report.groups.len(), 3);
        assert!(report.groups.iter().all(|g| g.configs == 2));
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let report = run(&spec, &quick()).unwrap();
        let json = report_json(&report);
        assert!(json.contains("\"schema\": \"cfd-bench-sweep/1\""));
        assert!(json.contains("\"groups\""));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dependency set.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = render_table(&report);
        assert!(table.contains("compare groups"));
    }

    #[test]
    fn timed_specs_sweep_time_backends() {
        let spec_text = SPEC
            .replace(
                "model = \"count\"\nn = 1024",
                "model = \"time\"\nn = 1024\nwindow_units = 16\nsub_units = 2\nunit_ticks = 64",
            )
            .replace(
                "algo = [\"tbf\", \"gbf\", \"auto\"]",
                "algo = [\"time-tbf\", \"time-gbf\", \"auto\"]",
            );
        let spec = ScenarioSpec::parse(&spec_text).unwrap();
        let report = run(&spec, &quick()).unwrap();
        assert_eq!(report.configs.len(), 6);
        for o in &report.configs {
            assert!(o.resolved_algo.starts_with("time-"), "{}", o.resolved_algo);
            if o.point.shards == 1 {
                assert!(
                    o.false_negatives <= o.false_positives,
                    "{}: fn {} > fp {}",
                    o.point.label(),
                    o.false_negatives,
                    o.false_positives
                );
            }
        }
    }

    #[test]
    fn count_spec_rejects_time_backends_by_name() {
        let spec_text = SPEC.replace(
            "algo = [\"tbf\", \"gbf\", \"auto\"]",
            "algo = [\"time-tbf\"]",
        );
        let spec = ScenarioSpec::parse(&spec_text).unwrap();
        let err = run(&spec, &quick()).unwrap_err();
        assert!(err.contains("sweep.algo"), "{err}");
        // And arena is routed to its own harness.
        let spec_text = SPEC.replace("algo = [\"tbf\", \"gbf\", \"auto\"]", "algo = [\"arena\"]");
        let spec = ScenarioSpec::parse(&spec_text).unwrap();
        assert!(run(&spec, &quick()).unwrap_err().contains("sweep.algo"));
    }
}
