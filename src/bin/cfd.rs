//! `cfd` — command-line front-end for the click-fraud detection suite.
//!
//! ```text
//! cfd generate --kind botnet --count 100000 --out clicks.cfdt
//! cfd detect   --algo tbf --window 8192 --trace clicks.cfdt --score-publishers
//! cfd run      --algo tbf --kind botnet --count 1000000 --shards 4 --metrics
//! cfd size     --algo gbf --window 1048576 --sub-windows 8 --target-fp 0.001
//! ```
//!
//! The trace format is the `CFDT` binary of `cfd_stream::trace`; every
//! run is deterministic for a given `--seed`. `cfd run` drives the full
//! concurrent billing pipeline and, with `--metrics[=millis]`, prints
//! periodic telemetry snapshots to stderr (the metric catalog lives in
//! `docs/OBSERVABILITY.md`).

use cfd_adnet::{
    replay_client, run_sharded_pipeline, run_sharded_pipeline_instrumented,
    run_timed_sharded_pipeline, run_timed_sharded_pipeline_instrumented, serve, Advertiser,
    AdvertiserId, Campaign, ClientConfig, DrainControl, Endpoint, FraudScorer, PipelineConfig,
    PipelineTelemetry, ServeConfig, ServeInstruments, ServeTelemetry, ServerState, Transport,
};
use cfd_core::config::ProbeLayout;
use cfd_core::registry::{BackendGeometry, DetectorBackend, MemorySpec};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{TimeGbf, TimeGbfConfig, TimeTbf, TimeTbfConfig};
use cfd_stream::{
    read_trace, write_trace, AdId, BotnetConfig, BotnetStream, Click, CoalitionConfig,
    CoalitionStream, CrawlerStream, DuplicateInjector, FlashCrowdConfig, FlashCrowdStream,
    UniqueClickStream,
};
use cfd_telemetry::{Registry as TelemetryRegistry, Reporter, SnapshotFormat};
use cfd_windows::{
    DuplicateDetector, ExactSlidingDedup, ObservableDetector, StreamSummary,
    TimedDuplicateDetector, TimedObservableDetector,
};
use click_fraud_detection::{cli, sweep};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// The usage text with the `--algo` list spliced in from the backend
/// registry (so help can never drift from the registered backends) and
/// the gateway blocks spliced from [`cli`] (so help can never drift
/// from `README.md`, which embeds the same constants verbatim).
fn usage() -> String {
    USAGE_TEMPLATE
        .replace("{algos}", &cfd_core::registry::algo_list())
        .replace("{serve}", cli::SERVE_USAGE)
        .replace("{replay}", cli::REPLAY_USAGE)
        .replace("{sweep}", cli::SWEEP_USAGE)
}

const USAGE_TEMPLATE: &str = "\
usage: cfd <command> [options]

commands:
  generate   synthesize a click trace
             --kind unique|duplicates|botnet|coalition|crawler|flashcrowd
             --count <clicks> [--seed <u64>] --out <file>
  detect     run a duplicate detector over a trace
             --algo {algos}|time-tbf|time-gbf|exact
             --window <N> [--sub-windows <Q>] [--cells-per-element <c>]
             [--k <hashes>] [--seed <u64>] --trace <file>
             [--shards <S>] [--batch <B>] [--layout scattered|blocked]
             [--window-units <U>] [--sub-units <U>] [--unit-ticks <T>]
             [--score-publishers]
             (cells = filter bits for gbf, timestamp entries for tbf;
              default 14, the paper's Fig. 2 ratio; --shards splits the
              keyspace over S detectors of window N/S, --batch sets the
              observe_batch chunk size, default 512; time-tbf/time-gbf
              judge each click at its own trace tick over a wall-clock
              window: window-units units for time-tbf, sub-windows
              sub-windows of sub-units units for time-gbf, each unit
              unit-ticks ticks — there --window sizes the tables as the
              expected clicks per window, and shards keep the full time
              window since they share one clock)
  run        drive the concurrent billing pipeline end to end
             --algo {algos}|time-tbf|time-gbf|exact
             [--window <N>]
             [--sub-windows <Q>] [--cells-per-element <c>] [--k <hashes>]
             [--seed <u64>] [--shards <S>] [--batch <B>] [--queue <Q>]
             [--layout scattered|blocked]
             [--window-units <U>] [--sub-units <U>] [--unit-ticks <T>]
             [--transport ring|channel] [--ring-capacity <batches>]
             [--pin-workers]
             (--trace <file> | [--kind <workload>] [--count <clicks>])
             (--transport picks the inter-stage data plane: pooled SPSC
              rings by default, crossbeam channels as the baseline;
              --ring-capacity overrides --queue as the per-worker ring
              size in batches, rounded up to a power of two;
              --pin-workers pins shard worker i to CPU i, best-effort)
             [--ads <N>] [--report-json <file>]
             [--metrics[=millis]] [--metrics-json]
             (--metrics prints periodic telemetry snapshots to stderr:
              per-shard queue depth, per-stage latency, detector fill +
              online FP estimate; --metrics-json emits JSON lines
              instead of tables; see docs/OBSERVABILITY.md;
              --ads N bills against a fixed registry of N campaigns —
              the same one `cfd serve --ads N` uses — and --report-json
              writes the final report for byte-for-byte comparison)
{serve}
{replay}
{sweep}
  size       memory required for a target false-positive rate
             --algo gbf|tbf|metwally --window <N> [--sub-windows <Q>]
             --target-fp <rate>
  algos      list the registered detector backends (markdown table;
             README.md's algorithm table is generated from this)
  help       print this message";

/// Minimal `--name value` argument map (flags take `true`).
struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got `{arg}`"))?;
            // `--name=value` binds inline; otherwise the next
            // non-option token is the value, and a bare flag is "true".
            if let Some((name, value)) = name.split_once('=') {
                map.insert(name.to_owned(), value.to_owned());
                continue;
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_owned(),
            };
            map.insert(name.to_owned(), value);
        }
        Ok(Self(map))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value `{v}`")),
        }
    }

    fn flag(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Parses a count option that must be at least 1, rejecting zero
    /// (and garbage) with the typed [`cli::UsageError`] instead of
    /// letting a zero-shard router or zero-bit detector budget panic
    /// deeper in the stack.
    fn positive(&self, name: &'static str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => cli::parse_positive(name, raw).map_err(|e| e.to_string()),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&Opts::parse(&args[1..])?),
        Some("detect") => cmd_detect(&Opts::parse(&args[1..])?),
        Some("run") => cmd_run(&Opts::parse(&args[1..])?),
        Some("serve") => cmd_serve(&Opts::parse(&args[1..])?),
        Some("replay-client") => cmd_replay_client(&Opts::parse(&args[1..])?),
        Some("size") => cmd_size(&Opts::parse(&args[1..])?),
        Some("sweep") => cmd_sweep(&Opts::parse(&args[1..])?),
        Some("algos") => {
            print!("{}", cfd_core::registry::markdown_table());
            Ok(())
        }
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Synthesizes `count` clicks of the named workload (shared by
/// `cfd generate` and `cfd run`).
fn synth_clicks(kind: &str, count: usize, seed: u64) -> Result<Vec<Click>, String> {
    Ok(match kind {
        "unique" => UniqueClickStream::new(seed, 16, 64).take(count).collect(),
        "duplicates" => {
            DuplicateInjector::new(UniqueClickStream::new(seed, 16, 64), 0.25, 5_000, seed ^ 1)
                .take(count)
                .collect()
        }
        "botnet" => BotnetStream::new(
            BotnetConfig {
                seed,
                ..BotnetConfig::default()
            },
            16,
            64,
        )
        .take(count)
        .map(|c| c.click)
        .collect(),
        "coalition" => CoalitionStream::new(CoalitionConfig {
            seed,
            ..CoalitionConfig::default()
        })
        .take(count)
        .map(|c| c.click)
        .collect(),
        "crawler" => CrawlerStream::new(8, 32, 10, seed).take(count).collect(),
        "flashcrowd" => FlashCrowdStream::new(FlashCrowdConfig {
            seed,
            ..FlashCrowdConfig::default()
        })
        .take(count)
        .map(|c| c.click)
        .collect(),
        other => return Err(format!("--kind: unknown workload `{other}`")),
    })
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let kind = opts.required("kind")?.to_owned();
    let count: usize = opts.parse_num("count", 100_000)?;
    let seed: u64 = opts.parse_num("seed", 0)?;
    let out = opts.required("out")?.to_owned();

    let clicks = synth_clicks(&kind, count, seed)?;
    let buf = write_trace(&clicks);
    std::fs::write(&out, &buf).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {count} clicks ({} bytes) to {out}", buf.len());
    Ok(())
}

/// The detector-shaping options shared by `cmd_detect` and `cmd_run`,
/// parsed once so the count and timed builders agree on every knob.
struct DetectorSpec {
    algo: String,
    window: usize,
    q: usize,
    cells_per_element: usize,
    k: usize,
    seed: u64,
    layout: ProbeLayout,
}

impl DetectorSpec {
    fn parse(opts: &Opts, algo: &str) -> Result<Self, String> {
        Ok(Self {
            algo: algo.to_owned(),
            // A zero window or zero cells-per-element would hand the
            // registry a zero-bit memory budget (for the arena backend,
            // a zero budget for every tenant) — reject it up front.
            window: opts.positive("window", 1 << 16)?,
            q: opts.parse_num("sub-windows", 8)?,
            cells_per_element: opts.positive("cells-per-element", 14)?,
            k: opts.parse_num("k", 10)?,
            seed: opts.parse_num("seed", 0)?,
            layout: parse_layout(opts)?,
        })
    }

    /// `true` for the time-based-window algorithms, which judge each
    /// click at its own trace tick rather than by arrival count.
    fn is_timed(&self) -> bool {
        matches!(self.algo.as_str(), "time-tbf" | "time-gbf")
    }
}

/// The time-window geometry for `time-tbf` / `time-gbf`. The defaults
/// give a 65 536-tick window either way (64 units, or 8 sub-windows of
/// 8 units, of 1024 ticks) — the same span as the default count window
/// on the built-in one-click-per-tick workloads.
struct TimedParams {
    window_units: u64,
    sub_units: u64,
    unit_ticks: u64,
}

impl TimedParams {
    fn parse(opts: &Opts) -> Result<Self, String> {
        let p = Self {
            window_units: opts.parse_num("window-units", 64)?,
            sub_units: opts.parse_num("sub-units", 8)?,
            unit_ticks: opts.parse_num("unit-ticks", 1024)?,
        };
        if p.window_units == 0 || p.sub_units == 0 || p.unit_ticks == 0 {
            return Err("--window-units, --sub-units, and --unit-ticks must be at least 1".into());
        }
        Ok(p)
    }
}

/// Builds one detector of count window `window` for `cmd_detect` /
/// `cmd_run` (the caller passes the per-shard window when sharding).
/// The boxed trait object carries [`ObservableDetector`] so the
/// instrumented pipeline can also poll detector health through it.
///
/// Every Bloom-style backend resolves through the registry
/// (`cfd_core::registry`); only the `exact` oracle — which needs raw
/// ids, not hashes — is built here directly.
fn build_detector(
    spec: &DetectorSpec,
    window: usize,
) -> Result<Box<dyn ObservableDetector + Send>, String> {
    if spec.algo == "exact" {
        if spec.layout == ProbeLayout::Blocked {
            return Err("--layout blocked needs a Bloom-style detector, not `exact`".into());
        }
        return Ok(Box::new(ExactSlidingDedup::new(window)));
    }
    let geo = BackendGeometry::new(window, MemorySpec::CellsPerElement(spec.cells_per_element))
        .with_sub_windows(spec.q)
        .with_hash_count(spec.k)
        .with_seed(spec.seed)
        .with_probe(spec.layout);
    let backend =
        cfd_core::registry::build(&spec.algo, &geo).map_err(|e| format!("--algo: {e}"))?;
    Ok(Box::new(backend))
}

/// Builds one time-based detector. `window` is the *capacity* (expected
/// clicks per time window) and only sizes the tables; the window itself
/// is wall-clock, from `timed`.
fn build_timed_detector(
    spec: &DetectorSpec,
    window: usize,
    timed: &TimedParams,
) -> Result<Box<dyn TimedObservableDetector + Send>, String> {
    let &DetectorSpec {
        q,
        cells_per_element,
        k,
        seed,
        layout,
        ..
    } = spec;
    Ok(match spec.algo.as_str() {
        "time-tbf" => Box::new(
            TimeTbf::new(
                TimeTbfConfig::new(
                    timed.window_units,
                    timed.unit_ticks,
                    window * cells_per_element,
                    k,
                    seed,
                )
                .and_then(|c| c.with_probe(layout))
                .map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?,
        ),
        "time-gbf" => Box::new(
            TimeGbf::new(
                TimeGbfConfig::new(
                    q,
                    timed.sub_units,
                    timed.unit_ticks,
                    window.div_ceil(q) * cells_per_element,
                    k,
                    seed,
                )
                .and_then(|c| c.with_probe(layout))
                .map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?,
        ),
        other => return Err(format!("`{other}` is not a time-based detector")),
    })
}

/// Builds the sharded composition of a time-based algorithm. Routing is
/// tick-blind and every shard shares one wall clock, so each shard keeps
/// the *full* time window (no `per_shard_window` rescaling); what splits
/// across shards is memory — each shard's tables are sized for its
/// `1/S` share of the expected clicks.
fn build_timed_sharded(
    spec: &DetectorSpec,
    timed: &TimedParams,
    shards: usize,
) -> Result<ShardedDetector<Box<dyn TimedObservableDetector + Send>>, String> {
    let capacity = spec.window.div_ceil(shards);
    let mut inner = Vec::with_capacity(shards);
    for _ in 0..shards {
        inner.push(build_timed_detector(spec, capacity, timed)?);
    }
    ShardedDetector::new(spec.seed, inner).map_err(|e| e.to_string())
}

/// Parses `--layout scattered|blocked` (default scattered).
fn parse_layout(opts: &Opts) -> Result<ProbeLayout, String> {
    match opts.get("layout").unwrap_or("scattered") {
        "scattered" => Ok(ProbeLayout::Scattered),
        "blocked" => Ok(ProbeLayout::Blocked),
        other => Err(format!(
            "--layout: `{other}` (accepted: scattered, blocked)"
        )),
    }
}

fn cmd_detect(opts: &Opts) -> Result<(), String> {
    let algo = opts.required("algo")?.to_owned();
    let spec = DetectorSpec::parse(opts, &algo)?;
    let shards: usize = opts.positive("shards", 1)?;
    let batch: usize = opts.positive("batch", 512)?;
    let trace_path = opts.required("trace")?.to_owned();

    let buf = std::fs::read(&trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let clicks = read_trace(&buf).map_err(|e| e.to_string())?;

    if spec.is_timed() {
        let timed = TimedParams::parse(opts)?;
        return detect_timed(opts, &spec, &timed, shards, batch, &clicks);
    }

    // With --shards S, the keyspace is split over S detectors of window
    // N/S (same total memory, soft window edge — see
    // `cfd_analysis::sharding`); the routing seed is decorrelated from
    // the probe seed by `ShardRouter` itself.
    let mut detector: Box<dyn ObservableDetector + Send> = if shards > 1 {
        let n_s = per_shard_window(spec.window, shards);
        let mut inner = Vec::with_capacity(shards);
        for _ in 0..shards {
            inner.push(build_detector(&spec, n_s)?);
        }
        Box::new(ShardedDetector::new(spec.seed, inner).map_err(|e| e.to_string())?)
    } else {
        build_detector(&spec, spec.window)?
    };

    let mut summary = StreamSummary::default();
    let mut scorer = FraudScorer::new();
    let mut keys: Vec<[u8; 16]> = Vec::with_capacity(batch);
    for chunk in clicks.chunks(batch) {
        keys.clear();
        keys.extend(chunk.iter().map(Click::key));
        let refs: Vec<&[u8]> = keys.iter().map(<[u8; 16]>::as_slice).collect();
        for (click, v) in chunk.iter().zip(detector.observe_batch(&refs)) {
            summary.record(v);
            scorer.record(click, v);
        }
    }

    println!("detector : {} over {}", detector.name(), detector.window());
    if shards > 1 {
        println!(
            "shards   : {shards} x {algo} with per-shard window {}",
            per_shard_window(spec.window, shards)
        );
    }
    println!(
        "memory   : {:.1} KiB",
        detector.memory_bits() as f64 / 8.0 / 1024.0
    );
    print_stream_report(opts, &summary, &scorer);
    Ok(())
}

/// The timed flavor of `cmd_detect`: same report, but every click is
/// judged at its own trace tick through `observe_batch_at`.
fn detect_timed(
    opts: &Opts,
    spec: &DetectorSpec,
    timed: &TimedParams,
    shards: usize,
    batch: usize,
    clicks: &[Click],
) -> Result<(), String> {
    let mut detector: Box<dyn TimedObservableDetector + Send> = if shards > 1 {
        Box::new(build_timed_sharded(spec, timed, shards)?)
    } else {
        build_timed_detector(spec, spec.window, timed)?
    };

    let mut summary = StreamSummary::default();
    let mut scorer = FraudScorer::new();
    let mut keys: Vec<[u8; 16]> = Vec::with_capacity(batch);
    let mut ticks: Vec<u64> = Vec::with_capacity(batch);
    for chunk in clicks.chunks(batch) {
        keys.clear();
        keys.extend(chunk.iter().map(Click::key));
        ticks.clear();
        ticks.extend(chunk.iter().map(|c| c.tick));
        let refs: Vec<&[u8]> = keys.iter().map(<[u8; 16]>::as_slice).collect();
        for (click, v) in chunk.iter().zip(detector.observe_batch_at(&refs, &ticks)) {
            summary.record(v);
            scorer.record(click, v);
        }
    }

    println!("detector : {} over {}", detector.name(), detector.window());
    if shards > 1 {
        println!(
            "shards   : {shards} x {} sharing the global time window",
            spec.algo
        );
    }
    println!(
        "memory   : {:.1} KiB",
        detector.memory_bits() as f64 / 8.0 / 1024.0
    );
    print_stream_report(opts, &summary, &scorer);
    Ok(())
}

/// Shared tail of `cmd_detect`: stream totals plus the optional
/// publisher fraud-score table.
fn print_stream_report(opts: &Opts, summary: &StreamSummary, scorer: &FraudScorer) {
    println!("clicks   : {}", summary.total());
    println!(
        "duplicate: {} ({:.3}%)",
        summary.duplicates,
        100.0 * summary.duplicate_rate()
    );
    println!("distinct : {}", summary.distinct);

    if opts.flag("score-publishers") {
        println!();
        println!("publisher fraud scores (z >= 3 flagged):");
        println!(
            "{:>10} {:>10} {:>10} {:>8} {:>8}",
            "publisher", "clicks", "blocked", "rate", "z"
        );
        for s in scorer.scores(100) {
            println!(
                "{:>10} {:>10} {:>10} {:>8.4} {:>8.2}{}",
                s.publisher.0,
                s.clicks,
                s.blocked,
                s.rate,
                s.z_score,
                if s.is_suspicious(3.0) {
                    "  <-- SUSPICIOUS"
                } else {
                    ""
                }
            );
        }
    }
}

/// Parses `--transport ring|channel` (default ring).
fn parse_transport(opts: &Opts) -> Result<Transport, String> {
    match opts.get("transport").unwrap_or("ring") {
        "ring" => Ok(Transport::Ring),
        "channel" => Ok(Transport::Channel),
        other => Err(format!("--transport: `{other}` (accepted: ring, channel)")),
    }
}

/// The fixed billing registry behind `--ads N`: one advertiser with an
/// effectively unlimited budget and campaigns `0..N` at a flat CPC.
/// `cfd run --ads N` and `cfd serve --ads N` build this identically, so
/// their `--report-json` outputs are comparable byte for byte.
fn fixed_registry(ads: u32) -> cfd_adnet::Registry {
    let mut registry = cfd_adnet::Registry::new();
    registry.add_advertiser(Advertiser::new(AdvertiserId(1), "advertiser", u64::MAX / 4));
    for ad in 0..ads {
        registry
            .add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser just registered");
    }
    registry
}

/// A billing registry covering every ad that appears in `clicks`: one
/// advertiser with an effectively unlimited budget, one campaign per
/// distinct ad at a flat CPC.
fn billing_registry(clicks: &[Click]) -> cfd_adnet::Registry {
    let mut ads: Vec<_> = clicks.iter().map(|c| c.id.ad).collect();
    ads.sort_unstable();
    ads.dedup();
    let mut registry = cfd_adnet::Registry::new();
    registry.add_advertiser(Advertiser::new(AdvertiserId(1), "advertiser", u64::MAX / 4));
    for ad in ads {
        registry
            .add_campaign(Campaign {
                ad,
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser just registered");
    }
    registry
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let algo = opts.get("algo").unwrap_or("tbf").to_owned();
    let spec = DetectorSpec::parse(opts, &algo)?;
    let seed = spec.seed;
    let shards: usize = opts.positive("shards", 4)?;
    let batch: usize = opts.positive("batch", 512)?;
    let queue: usize = opts.positive("queue", 16)?;
    let transport = parse_transport(opts)?;
    let ring_capacity: usize = opts.positive("ring-capacity", queue)?;
    let pin_workers = opts.flag("pin-workers");

    let clicks: Vec<Click> = match opts.get("trace") {
        Some(path) => {
            let buf = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            read_trace(&buf).map_err(|e| e.to_string())?
        }
        None => {
            let kind = opts.get("kind").unwrap_or("botnet");
            let count: usize = opts.parse_num("count", 1_000_000)?;
            synth_clicks(kind, count, seed)?
        }
    };

    // `--metrics` alone means a 1s cadence; `--metrics=250` (or
    // `--metrics 250`) overrides it. `--metrics-json` implies metrics.
    let interval_ms: u64 = match opts.get("metrics") {
        None => 1_000,
        Some("true") => 1_000,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--metrics: bad interval `{v}`"))?,
    };
    let metrics_on = opts.flag("metrics") || opts.flag("metrics-json");
    let format = if opts.flag("metrics-json") {
        SnapshotFormat::JsonLines
    } else {
        SnapshotFormat::Table
    };

    // Count and timed detectors share this scaffold: build the sharded
    // composition (the 1-shard case still goes through the sharded
    // pipeline — one worker, trivial router, same telemetry), then
    // dispatch to the matching pipeline entry point below.
    enum Runner {
        Count(ShardedDetector<Box<dyn ObservableDetector + Send>>),
        Timed(ShardedDetector<Box<dyn TimedObservableDetector + Send>>),
    }

    let mut timed_window_ticks = None;
    let runner = if spec.is_timed() {
        let timed = TimedParams::parse(opts)?;
        timed_window_ticks = Some(match spec.algo.as_str() {
            "time-tbf" => timed.window_units * timed.unit_ticks,
            _ => spec.q as u64 * timed.sub_units * timed.unit_ticks,
        });
        Runner::Timed(build_timed_sharded(&spec, &timed, shards)?)
    } else {
        let n_s = per_shard_window(spec.window, shards);
        let mut inner = Vec::with_capacity(shards);
        for _ in 0..shards {
            inner.push(build_detector(&spec, n_s)?);
        }
        Runner::Count(ShardedDetector::new(seed, inner).map_err(|e| e.to_string())?)
    };
    let registry = match opts.get("ads") {
        Some(_) => fixed_registry(opts.parse_num("ads", 64)?),
        None => billing_registry(&clicks),
    };
    let config = PipelineConfig {
        batch,
        queue: match transport {
            Transport::Ring => ring_capacity,
            Transport::Channel => queue,
        },
        transport,
        pin_workers,
    };
    let total = clicks.len();

    let started = Instant::now();
    let outcome = if metrics_on {
        let metrics = Arc::new(TelemetryRegistry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, shards));
        let on_tick = {
            let telemetry = Arc::clone(&telemetry);
            move || telemetry.request_detector_health()
        };
        let reporter = Reporter::spawn(
            Arc::clone(&metrics),
            Duration::from_millis(interval_ms.max(1)),
            format,
            on_tick,
        );
        let outcome = match runner {
            Runner::Count(d) => {
                run_sharded_pipeline_instrumented(d, registry, clicks, config, None, telemetry)
            }
            Runner::Timed(d) => run_timed_sharded_pipeline_instrumented(
                d, registry, clicks, config, None, telemetry,
            ),
        };
        reporter.stop(); // final snapshot, even on sub-interval runs
        outcome
    } else {
        match runner {
            Runner::Count(d) => run_sharded_pipeline(d, registry, clicks, config, None),
            Runner::Timed(d) => run_timed_sharded_pipeline(d, registry, clicks, config, None),
        }
    };
    let elapsed = started.elapsed();

    let r = &outcome.report;
    match timed_window_ticks {
        Some(t) => println!(
            "pipeline : {} over a {t}-tick time window ({shards} shards)",
            r.detector
        ),
        None => println!(
            "pipeline : {} over {} ({shards} shards)",
            r.detector, spec.window
        ),
    }
    println!(
        "memory   : {:.1} KiB",
        r.detector_memory_bits as f64 / 8.0 / 1024.0
    );
    println!(
        "clicks   : {total} in {:.2}s ({:.0} clicks/s)",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!("charged  : {}", r.charged);
    println!(
        "blocked  : {} duplicates ({} micros saved)",
        r.duplicates_blocked, r.savings_micros
    );
    println!("revenue  : {} micros", r.revenue_micros);
    for (i, h) in outcome.health.iter().enumerate() {
        println!(
            "shard {i}  : fill={:.4} est_fp={:.2e} dup_rate={:.4} elements={}",
            h.mean_fill(),
            h.estimated_fp,
            h.duplicate_rate(),
            h.observed_elements
        );
    }
    if let Some(path) = opts.get("report-json") {
        std::fs::write(path, outcome.report.to_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Set by the `SIGTERM`/`SIGINT` handler; a watcher thread inside
/// `cmd_serve` turns it into a [`DrainControl`] drain request.
static SIG_DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_sig: i32) {
    SIG_DRAIN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let endpoint = Endpoint::parse(opts.required("listen")?).map_err(|e| e.to_string())?;
    let algo = opts.get("algo").unwrap_or("tbf").to_owned();
    let spec = DetectorSpec::parse(opts, &algo)?;
    if spec.is_timed() || algo == "exact" {
        return Err(
            "cfd serve checkpoints its detector; pick a registry backend (`cfd algos`)".into(),
        );
    }
    let shards: usize = opts.positive("shards", 4)?;
    let batch: usize = opts.positive("batch", 512)?;
    let queue: usize = opts.positive("queue", 16)?;
    let transport = parse_transport(opts)?;
    let ads: u32 = opts.parse_num("ads", 64)?;
    let hub_batches: usize = opts.positive("hub-batches", 64)?;
    let checkpoint = opts.get("checkpoint").map(PathBuf::from);
    let checkpoint_every: u64 = opts.parse_num("checkpoint-every", 0)?;

    // A restart has only the checkpoint file: detector tables, billing
    // ledger, scorer tallies, and the resume position all come from it.
    let state: ServerState<Box<dyn DetectorBackend>> = if opts.flag("resume") {
        let path = checkpoint.as_deref().ok_or("--resume needs --checkpoint")?;
        let state = ServerState::read_checkpoint(path).map_err(|e| e.to_string())?;
        eprintln!(
            "resumed from {} at position {}",
            path.display(),
            state.position
        );
        state
    } else {
        let n_s = per_shard_window(spec.window, shards);
        let geo = BackendGeometry::new(n_s, MemorySpec::CellsPerElement(spec.cells_per_element))
            .with_sub_windows(spec.q)
            .with_hash_count(spec.k)
            .with_seed(spec.seed)
            .with_probe(spec.layout);
        let detector = ShardedDetector::from_fn(spec.seed, shards, |_| {
            cfd_core::registry::build(&algo, &geo)
        })
        .map_err(|e| format!("--algo: {e}"))?;
        ServerState::new(detector, fixed_registry(ads))
    };

    let interval_ms: u64 = match opts.get("metrics") {
        None | Some("true") => 1_000,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--metrics: bad interval `{v}`"))?,
    };
    let metrics_on = opts.flag("metrics") || opts.flag("metrics-json");
    let format = if opts.flag("metrics-json") {
        SnapshotFormat::JsonLines
    } else {
        SnapshotFormat::Table
    };
    let metrics = Arc::new(TelemetryRegistry::new());
    let pipeline_t = metrics_on.then(|| Arc::new(PipelineTelemetry::new(&metrics, shards)));
    let instruments = ServeInstruments {
        serve: Some(Arc::new(ServeTelemetry::new(&metrics))),
        pipeline: pipeline_t.clone(),
        progress: None,
    };
    let reporter = metrics_on.then(|| {
        let on_tick = {
            let pipeline_t = pipeline_t.clone();
            move || {
                if let Some(t) = &pipeline_t {
                    t.request_detector_health();
                }
            }
        };
        Reporter::spawn(
            Arc::clone(&metrics),
            Duration::from_millis(interval_ms.max(1)),
            format,
            on_tick,
        )
    });

    let config = ServeConfig {
        pipeline: PipelineConfig {
            batch,
            queue,
            transport,
            pin_workers: opts.flag("pin-workers"),
        },
        checkpoint_path: checkpoint,
        checkpoint_every,
        hub_batches,
        ..ServeConfig::default()
    };

    // SIGTERM/SIGINT request a graceful drain: stop accepting, finish
    // what is in flight, write a final checkpoint and report.
    unsafe {
        signal(SIGTERM, on_drain_signal);
        signal(SIGINT, on_drain_signal);
    }
    let control = DrainControl::new();
    let done = AtomicBool::new(false);
    eprintln!("serving on {endpoint} (SIGTERM drains gracefully)");
    let started = Instant::now();
    let outcome = thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if SIG_DRAIN.load(Ordering::SeqCst) {
                    control.request_drain();
                    break;
                }
                thread::sleep(Duration::from_millis(50));
            }
        });
        let outcome = serve(state, &endpoint, &config, &control, &instruments);
        done.store(true, Ordering::Release);
        outcome
    })
    .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if let Some(r) = reporter {
        r.stop();
    }

    let r = &outcome.report;
    println!("gateway  : {} on {endpoint} ({shards} shards)", r.detector);
    println!("position : {} clicks accepted", outcome.state.position);
    println!(
        "clicks   : {} in {:.2}s ({:.0} clicks/s)",
        r.clicks,
        elapsed.as_secs_f64(),
        r.clicks as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!("charged  : {}", r.charged);
    println!(
        "blocked  : {} duplicates ({} micros saved)",
        r.duplicates_blocked, r.savings_micros
    );
    println!("revenue  : {} micros", r.revenue_micros);
    for (i, h) in outcome.health.iter().enumerate() {
        println!(
            "shard {i}  : fill={:.4} est_fp={:.2e} dup_rate={:.4} elements={}",
            h.mean_fill(),
            h.estimated_fp,
            h.duplicate_rate(),
            h.observed_elements
        );
    }
    if let Some(path) = opts.get("report-json") {
        std::fs::write(path, r.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

fn cmd_replay_client(opts: &Opts) -> Result<(), String> {
    let endpoint = Endpoint::parse(opts.required("connect")?).map_err(|e| e.to_string())?;
    let path = opts.required("trace")?.to_owned();
    let buf = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let clicks = read_trace(&buf).map_err(|e| e.to_string())?;

    let limit = match opts.get("limit") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("--limit: bad value `{v}`"))?),
    };
    let throttle = match opts.get("throttle-ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(
            v.parse()
                .map_err(|_| format!("--throttle-ms: bad value `{v}`"))?,
        )),
    };
    let config = ClientConfig {
        frame_clicks: opts.parse_num("frame-clicks", 256)?,
        limit,
        drain: opts.flag("drain"),
        connect_attempts: opts.parse_num("retries", 50)?,
        throttle,
        ..ClientConfig::default()
    };
    let stats = replay_client(&endpoint, &clicks, &config).map_err(|e| e.to_string())?;
    println!(
        "connected : {endpoint} (server position {})",
        stats.server_position
    );
    println!(
        "sent      : {} clicks ({} skipped as already processed)",
        stats.sent_clicks, stats.skipped_clicks
    );
    println!(
        "retries   : {} connect retries, {} mid-stream reconnects",
        stats.connect_retries, stats.reconnects
    );
    Ok(())
}

fn cmd_size(opts: &Opts) -> Result<(), String> {
    let algo = opts.required("algo")?.to_owned();
    let window: usize = opts.parse_num("window", 1 << 20)?;
    let q: usize = opts.parse_num("sub-windows", 8)?;
    let target: f64 = opts.parse_num("target-fp", 0.001)?;
    if !(target > 0.0 && target < 1.0) {
        return Err("--target-fp must be in (0, 1)".into());
    }

    let sizing = match algo.as_str() {
        "gbf" => cfd_analysis::sizing::gbf_sizing(window, q, target),
        "tbf" => cfd_analysis::sizing::tbf_sizing(window, target),
        "metwally" => cfd_analysis::sizing::counting_scheme_sizing(window, q, target),
        other => return Err(format!("--algo: unknown detector `{other}`")),
    };
    println!("algorithm    : {algo}");
    println!("window       : {window} elements");
    if algo != "tbf" {
        println!("sub-windows  : {q}");
    }
    println!("target FP    : {target}");
    println!("table size m : {}", sizing.m);
    println!("hash count k : {}", sizing.k);
    println!("predicted FP : {:.3e}", sizing.predicted_fp);
    println!(
        "total memory : {:.1} KiB",
        sizing.total_bits as f64 / 8.0 / 1024.0
    );
    Ok(())
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let path = opts
        .get("scenario")
        .ok_or_else(|| cli::UsageError::Missing("scenario").to_string())?;
    let spec = cfd_stream::scenario::ScenarioSpec::from_path(path.as_ref()).map_err(|e| {
        cli::UsageError::Invalid {
            option: "scenario",
            reason: e.to_string(),
        }
        .to_string()
    })?;
    let sweep_opts = if opts.flag("quick") {
        sweep::SweepOptions::quick()
    } else {
        sweep::SweepOptions::full()
    };
    eprintln!(
        "sweeping `{}`: {} grid points over {} clicks{}",
        spec.name,
        spec.grid().len(),
        spec.clicks,
        if sweep_opts.quick { " [quick]" } else { "" }
    );
    let report = sweep::run(&spec, &sweep_opts)?;
    if opts.flag("table") || !opts.flag("out") {
        print!("{}", sweep::render_table(&report));
    }
    if let Some(out) = opts.get("out") {
        std::fs::write(out, sweep::report_json(&report))
            .map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}
