//! Canonical usage text and typed usage errors for the `cfd` binary.
//!
//! The usage constants are the **single source** of the `cfd serve` /
//! `cfd replay-client` help: the binary splices them into its usage
//! template, and `tests/readme_sync.rs` asserts `README.md` embeds them
//! verbatim — so the CLI help and the README can never drift apart.
//!
//! [`UsageError`] is the typed rejection for malformed option values
//! (`--shards 0`, `--batch 0`, a zero tenant memory budget, unparsable
//! numbers): the binary maps it to its usage-printing error path, and
//! the variants are unit-tested here so a refactor can't silently turn
//! a clean rejection back into a panic.

use std::fmt;

/// A rejected command-line option, with enough structure to test the
/// error paths without string-matching free-form prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsageError {
    /// An option that must be at least 1 was zero (`--shards 0`,
    /// `--batch 0`, `--window 0`, `--cells-per-element 0` — the last
    /// two would size a detector, or every tenant of an arena, at a
    /// zero-bit memory budget).
    Zero(&'static str),
    /// An option's value failed to parse.
    Bad {
        /// The option name, without the `--` prefix.
        option: &'static str,
        /// The rejected raw value.
        value: String,
    },
    /// A required option was not given.
    Missing(&'static str),
    /// An option's value parsed but was rejected for a stated reason
    /// (an unreadable scenario file, a malformed spec, an unknown
    /// enum value).
    Invalid {
        /// The option name, without the `--` prefix.
        option: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// An argument no command recognizes.
    Unknown(String),
    /// An option that requires a value was the last argument.
    MissingValue(&'static str),
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Zero(option) => write!(f, "--{option} must be at least 1"),
            Self::Bad { option, value } => write!(f, "--{option}: bad value `{value}`"),
            Self::Missing(option) => write!(f, "--{option} is required"),
            Self::Invalid { option, reason } => write!(f, "--{option}: {reason}"),
            Self::Unknown(arg) => write!(f, "unrecognized argument `{arg}`"),
            Self::MissingValue(option) => write!(f, "--{option} requires a value"),
        }
    }
}

impl std::error::Error for UsageError {}

/// Validates that an already-parsed count option is at least 1.
///
/// # Errors
///
/// Returns [`UsageError::Zero`] when `value == 0`.
pub fn positive(option: &'static str, value: usize) -> Result<usize, UsageError> {
    if value == 0 {
        Err(UsageError::Zero(option))
    } else {
        Ok(value)
    }
}

/// Parses a count option that must be at least 1.
///
/// # Errors
///
/// Returns [`UsageError::Bad`] when `raw` is not a number and
/// [`UsageError::Zero`] when it parses to 0.
pub fn parse_positive(option: &'static str, raw: &str) -> Result<usize, UsageError> {
    let value: usize = raw.parse().map_err(|_| UsageError::Bad {
        option,
        value: raw.to_owned(),
    })?;
    positive(option, value)
}

/// The `cfd serve` usage block. Spliced into the binary's help text
/// and asserted verbatim in `README.md`.
pub const SERVE_USAGE: &str = "\
  serve      run the long-lived billing gateway over a socket or file
             --listen unix:PATH|tcp:ADDR|tail:FILE
             [--algo <backend>] [--window <N>] [--shards <S>]
             [--sub-windows <Q>] [--cells-per-element <c>] [--k <hashes>]
             [--seed <u64>] [--layout scattered|blocked] [--batch <B>]
             [--queue <Q>] [--transport ring|channel] [--pin-workers]
             [--ads <N>] [--hub-batches <batches>] [--checkpoint <file>]
             [--checkpoint-every <clicks>] [--resume]
             [--report-json <file>] [--metrics[=millis]] [--metrics-json]
             (any `cfd algos` backend; clicks arrive as CFDW wire frames,
              flow through a bounded hub into checkpoint-delimited
              pipeline segments, and the complete billing state is
              persisted after every segment; SIGTERM/SIGINT or a client
              DRAIN frame drains gracefully -- final segment, final
              checkpoint, final report; --resume restarts from
              --checkpoint, and the HELLO position makes clients skip
              everything the checkpoint already covers; --ads N bills
              against the same fixed registry as `cfd run --ads N`, so
              the two reports are comparable byte for byte)";

/// The `cfd replay-client` usage block. Spliced into the binary's help
/// text and asserted verbatim in `README.md`.
pub const REPLAY_USAGE: &str = "\
  replay-client
             stream a recorded trace to a running gateway
             --connect unix:PATH|tcp:ADDR|tail:FILE --trace <file>
             [--frame-clicks <N>] [--limit <clicks>] [--drain]
             [--throttle-ms <millis>] [--retries <attempts>]
             (dials with capped exponential backoff until the server is
              up; every (re)connect reads the server HELLO position and
              resumes from it, so a crashed-and-restarted server never
              double-bills and never misses a click; --drain asks the
              server to shut down once this trace is fully processed)";

/// The `cfd sweep` usage block. Spliced into the binary's help text
/// and asserted verbatim in `README.md`.
pub const SWEEP_USAGE: &str = "\
  sweep      brute-force a scenario's declared detector grid
             --scenario <file.toml> [--quick] [--out <report.json>]
             [--table]
             (compiles the spec's traffic mix into one click stream,
              runs every (algo, cells, k, Q, layout, shards, batch)
              grid point against it -- `algo = \"auto\"` resolves from
              the closed-form FP models -- and writes a
              `cfd-bench-sweep/1` report with per-config accuracy,
              memory, and median throughput plus compare-groups rows;
              `tools/check_bench.py` validates the artifact; --quick
              caps the stream for CI smoke runs)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counts_are_rejected_not_panicked() {
        for option in ["shards", "batch", "queue", "window", "cells-per-element"] {
            let err = positive(option, 0).unwrap_err();
            assert_eq!(err, UsageError::Zero(option));
            assert_eq!(err.to_string(), format!("--{option} must be at least 1"));
        }
    }

    #[test]
    fn positive_counts_pass_through() {
        assert_eq!(positive("shards", 4), Ok(4));
        assert_eq!(parse_positive("batch", "512"), Ok(512));
    }

    #[test]
    fn unparsable_values_name_the_option_and_value() {
        let err = parse_positive("shards", "four").unwrap_err();
        assert_eq!(
            err,
            UsageError::Bad {
                option: "shards",
                value: "four".to_owned(),
            }
        );
        assert_eq!(err.to_string(), "--shards: bad value `four`");
        assert_eq!(
            parse_positive("batch", "0"),
            Err(UsageError::Zero("batch")),
            "`0` parses, then fails the at-least-1 check"
        );
        assert_eq!(
            parse_positive("window", "-3"),
            Err(UsageError::Bad {
                option: "window",
                value: "-3".to_owned(),
            })
        );
    }

    #[test]
    fn structured_variants_render_their_option_names() {
        assert_eq!(
            UsageError::Missing("scenario").to_string(),
            "--scenario is required"
        );
        assert_eq!(
            UsageError::Invalid {
                option: "scenario",
                reason: "nosuch.toml: No such file or directory (os error 2)".to_owned(),
            }
            .to_string(),
            "--scenario: nosuch.toml: No such file or directory (os error 2)"
        );
        assert_eq!(
            UsageError::Unknown("--bogus".to_owned()).to_string(),
            "unrecognized argument `--bogus`"
        );
        assert_eq!(
            UsageError::MissingValue("out").to_string(),
            "--out requires a value"
        );
    }
}
