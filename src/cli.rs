//! Canonical usage text for the `cfd` gateway subcommands.
//!
//! These constants are the **single source** of the `cfd serve` /
//! `cfd replay-client` help: the binary splices them into its usage
//! template, and `tests/readme_sync.rs` asserts `README.md` embeds them
//! verbatim — so the CLI help and the README can never drift apart.

/// The `cfd serve` usage block. Spliced into the binary's help text
/// and asserted verbatim in `README.md`.
pub const SERVE_USAGE: &str = "\
  serve      run the long-lived billing gateway over a socket or file
             --listen unix:PATH|tcp:ADDR|tail:FILE
             [--algo <backend>] [--window <N>] [--shards <S>]
             [--sub-windows <Q>] [--cells-per-element <c>] [--k <hashes>]
             [--seed <u64>] [--layout scattered|blocked] [--batch <B>]
             [--queue <Q>] [--transport ring|channel] [--pin-workers]
             [--ads <N>] [--hub-batches <batches>] [--checkpoint <file>]
             [--checkpoint-every <clicks>] [--resume]
             [--report-json <file>] [--metrics[=millis]] [--metrics-json]
             (any `cfd algos` backend; clicks arrive as CFDW wire frames,
              flow through a bounded hub into checkpoint-delimited
              pipeline segments, and the complete billing state is
              persisted after every segment; SIGTERM/SIGINT or a client
              DRAIN frame drains gracefully -- final segment, final
              checkpoint, final report; --resume restarts from
              --checkpoint, and the HELLO position makes clients skip
              everything the checkpoint already covers; --ads N bills
              against the same fixed registry as `cfd run --ads N`, so
              the two reports are comparable byte for byte)";

/// The `cfd replay-client` usage block. Spliced into the binary's help
/// text and asserted verbatim in `README.md`.
pub const REPLAY_USAGE: &str = "\
  replay-client
             stream a recorded trace to a running gateway
             --connect unix:PATH|tcp:ADDR|tail:FILE --trace <file>
             [--frame-clicks <N>] [--limit <clicks>] [--drain]
             [--throttle-ms <millis>] [--retries <attempts>]
             (dials with capped exponential backoff until the server is
              up; every (re)connect reads the server HELLO position and
              resumes from it, so a crashed-and-restarted server never
              double-bills and never misses a click; --drain asks the
              server to shut down once this trace is fully processed)";
