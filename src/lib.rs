//! # click-fraud-detection
//!
//! A complete Rust reproduction of *Detecting Click Fraud in Pay-Per-Click
//! Streams of Online Advertising Networks* (Zhang & Guan, ICDCS 2008):
//! one-pass, small-memory duplicate-click detection over jumping and
//! sliding windows with **zero false negatives**.
//!
//! This facade crate re-exports the whole suite; the pieces are also
//! usable individually:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] (`cfd-core`) | The paper's contribution: [`prelude::Gbf`], [`prelude::Tbf`], and their time-based / jumping extensions |
//! | [`windows`] (`cfd-windows`) | Window models, the [`prelude::DuplicateDetector`] trait, exact oracles |
//! | [`bloom`] (`cfd-bloom`) | Classical/counting/stable Bloom filters and the Metwally et al. baseline |
//! | [`stream`] (`cfd-stream`) | Click model, workload generators, trace I/O |
//! | [`adnet`] (`cfd-adnet`) | Pay-per-click network simulator with detector-guarded billing |
//! | [`analysis`] (`cfd-analysis`) | Closed-form false-positive models and sizing solvers |
//! | [`telemetry`] (`cfd-telemetry`) | Lock-free counters/gauges/histograms and detector health (see `docs/OBSERVABILITY.md`) |
//! | [`hash`] / [`bits`] | The hashing and bit-storage substrates |
//!
//! ## Quick start
//!
//! ```rust
//! use click_fraud_detection::prelude::*;
//!
//! # fn main() -> Result<(), cfd_core::ConfigError> {
//! // Detect duplicate clicks over a sliding window of the last 4096
//! // clicks, spending ~14 timestamp entries per window element.
//! let cfg = TbfConfig::builder(4096).entries(4096 * 14).build()?;
//! let mut detector = Tbf::new(cfg)?;
//!
//! assert_eq!(detector.observe(b"203.0.113.9|cookie|ad-17"), Verdict::Distinct);
//! assert_eq!(detector.observe(b"203.0.113.9|cookie|ad-17"), Verdict::Duplicate);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios (botnet attacks, ad-network
//! billing, dual-sided auditing, time-based windows) and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod sweep;

pub use cfd_adnet as adnet;
pub use cfd_analysis as analysis;
pub use cfd_bits as bits;
pub use cfd_bloom as bloom;
pub use cfd_core as core;
pub use cfd_hash as hash;
pub use cfd_stream as stream;
pub use cfd_telemetry as telemetry;
pub use cfd_windows as windows;

/// The most commonly used items in one import.
pub mod prelude {
    pub use cfd_adnet::{AdNetwork, Advertiser, AdvertiserId, Campaign, PipelineTelemetry};
    pub use cfd_core::{
        Gbf, GbfConfig, GbfLayout, JumpingTbf, OpCounters, Tbf, TbfConfig, TimeGbf, TimeTbf,
    };
    pub use cfd_stream::{
        AdId, BotnetConfig, BotnetStream, Click, ClickId, DuplicateInjector, PublisherId,
        UniqueClickStream,
    };
    pub use cfd_telemetry::{DetectorHealth, DetectorStats, Registry as TelemetryRegistry};
    pub use cfd_windows::{
        DuplicateDetector, ExactJumpingDedup, ExactSlidingDedup, ObservableDetector, StreamSummary,
        TimedDuplicateDetector, Verdict, WindowSpec,
    };
}
