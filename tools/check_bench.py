#!/usr/bin/env python3
"""Validate committed BENCH_*.json artifacts against per-schema manifests.

Usage:  python3 tools/check_bench.py FILE [FILE ...]

Each file's ``schema`` field selects a manifest entry describing the
required top-level keys, the required per-config keys, and the gate
checks (correctness gates bind at every scale; speedup gates only bind
on ``"scale": "full"`` runs — quick CI boxes are too noisy to gate).
Exits non-zero with a message naming the file and the failed gate.
"""

import json
import math
import os
import sys


def fail(name, msg):
    print(f"FAIL {name}: {msg}", file=sys.stderr)
    sys.exit(1)


def require_keys(name, obj, keys, where):
    missing = set(keys) - obj.keys()
    if missing:
        fail(name, f"{where} missing keys {sorted(missing)}")


def require_rounds(name, cfg, label, rows, rounds):
    if len(rows) != rounds:
        fail(name, f"{label}: {len(rows)} round samples, expected {rounds}")


def three_sigma(model, clicks):
    return 3 * math.sqrt(max(model * (1 - model), 0.0) / clicks)


# ---------------------------------------------------------------------
# Per-schema gate functions. Each receives the parsed document and the
# file name, and either returns a one-line summary or calls fail().
# ---------------------------------------------------------------------


def gates_throughput(d, name):
    layouts = set()
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-throughput/1"]["config"], c.get("name", "?"))
        require_rounds(name, c, c["name"], c["clicks_per_sec_rounds"], d["rounds"])
        layouts.add(c["layout"])
        if c["layout"] == "blocked":
            model, fp = c["fp_model"], c["fp_measured"]
            if fp > model * 1.1 + three_sigma(model, d["clicks"]):
                fail(name, f'{c["name"]}: measured FP {fp} exceeds model {model} by >10%')
    if layouts != {"scattered", "blocked"}:
        fail(name, f"layouts {sorted(layouts)}, expected scattered+blocked")
    if d["scale"] == "full":
        if not all(d["checks"].values()):
            fail(name, f'checks {d["checks"]}')
        if min(d["speedups"]["tbf"], d["speedups"]["gbf"]) < 1.3:
            fail(name, f'speedups {d["speedups"]}')
    return f'{d["scale"]} scale, {len(d["configs"])} configs, blocked FP within model'


def gates_pipeline(d, name):
    h, p = d["hash"], d["pipeline"]
    if h["lanes"] not in (4, 8):
        fail(name, f'unexpected lane count {h["lanes"]}')
    for label, rows in (
        ("hash.scalar_rounds", h["scalar_rounds"]),
        ("hash.lanes_rounds", h["lanes_rounds"]),
        ("pipeline.channel_rounds", p["channel_rounds"]),
        ("pipeline.ring_rounds", p["ring_rounds"]),
    ):
        require_rounds(name, d, label, rows, d["rounds"])
    if not d["checks"]["transports_agree"]:
        fail(name, "ring and channel reports diverged")
    if not d["checks"]["checksums_agree"]:
        fail(name, "lanes/scalar hash checksums diverged")
    if d["scale"] == "full":
        if not (d["checks"]["hash_speedup_ok"] and h["speedup"] >= 1.3):
            fail(name, f'hash speedup {h["speedup"]}')
        if not (d["checks"]["ring_speedup_ok"] and p["speedup"] >= 1.2):
            fail(name, f'ring speedup {p["speedup"]}')
    return f'{d["scale"]} scale, hash x{h["speedup"]:.2f}, ring x{p["speedup"]:.2f}'


def gates_timed(d, name):
    rows = {}
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-timed/1"]["config"], c.get("name", "?"))
        require_rounds(name, c, c["name"], c["clicks_per_sec_rounds"], d["rounds"])
        rows[(c["family"], c["layout"], c["mode"])] = c
    expected = {
        (f, l, m)
        for f in ("time-tbf", "time-gbf")
        for l in ("scattered", "blocked")
        for m in ("sequential", "batch")
    }
    if set(rows) != expected:
        fail(name, f"rows {sorted(set(rows) - expected) or sorted(expected - set(rows))}")
    for fam in ("time-tbf", "time-gbf"):
        for lay in ("scattered", "blocked"):
            seq, bat = rows[(fam, lay, "sequential")], rows[(fam, lay, "batch")]
            if seq["duplicates"] != bat["duplicates"]:
                fail(name, f"{fam} ({lay}) batch and sequential verdicts disagree")
    if not d["checks"]["paths_agree"]:
        fail(name, "batch and sequential verdicts diverged")
    if not d["checks"]["no_occupancy_scans"]:
        fail(name, "O(m) scan rode the timed hot loop")
    if d["scale"] == "full":
        for fam, s in d["speedups"].items():
            if s["batch"] < 1.3 or s["blocked"] < 1.3:
                fail(name, f"{fam} speedups {s}")
        if not (d["checks"]["batch_speedup_ok"] and d["checks"]["blocked_speedup_ok"]):
            fail(name, f'checks {d["checks"]}')
    return f'{d["scale"]} scale, ' + ", ".join(
        f'{f} batch x{s["batch"]:.2f} blocked x{s["blocked"]:.2f}'
        for f, s in d["speedups"].items()
    )


# Per-cell FP-gate slack in the shootout, mirroring the bench: blocked
# TBF/GBF models are tight, scattered ones are first-order (gate 2.5x),
# APBF/SWBF models are documented upper bounds (gate 1.5x).
def shootout_fp_slack(algo, layout):
    if algo in ("tbf", "gbf"):
        return 1.1 if layout == "blocked" else 2.5
    return 1.5


# Per-backend wide-dispatch speedup floors for full-scale AVX2 runs.
# GBF's hot path is word-granular lane cleaning, which the wide
# dispatch rewrites as contiguous AND-store sweeps — a whole-pipeline
# win measured at 1.22–1.35x across runs (median ~1.26x; the isolated
# sweep kernel is ~1.9x). The floor sits at 1.2x, below the measured
# band rather than at its midpoint, so reruns on a noisy one-core host
# reproduce PASS instead of coin-flipping around the point estimate.
# The probe-dominated backends are early-exit branch-bound
# (docs/PERFORMANCE.md "SIMD probe path"), so their bit-identical wide
# kernels gate only against regression, with the floor sized for
# one-core VM noise (APBF runs identical instructions on both rows and
# still wobbles ~10% between runs).
SIMD_SPEEDUP_FLOORS = {"tbf": 0.85, "gbf": 1.2, "apbf": 0.85, "swbf": 0.85}


def gates_simd(d, name):
    rows = {}
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-simd/1"]["config"], c.get("algo", "?"))
        label = f'{c["algo"]}-{c["dispatch"]}'
        require_rounds(name, c, label, c["clicks_per_sec_rounds"], d["rounds"])
        rows[(c["algo"], c["dispatch"])] = c
    expected = {(a, dsp) for a in ("tbf", "gbf", "apbf", "swbf") for dsp in ("scalar", "wide")}
    if set(rows) != expected:
        fail(name, f"rows {sorted(set(rows) ^ expected)}")
    for algo in ("tbf", "gbf", "apbf", "swbf"):
        s, w = rows[(algo, "scalar")], rows[(algo, "wide")]
        if s["false_positives"] != w["false_positives"]:
            fail(name, f"{algo}: wide and scalar verdicts disagree")
    for key in ("verdicts_agree", "no_occupancy_scans"):
        if not d["checks"][key]:
            fail(name, f"check {key} failed")
    # Speedup gates bind only on full-scale AVX2 runs: with one lane the
    # wide rows dispatch the same scalar kernels and the ratio is noise.
    if d["scale"] == "full" and d["lanes"] > 1:
        if not d["checks"]["simd_speedup_ok"]:
            fail(name, f'checks {d["checks"]}')
        for algo, floor in SIMD_SPEEDUP_FLOORS.items():
            s = d["speedups"][algo]["wide"]
            if s < floor:
                fail(name, f"{algo} wide speedup {s:.2f} < {floor}x")
    return f'{d["scale"]} scale, lanes {d["lanes"]}, ' + ", ".join(
        f'{a} wide x{d["speedups"][a]["wide"]:.2f}' for a in ("tbf", "gbf", "apbf", "swbf")
    )


def gates_shootout(d, name):
    rows = {}
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-shootout/1"]["config"], c.get("algo", "?"))
        label = f'{c["algo"]}-{c["layout"]}-{c["mode"]}'
        require_rounds(name, c, label, c["clicks_per_sec_rounds"], d["rounds"])
        rows[(c["algo"], c["layout"], c["mode"])] = c
    expected = {
        (a, l, m)
        for a in ("tbf", "gbf", "apbf", "swbf")
        for l in ("scattered", "blocked")
        for m in ("sequential", "batch")
    }
    if set(rows) != expected:
        fail(name, f"rows {sorted(set(rows) ^ expected)}")
    budget = d["memory_bits_budget"]
    for (algo, layout, mode), c in sorted(rows.items()):
        label = f"{algo}-{layout}-{mode}"
        used = c["memory_bits"] / budget
        if not 0.88 <= used <= 1.12:
            fail(name, f"{label}: spent {used:.3f} of the {budget}-bit budget")
        bound = c["fp_model"] * shootout_fp_slack(algo, layout)
        if c["fp_measured"] > bound + three_sigma(c["fp_model"], d["clicks"]):
            fail(name, f'{label}: measured FP {c["fp_measured"]} exceeds model {c["fp_model"]}')
        if mode == "batch":
            seq = rows[(algo, layout, "sequential")]
            if c["fp_measured"] != seq["fp_measured"]:
                fail(name, f"{algo} ({layout}) batch and sequential verdicts disagree")
    for key in ("fp_within_model", "memory_within_budget", "paths_agree", "no_occupancy_scans"):
        if not d["checks"][key]:
            fail(name, f"check {key} failed")
    if d["scale"] == "full":
        if not d["checks"]["batch_speedup_ok"]:
            fail(name, f'checks {d["checks"]}')
        for algo in ("apbf", "swbf"):
            s = d["speedups"][algo]["batch"]
            if s < 1.3:
                fail(name, f"{algo} batch speedup {s:.2f} < 1.3x")
    return f'{d["scale"]} scale, ' + ", ".join(
        f'{a} batch x{d["speedups"][a]["batch"]:.2f}' for a in ("tbf", "gbf", "apbf", "swbf")
    )


def gates_tenants(d, name):
    rows = {}
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-tenants/1"]["config"], c.get("name", "?"))
        require_rounds(name, c, c["name"], c["clicks_per_sec_rounds"], d["rounds"])
        rows[c["name"]] = c
    expected = {"arena-seq", "arena-batch", "arena-sharded", "single-tbf"}
    if set(rows) != expected:
        fail(name, f"rows {sorted(set(rows) ^ expected)}")
    require_keys(
        name, d["budget"], {"entries", "hash_count", "predicted_fp", "bytes_per_tenant"}, "budget"
    )
    # Verdict isolation: every arena row must flag at least the injected
    # duplicates (zero false negatives — a miss means a tenant's window
    # lost state) and at most the per-tenant FP bound beyond them (an
    # excess means cross-tenant contamination).
    injected = d["duplicates_injected"]
    fp_bound = d["budget"]["predicted_fp"]
    for row in ("arena-seq", "arena-batch", "arena-sharded"):
        dups = rows[row]["duplicates"]
        if dups < injected:
            fail(name, f"{row}: missed injected duplicates ({dups} < {injected})")
        excess = (dups - injected) / d["clicks"]
        if excess > fp_bound + three_sigma(fp_bound, d["clicks"]):
            fail(name, f"{row}: excess duplicate rate {excess:.3e} exceeds FP bound {fp_bound}")
    # Memory gate (binds at every scale — the slab layout is
    # deterministic): amortized slab bytes per live tenant within 1.25x
    # of the cfd-analysis per-tenant budget.
    ratio = d["bytes_per_tenant_measured"] / d["budget"]["bytes_per_tenant"]
    if ratio > 1.25:
        fail(
            name,
            f'bytes/live-tenant {d["bytes_per_tenant_measured"]:.1f} is {ratio:.3f}x '
            f'the {d["budget"]["bytes_per_tenant"]}-byte budget (limit 1.25x)',
        )
    for key in ("isolation_ok", "bytes_per_tenant_ok", "no_occupancy_scans"):
        if not d["checks"][key]:
            fail(name, f"check {key} failed")
    # Throughput gate (full scale only): the arena's flat-batch path
    # must hold >= 0.7x of the one-big-TBF baseline at equal memory.
    if d["scale"] == "full":
        if d["baseline_ratio"] < 0.7 or not d["checks"]["throughput_ok"]:
            fail(name, f'baseline ratio {d["baseline_ratio"]:.2f} < 0.7x')
    return (
        f'{d["scale"]} scale, {d["live_tenants"]} live tenants, '
        f'arena x{d["baseline_ratio"]:.2f} of baseline, '
        f'{d["bytes_per_tenant_measured"]:.0f} B/tenant ({ratio:.2f}x budget)'
    )


def gates_sweep(d, name):
    grid = d["grid"]
    axes = ("algo", "cells_per_element", "k", "sub_windows", "layout", "shards", "batch")
    want = 1
    for axis in axes:
        if not grid[axis]:
            fail(name, f"grid.{axis} is empty")
        want *= len(grid[axis])
    if len(d["configs"]) != want:
        fail(name, f'{len(d["configs"])} configs, grid declares {want}')
    if d["group_by"] not in axes:
        fail(name, f'group_by {d["group_by"]!r} is not a grid axis')
    for c in d["configs"]:
        require_keys(name, c, MANIFEST["cfd-bench-sweep/1"]["config"], c.get("algo", "?"))
        label = f'{c["algo"]}-{c["layout"]}-s{c["shards"]}-b{c["batch"]}'
        require_rounds(name, c, label, c["clicks_per_sec_rounds"], d["rounds"])
        if c["clicks_per_sec_median"] <= 0 or c["memory_bits"] <= 0:
            fail(name, f"{label}: non-positive throughput or memory")
        if not 0 <= c["fp_rate"] <= 1:
            fail(name, f'{label}: fp_rate {c["fp_rate"]} outside [0, 1]')
        if c["detected"] != c["duplicates"] - c["false_negatives"] + c["false_positives"]:
            fail(name, f"{label}: detected != duplicates - fn + fp")
        # A false negative needs a prior false positive on the same id
        # to suppress the stamp (FP propagation), so unsharded windows
        # are bounded by fn <= fp; sharded ones can also miss via
        # per-shard slide-out and are not gated.
        if c["shards"] == 1 and c["false_negatives"] > c["false_positives"]:
            fail(name, f'{label}: {c["false_negatives"]} misses > {c["false_positives"]} FPs')
        if c["fp_model"] is not None:
            bound = c["fp_model"] * 2.5 + three_sigma(c["fp_model"], d["clicks"])
            if c["fp_rate"] > bound:
                fail(name, f'{label}: measured FP {c["fp_rate"]} exceeds model {c["fp_model"]}')
    want_groups = {str(c[d["group_by"]]) for c in d["configs"]}
    got_groups = {g["value"] for g in d["groups"]}
    if got_groups != want_groups:
        fail(name, f"group values {sorted(got_groups)} != axis values {sorted(want_groups)}")
    if sum(g["configs"] for g in d["groups"]) != len(d["configs"]):
        fail(name, "group config counts do not partition the grid")
    for g in d["groups"]:
        require_keys(name, g, MANIFEST["cfd-bench-sweep/1"]["group"], f'group {g["value"]}')
        if g["min_fp_rate"] > g["max_fp_rate"]:
            fail(name, f'group {g["value"]}: min_fp_rate > max_fp_rate')
    return (
        f'{d["scale"]} scale, {len(d["configs"])} configs over '
        f'{len(d["groups"])} {d["group_by"]} groups, fn bounded by fp'
    )


# ---------------------------------------------------------------------
# Schema manifest: required keys + gate function per artifact family.
# ---------------------------------------------------------------------

MANIFEST = {
    "cfd-bench-throughput/1": {
        "top": {"scale", "clicks", "rounds", "configs", "speedups", "checks"},
        "config": {
            "name",
            "family",
            "layout",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
            "fp_measured",
            "fp_model",
        },
        "gates": gates_throughput,
    },
    "cfd-bench-pipeline/1": {
        "top": {"scale", "clicks", "rounds", "shards", "batch", "hash", "pipeline", "checks"},
        "config": set(),
        "gates": gates_pipeline,
    },
    "cfd-bench-timed/1": {
        "top": {"scale", "clicks", "rounds", "batch", "configs", "speedups", "checks"},
        "config": {
            "name",
            "family",
            "layout",
            "mode",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
            "duplicates",
        },
        "gates": gates_timed,
    },
    "cfd-bench-shootout/1": {
        "top": {
            "scale",
            "clicks",
            "rounds",
            "window",
            "memory_bits_budget",
            "batch",
            "configs",
            "speedups",
            "pareto",
            "checks",
        },
        "config": {
            "algo",
            "layout",
            "mode",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
            "fp_measured",
            "fp_model",
            "memory_bits",
        },
        "gates": gates_shootout,
    },
    "cfd-bench-simd/1": {
        "top": {
            "scale",
            "clicks",
            "rounds",
            "window",
            "memory_bits_budget",
            "batch",
            "lanes",
            "configs",
            "speedups",
            "checks",
        },
        "config": {
            "algo",
            "dispatch",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
            "false_positives",
        },
        "gates": gates_simd,
    },
    "cfd-bench-tenants/1": {
        "top": {
            "scale",
            "clicks",
            "rounds",
            "batch",
            "tenant_universe",
            "live_tenants",
            "tenant_window",
            "duplicates_injected",
            "memory_bits_per_side",
            "budget",
            "configs",
            "bytes_per_tenant_measured",
            "baseline_ratio",
            "batch_speedup",
            "checks",
        },
        "config": {
            "name",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
            "duplicates",
        },
        "gates": gates_tenants,
    },
    "cfd-bench-sweep/1": {
        "top": {
            "scale",
            "clicks",
            "rounds",
            "injected_duplicates",
            "scenario",
            "group_by",
            "grid",
            "configs",
            "groups",
        },
        "config": {
            "algo",
            "resolved_algo",
            "cells_per_element",
            "k",
            "sub_windows",
            "layout",
            "shards",
            "batch",
            "distinct",
            "duplicates",
            "detected",
            "false_positives",
            "false_negatives",
            "fp_rate",
            "fp_model",
            "auto_predicted_fp",
            "auto_meets_target",
            "memory_bits",
            "clicks_per_sec_median",
            "clicks_per_sec_rounds",
        },
        "group": {
            "value",
            "configs",
            "best_clicks_per_sec",
            "best_config",
            "min_fp_rate",
            "max_fp_rate",
            "min_memory_bits",
            "fn_within_fp_bound",
        },
        "gates": gates_sweep,
    },
}


def check(path):
    with open(path) as f:
        d = json.load(f)
    schema = d.get("schema")
    entry = MANIFEST.get(schema)
    if entry is None:
        fail(path, f"unknown schema {schema!r} (known: {sorted(MANIFEST)})")
    require_keys(path, d, entry["top"], "document")
    summary = entry["gates"](d, path)
    print(f"   {path}: {summary}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    missing = [path for path in argv[1:] if not os.path.exists(path)]
    if missing:
        print(
            "FAIL: missing benchmark artifacts: "
            + ", ".join(missing)
            + " — run the matching `cargo run --release -p cfd-bench --bin throughput` "
            "scenario(s) to regenerate them",
            file=sys.stderr,
        )
        return 1
    for path in argv[1:]:
        check(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
