//! Capacity planning with the analytic models of `cfd-analysis`.
//!
//! "How much memory do I need?" — the question every deployment asks
//! first. This example sizes all three schemes for a range of windows
//! and target false-positive rates, then *validates* one recommendation
//! by building the detector and measuring its actual FP rate against
//! the prediction.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use click_fraud_detection::analysis::sizing;
use click_fraud_detection::prelude::*;
use click_fraud_detection::stream::UniqueIdStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("memory (KiB) to hit a target FP rate (window in elements):\n");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>16}",
        "window", "target", "gbf (Q=8)", "tbf", "metwally (Q=8)"
    );
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        for &fp in &[1e-2, 1e-3, 1e-4] {
            let g = sizing::gbf_sizing(n, 8, fp);
            let t = sizing::tbf_sizing(n, fp);
            let c = sizing::counting_scheme_sizing(n, 8, fp);
            println!(
                "{:>10} {:>10.0e} {:>14.1} {:>14.1} {:>16.1}",
                n,
                fp,
                g.total_bits as f64 / 8192.0,
                t.total_bits as f64 / 8192.0,
                c.total_bits as f64 / 8192.0,
            );
        }
    }

    // Validate one recommendation end to end.
    let n = 1 << 16;
    let target = 1e-3;
    let rec = sizing::tbf_sizing(n, target);
    println!(
        "\nvalidating: TBF over sliding(n={n}), target FP {target}: m = {}, k = {}",
        rec.m, rec.k
    );
    let cfg = TbfConfig::builder(n)
        .entries(rec.m)
        .hash_count(rec.k)
        .build()?;
    let mut tbf = Tbf::new(cfg)?;

    let mut ids = UniqueIdStream::new(2026);
    for _ in 0..10 * n {
        let id = ids.next().expect("infinite");
        tbf.observe(&id.to_le_bytes());
    }
    let trials = 10 * n as u64;
    let mut fps = 0u64;
    for _ in 0..trials {
        let id = ids.next().expect("infinite");
        if tbf.observe(&id.to_le_bytes()).is_duplicate() {
            fps += 1;
        }
    }
    let measured = fps as f64 / trials as f64;
    println!(
        "measured FP: {measured:.2e} (predicted {:.2e}) over {trials} distinct clicks",
        rec.predicted_fp
    );
    assert!(
        measured < target * 1.5,
        "sizing under-delivered: {measured} vs target {target}"
    );
    println!("recommendation holds ✔");
    Ok(())
}
