//! Hunting a publisher coalition (paper §2.4, Metwally et al. [20]).
//!
//! Colluding publishers launder a shared pool of fraudulent identities
//! through each other so no single site looks unusual to a naive
//! per-publisher counter. Duplicate detection keyed on the click
//! identity is immune to the laundering — repeats are repeats wherever
//! they surface — and aggregating verdicts per publisher exposes every
//! coalition member at once.
//!
//! ```text
//! cargo run --release --example coalition_hunt
//! ```

use click_fraud_detection::adnet::FraudScorer;
use click_fraud_detection::prelude::*;
use click_fraud_detection::stream::{CoalitionConfig, CoalitionStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CoalitionConfig {
        shared_identities: 600,
        fraud_fraction: 0.2,
        ..CoalitionConfig::default()
    };
    let members = cfg.members.clone();
    let stream = CoalitionStream::new(cfg);

    let window = 1 << 14;
    let mut detector = Tbf::new(TbfConfig::builder(window).entries(window * 14).build()?)?;
    let mut scorer = FraudScorer::new();

    println!(
        "processing 400k clicks ({} coalition publishers hidden among honest ones)...\n",
        members.len()
    );
    for cc in stream.take(400_000) {
        let verdict = detector.observe(&cc.click.key());
        scorer.record(&cc.click, verdict);
    }

    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>9}  verdict",
        "publisher", "clicks", "blocked", "rate", "z-score"
    );
    let mut caught = Vec::new();
    for s in scorer.scores(1_000) {
        let suspicious = s.is_suspicious(3.0);
        println!(
            "{:>10} {:>10} {:>10} {:>9.4} {:>9.1}  {}",
            s.publisher.0,
            s.clicks,
            s.blocked,
            s.rate,
            s.z_score,
            if suspicious { "SUSPICIOUS" } else { "ok" }
        );
        if suspicious {
            caught.push(s.publisher);
        }
    }

    println!();
    for m in &members {
        assert!(
            caught.contains(m),
            "coalition member {m:?} escaped detection"
        );
    }
    println!(
        "all {} coalition members flagged; no honest publisher implicated ✔",
        members.len()
    );
    Ok(())
}
