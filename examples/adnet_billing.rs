//! End-to-end pay-per-click billing with and without fraud filtering.
//!
//! Recreates the economics of the paper's motivation (§1.1): an
//! advertiser's budget under a botnet attack, with three network
//! configurations — no dedup, TBF dedup, and exact dedup — and prints a
//! settlement table: spend, blocked fraud, and the refund an audit would
//! negotiate.
//!
//! ```text
//! cargo run --release --example adnet_billing
//! ```

use click_fraud_detection::adnet::NetworkReport;
use click_fraud_detection::prelude::*;
use click_fraud_detection::windows::ExactLandmarkDedup;

const WINDOW: usize = 1 << 13;
const CLICKS: usize = 150_000;
const ADS: u32 = 64;

fn build_network<D: DuplicateDetector>(detector: D) -> AdNetwork<D> {
    let mut net = AdNetwork::new(detector);
    // One deep-pocketed advertiser owning every ad keeps the comparison
    // about fraud, not budget exhaustion.
    net.registry_mut()
        .add_advertiser(Advertiser::new(AdvertiserId(1), "acme-corp", u64::MAX / 4));
    for ad in 0..ADS {
        net.registry_mut()
            .add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 250_000, // $0.25 per click
            })
            .expect("advertiser registered");
    }
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attack = BotnetConfig {
        bots: 500,
        attack_fraction: 0.30,
        target_cpc_micros: 250_000,
        ..BotnetConfig::default()
    };
    let clicks: Vec<Click> = BotnetStream::new(attack, 16, ADS)
        .take(CLICKS)
        .map(|c| c.click)
        .collect();

    // "No dedup": a landmark window of 1 element never blocks anything.
    let mut none = build_network(ExactLandmarkDedup::new(1));
    let r_none = none.run(clicks.iter());

    let tbf = Tbf::new(TbfConfig::builder(WINDOW).entries(WINDOW * 14).build()?)?;
    let mut with_tbf = build_network(tbf);
    let r_tbf = with_tbf.run(clicks.iter());

    let mut with_exact = build_network(ExactSlidingDedup::new(WINDOW));
    let r_exact = with_exact.run(clicks.iter());

    println!("{}", NetworkReport::header());
    for r in [&r_none, &r_tbf, &r_exact] {
        println!("{}", r.row());
    }

    let overcharge = r_none.revenue_micros - r_exact.revenue_micros;
    let tbf_catch = r_tbf.savings_micros as f64 / overcharge.max(1) as f64;
    println!();
    println!(
        "fraudulent overcharge without dedup: ${:.2}",
        overcharge as f64 / 1e6
    );
    println!(
        "TBF blocks ${:.2} of it up front ({:.1}% of the audit refund)",
        r_tbf.savings_micros as f64 / 1e6,
        100.0 * tbf_catch
    );
    println!(
        "TBF memory: {:.1} KiB vs exact-oracle {:.1} KiB",
        r_tbf.detector_memory_bits as f64 / 8.0 / 1024.0,
        r_exact.detector_memory_bits as f64 / 8.0 / 1024.0
    );
    Ok(())
}
