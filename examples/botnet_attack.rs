//! Scenario 2 of the paper (§1.1): a botnet clicks a competitor's ad.
//!
//! A 2 000-bot botnet mixes its clicks into organic traffic at 25% of
//! volume. The example shows how much of the attack each detector
//! removes, and that the streaming detectors miss nothing the exact
//! oracle catches (zero false negatives) while using a fraction of the
//! memory.
//!
//! ```text
//! cargo run --release --example botnet_attack
//! ```

use click_fraud_detection::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WINDOW: usize = 1 << 14;
    const CLICKS: usize = 400_000;

    let attack = BotnetConfig {
        bots: 2_000,
        attack_fraction: 0.25,
        target_cpc_micros: 500_000,
        ..BotnetConfig::default()
    };
    let labeled: Vec<_> = BotnetStream::new(attack, 32, 256).take(CLICKS).collect();
    let bot_total = labeled.iter().filter(|c| c.is_bot).count();
    println!(
        "stream: {CLICKS} clicks, {bot_total} from the botnet ({:.1}%)\n",
        100.0 * bot_total as f64 / CLICKS as f64
    );

    // Three detectors over the same sliding window.
    let tbf = Tbf::new(TbfConfig::builder(WINDOW).entries(WINDOW * 14).build()?)?;
    let gbf = Gbf::new(
        GbfConfig::builder(WINDOW, 8)
            .filter_bits(WINDOW / 8 * 14)
            .build()?,
    )?;
    let exact = ExactSlidingDedup::new(WINDOW);

    let mut detectors: Vec<Box<dyn DuplicateDetector>> =
        vec![Box::new(exact), Box::new(tbf), Box::new(gbf)];

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>14}",
        "detector", "flagged", "bot-flagged", "organic-fp", "missed-fn", "memory (KiB)"
    );
    for d in &mut detectors {
        let mut flagged = 0u64;
        let mut bot_flagged = 0u64;
        let mut organic_fp = 0u64;
        // Self-consistency oracle for the zero-false-negative property
        // (paper Definition 1): a click is a *false negative* iff the
        // detector previously determined an identical click valid within
        // the current window and still answers Distinct. Validity is
        // driven by the detector's own verdicts, so an FP (which blocks
        // an insertion) does not poison the check. Only count for the
        // sliding-window detectors; the GBF jumping window intentionally
        // covers less than the last WINDOW clicks.
        let is_sliding = matches!(d.window(), WindowSpec::Sliding { .. });
        let mut ring: std::collections::VecDeque<([u8; 16], bool)> =
            std::collections::VecDeque::with_capacity(WINDOW);
        let mut valid: std::collections::HashSet<[u8; 16]> = std::collections::HashSet::new();
        let mut false_negatives = 0u64;
        for lc in &labeled {
            let key = lc.click.key();
            let dup = d.observe(&key).is_duplicate();
            if is_sliding {
                if ring.len() == WINDOW {
                    let (old, was_valid) = ring.pop_front().expect("ring full");
                    if was_valid {
                        valid.remove(&old);
                    }
                }
                if !dup && valid.contains(&key) {
                    false_negatives += 1;
                }
                let counts_as_valid = !dup && !valid.contains(&key);
                if counts_as_valid {
                    valid.insert(key);
                }
                ring.push_back((key, counts_as_valid));
            }
            if dup {
                flagged += 1;
                if lc.is_bot {
                    bot_flagged += 1;
                } else {
                    organic_fp += 1;
                }
            }
        }
        if is_sliding {
            assert_eq!(false_negatives, 0, "{} produced false negatives!", d.name());
        }
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>10} {:>14.1}",
            d.name(),
            flagged,
            bot_flagged,
            organic_fp,
            if is_sliding {
                false_negatives.to_string()
            } else {
                "n/a".to_owned()
            },
            d.memory_bits() as f64 / 8.0 / 1024.0
        );
    }

    println!("\nSliding-window detectors missed zero of their own valid-click repeats ✔");
    Ok(())
}
