//! Quickstart: duplicate-click detection in five minutes.
//!
//! Builds the two detectors of the paper — GBF over a jumping window and
//! TBF over a sliding window — runs a small stream with known repeats
//! through both, and prints what each one sees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use click_fraud_detection::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A jumping window of the last ~65k clicks in 8 sub-windows, sized to
    // a total memory budget of 2 MiB split across Q + 1 filters.
    let gbf_cfg = GbfConfig::builder(1 << 16, 8)
        .total_memory_bits(2 << 20)
        .build()?;
    let mut gbf = Gbf::new(gbf_cfg)?;

    // A sliding window of exactly the last 65 536 clicks, ~14 timestamp
    // entries per element (the paper's Fig. 2 operating ratio).
    let tbf_cfg = TbfConfig::builder(1 << 16)
        .entries((1 << 16) * 14)
        .build()?;
    let mut tbf = Tbf::new(tbf_cfg)?;

    println!("GBF: {} | {} bits", gbf.window(), gbf.memory_bits());
    println!("TBF: {} | {} bits", tbf.window(), tbf.memory_bits());
    println!();

    // Organic traffic with 20% repeats within a lag of 1000 clicks.
    let stream = DuplicateInjector::new(UniqueClickStream::new(7, 16, 128), 0.2, 1_000, 42);

    let mut gbf_summary = StreamSummary::default();
    let mut tbf_summary = StreamSummary::default();
    let mut disagreements = 0u64;
    for click in stream.take(200_000) {
        let key = click.key();
        let g = gbf.observe(&key);
        let t = tbf.observe(&key);
        gbf_summary.record(g);
        tbf_summary.record(t);
        if g != t {
            disagreements += 1;
        }
    }

    println!(
        "GBF   saw {:>7} duplicates / {} clicks ({:.2}%)",
        gbf_summary.duplicates,
        gbf_summary.total(),
        100.0 * gbf_summary.duplicate_rate()
    );
    println!(
        "TBF   saw {:>7} duplicates / {} clicks ({:.2}%)",
        tbf_summary.duplicates,
        tbf_summary.total(),
        100.0 * tbf_summary.duplicate_rate()
    );
    println!("window-model disagreements (jumping vs sliding coverage): {disagreements}");
    println!();
    println!(
        "GBF per-element cost: {:.2} word ops | TBF: {:.2} entry ops",
        gbf.ops().mem_ops_per_element(),
        tbf.ops().mem_ops_per_element()
    );
    Ok(())
}
