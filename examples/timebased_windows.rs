//! Time-based windows (§3.1 / §4.1 extensions) under Poisson traffic.
//!
//! Clicks arrive as a Poisson process (~50 clicks/second); the policy is
//! "identical clicks within the last 60 seconds are duplicates". The
//! example runs the time-based TBF (sliding) and GBF (jumping, 6 x 10 s
//! sub-windows) side by side, including a quiet gap that exercises the
//! lazy cleaning-daemon replay.
//!
//! ```text
//! cargo run --release --example timebased_windows
//! ```

use click_fraud_detection::core::gbf_time::TimeGbfConfig;
use click_fraud_detection::core::tbf_time::TimeTbfConfig;
use click_fraud_detection::prelude::*;
use click_fraud_detection::stream::PoissonArrivals;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ticks are milliseconds. 60 units of 1 s = one-minute window.
    let mut tbf = TimeTbf::new(TimeTbfConfig::new(60, 1_000, 1 << 18, 8, 1)?)?;
    // Jumping flavour: 6 sub-windows of 10 units of 1 s.
    let mut gbf = TimeGbf::new(TimeGbfConfig::new(6, 10, 1_000, 1 << 16, 8, 1)?)?;

    println!("TBF window: {}", TimedDuplicateDetector::window(&tbf));
    println!("GBF window: {}\n", TimedDuplicateDetector::window(&gbf));

    // 0.05 clicks per ms = 50/s; ids repeat with 15% probability within
    // the last 3000 clicks (~1 minute of traffic).
    let ids = DuplicateInjector::new(UniqueClickStream::new(3, 8, 64), 0.15, 3_000, 9);
    let arrivals = PoissonArrivals::new(0.05, 4);

    let mut tbf_dups = 0u64;
    let mut gbf_dups = 0u64;
    let mut total = 0u64;
    let mut last_tick = 0;
    for (click, mut tick) in ids.take(300_000).zip(arrivals) {
        // Inject a 5-minute outage at the halfway point: every window
        // must forget everything across it.
        if total == 150_000 {
            tick += 300_000;
        }
        last_tick = tick.max(last_tick);
        let key = click.key();
        if tbf.observe_at(&key, last_tick).is_duplicate() {
            tbf_dups += 1;
        }
        if gbf.observe_at(&key, last_tick).is_duplicate() {
            gbf_dups += 1;
        }
        total += 1;
    }

    println!(
        "processed {total} clicks over {:.1} minutes of stream time",
        last_tick as f64 / 60_000.0
    );
    println!(
        "time-TBF flagged {tbf_dups} duplicates ({:.2}%)",
        100.0 * tbf_dups as f64 / total as f64
    );
    println!(
        "time-GBF flagged {gbf_dups} duplicates ({:.2}%)",
        100.0 * gbf_dups as f64 / total as f64
    );
    println!(
        "\n(time-GBF sees slightly fewer: its jumping window covers only the\n\
         current partial sub-window plus the 5 previous full ones)"
    );
    Ok(())
}
