//! The settlement protocol of §1.1: advertiser and publisher audit the
//! same click stream concurrently and must agree on valid clicks.
//!
//! Both sides run the identical TBF configuration on their own threads;
//! because the detector is a deterministic one-pass algorithm, their
//! verdict digests match exactly — no click-log exchange needed. The
//! example also shows what happens when the parties (mis)configure
//! different window sizes: the digests split, which is precisely the
//! dispute the ICDCS paper's definitions are meant to prevent.
//!
//! ```text
//! cargo run --release --example dual_audit
//! ```

use click_fraud_detection::adnet::run_dual_audit;
use click_fraud_detection::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attack = BotnetConfig {
        bots: 300,
        attack_fraction: 0.2,
        ..BotnetConfig::default()
    };
    let clicks: Vec<Click> = BotnetStream::new(attack, 8, 32)
        .take(100_000)
        .map(|c| c.click)
        .collect();

    // Case 1: both parties agreed on sliding(n = 8192), TBF with 14
    // entries per element, shared seed.
    let outcome = run_dual_audit(&clicks, || {
        let cfg = TbfConfig::builder(1 << 13)
            .entries((1 << 13) * 14)
            .seed(2008)
            .build()
            .expect("valid config");
        Tbf::new(cfg).expect("valid detector")
    });
    println!("--- agreed configuration (sliding n = 8192, seed 2008) ---");
    println!(
        "advertiser: {} valid, digest {:016x}",
        outcome.advertiser_valid, outcome.advertiser_digest
    );
    println!(
        "publisher : {} valid, digest {:016x}",
        outcome.publisher_valid, outcome.publisher_digest
    );
    println!(
        "agreement : {}\n",
        if outcome.agreed() {
            "YES ✔"
        } else {
            "NO ✘"
        }
    );
    assert!(outcome.agreed());

    // Case 2: the publisher quietly uses a shorter window (more charges).
    // Model both sides with exact oracles so the difference is purely the
    // window policy.
    let adv = run_dual_audit(&clicks, || ExactSlidingDedup::new(1 << 13));
    let publ = run_dual_audit(&clicks, || ExactSlidingDedup::new(1 << 10));
    println!("--- disputed configuration (advertiser n = 8192, publisher n = 1024) ---");
    println!("advertiser counts {} valid clicks", adv.advertiser_valid);
    println!("publisher  counts {} valid clicks", publ.advertiser_valid);
    println!(
        "the publisher would bill {} extra clicks — exactly the dispute a\n\
         pre-agreed window definition (paper §1.3) eliminates",
        publ.advertiser_valid - adv.advertiser_valid
    );
    Ok(())
}
