//! A concurrent ingestion → sharded detection → billing pipeline.
//!
//! The production shape of the paper's system: clicks are routed by
//! keyspace to one detector worker per shard (one-pass algorithms are
//! sequential *per shard* — which is why Theorems 1 & 2 obsess over
//! per-element cost), then resequenced into global order for billing.
//! A lock-free progress gauge is polled from a watcher thread while 1M
//! clicks flow through.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use click_fraud_detection::adnet::{run_sharded_pipeline, PipelineConfig, PipelineProgress};
use click_fraud_detection::core::sharded::{per_shard_window, ShardedDetector};
use click_fraud_detection::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const CLICKS: usize = 1_000_000;
const WINDOW: usize = 1 << 15;
const SHARDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = click_fraud_detection::adnet::Registry::new();
    registry.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..256u32 {
        registry
            .add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 120_000,
            })
            .expect("advertiser registered");
    }

    // S detectors of window N/S: same total memory as one window-N TBF,
    // S-way parallel, soft window edge (see cfd-analysis::sharding).
    let detector = ShardedDetector::from_fn(9, SHARDS, |_| {
        let n_s = per_shard_window(WINDOW, SHARDS);
        Tbf::new(TbfConfig::builder(n_s).entries(n_s * 14).build()?)
    })?;
    let attack = BotnetConfig {
        bots: 5_000,
        attack_fraction: 0.2,
        target_cpc_micros: 120_000,
        ..BotnetConfig::default()
    };
    let clicks = BotnetStream::new(attack, 32, 256)
        .take(CLICKS)
        .map(|c| c.click);

    let progress = Arc::new(PipelineProgress::new());
    let gauge = progress.clone();
    let watcher = std::thread::spawn(move || {
        // Poll until billing completes; report a few snapshots. The
        // counters are plain atomics — no lock to contend with the
        // pipeline's hot path.
        let mut snapshots = Vec::new();
        loop {
            std::thread::sleep(std::time::Duration::from_millis(40));
            let (detected, billed) = (gauge.detected(), gauge.billed());
            snapshots.push((detected, billed));
            if billed >= CLICKS as u64 {
                return snapshots;
            }
        }
    });

    let start = Instant::now();
    let outcome = run_sharded_pipeline(
        detector,
        registry,
        clicks,
        PipelineConfig::default(),
        Some(progress),
    );
    let elapsed = start.elapsed();
    let snapshots = watcher.join().expect("watcher panicked");

    println!(
        "pipelined {CLICKS} clicks over {SHARDS} shard workers in {:.2}s ({:.2} Melem/s end to end)",
        elapsed.as_secs_f64(),
        CLICKS as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "observed {} live progress snapshots while the pipeline ran",
        snapshots.len()
    );
    println!();
    println!("{}", click_fraud_detection::adnet::NetworkReport::header());
    println!("{}", outcome.report.row());
    println!();
    let suspicious = outcome.scorer.suspicious(10_000, 3.0);
    println!(
        "publisher 1 (the botnet's host) flagged: {}",
        suspicious.iter().any(|s| s.publisher == PublisherId(1))
    );
    println!(
        "advertiser balance intact: ${:.2} of fraud blocked up front",
        outcome.report.savings_micros as f64 / 1e6
    );
    Ok(())
}
