#!/usr/bin/env bash
# Repository CI: formatting, lints, and the tier-1 gate (ROADMAP.md).
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests only)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied; repo crates, not dep shims)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p click-fraud-detection \
    $(for d in crates/*/; do echo "-p $(basename "$d" | sed 's/^/cfd-/')"; done)

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates)"
cargo test -q --workspace

echo "==> telemetry tests"
cargo test -q -p cfd-telemetry

if [[ "${1:-}" != "quick" ]]; then
    echo "==> telemetry smoke: cfd run --metrics-json parses as JSON lines"
    ./target/release/cfd run --count 50000 --window 4096 --metrics=50 --metrics-json \
        2>/tmp/cfd_metrics.jsonl >/dev/null
    python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/cfd_metrics.jsonl") if l.strip()]
assert lines, "reporter emitted no snapshots"
for l in lines:
    snap = json.loads(l)
    assert "metrics" in snap and "pipeline.ingest.clicks" in snap["metrics"], l
final = json.loads(lines[-1])
assert final["metrics"]["pipeline.ingest.clicks"]["value"] == 50000
print(f"   {len(lines)} snapshots parsed, ingest counter exact")
EOF
    echo "==> telemetry smoke: timed pipeline (cfd run --algo time-tbf)"
    ./target/release/cfd run --algo time-tbf --count 50000 --metrics=50 --metrics-json \
        2>/tmp/cfd_metrics_timed.jsonl >/dev/null
    python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/cfd_metrics_timed.jsonl") if l.strip()]
assert lines, "reporter emitted no snapshots"
final = json.loads(lines[-1])
assert final["metrics"]["pipeline.ingest.clicks"]["value"] == 50000
print(f"   {len(lines)} snapshots parsed, timed ingest counter exact")
EOF
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> throughput smoke: blocked vs scattered (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr3.json is regenerated only by a manual full run.
    ./target/release/throughput --quick --out target/BENCH_quick.json \
        >/tmp/cfd_throughput.txt
    tail -n 4 /tmp/cfd_throughput.txt | sed 's/^/   /'
    echo "==> BENCH json schema + blocked FP within model bound (>10% fails)"
    for f in target/BENCH_quick.json BENCH_pr3.json; do
        python3 - "$f" <<'EOF'
import json, sys, math
d = json.load(open(sys.argv[1]))
assert d["schema"] == "cfd-bench-throughput/1", d["schema"]
assert {"scale", "clicks", "rounds", "configs", "speedups", "checks"} <= d.keys()
layouts = set()
for c in d["configs"]:
    assert {"name", "family", "layout", "clicks_per_sec_median",
            "clicks_per_sec_rounds", "fp_measured", "fp_model"} <= c.keys(), c["name"]
    assert len(c["clicks_per_sec_rounds"]) == d["rounds"], c["name"]
    layouts.add(c["layout"])
    if c["layout"] == "blocked":
        model, fp = c["fp_model"], c["fp_measured"]
        slack = 3 * math.sqrt(model * (1 - model) / d["clicks"])
        assert fp <= model * 1.1 + slack, \
            f'{c["name"]}: measured FP {fp} exceeds model {model} by >10%'
assert layouts == {"scattered", "blocked"}
if d["scale"] == "full":
    assert all(d["checks"].values()), d["checks"]
    assert min(d["speedups"]["tbf"], d["speedups"]["gbf"]) >= 1.3, d["speedups"]
print(f'   {sys.argv[1]}: {d["scale"]} scale, {len(d["configs"])} configs, FP within model bound')
EOF
    done
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> pipeline smoke: ring vs channel transport + multi-lane hash (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr4.json is regenerated only by a manual full run.
    ./target/release/throughput --pipeline --quick --out target/BENCH_pipeline_quick.json \
        >/tmp/cfd_pipeline.txt
    tail -n 4 /tmp/cfd_pipeline.txt | sed 's/^/   /'
    echo "==> BENCH pipeline json schema + speedup gates (full scale only)"
    for f in target/BENCH_pipeline_quick.json BENCH_pr4.json; do
        python3 - "$f" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "cfd-bench-pipeline/1", d["schema"]
assert {"scale", "clicks", "rounds", "shards", "batch",
        "hash", "pipeline", "checks"} <= d.keys()
h, p = d["hash"], d["pipeline"]
assert h["lanes"] in (4, 8), h["lanes"]
assert len(h["scalar_rounds"]) == len(h["lanes_rounds"]) == d["rounds"]
assert len(p["channel_rounds"]) == len(p["ring_rounds"]) == d["rounds"]
# Correctness checks hold at every scale; the speedup gates only bind
# on the committed full-scale run (quick CI boxes are too noisy).
assert d["checks"]["transports_agree"], "ring and channel reports diverged"
assert d["checks"]["checksums_agree"], "lanes/scalar hash checksums diverged"
if d["scale"] == "full":
    assert d["checks"]["hash_speedup_ok"] and h["speedup"] >= 1.3, h["speedup"]
    assert d["checks"]["ring_speedup_ok"] and p["speedup"] >= 1.2, p["speedup"]
print(f'   {sys.argv[1]}: {d["scale"]} scale, '
      f'hash x{h["speedup"]:.2f}, ring x{p["speedup"]:.2f}')
EOF
    done
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> timed smoke: TimeTbf/TimeGbf sequential vs batch (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr5.json is regenerated only by a manual full run.
    ./target/release/throughput --timed --quick --out target/BENCH_timed_quick.json \
        >/tmp/cfd_timed.txt
    tail -n 4 /tmp/cfd_timed.txt | sed 's/^/   /'
    echo "==> BENCH timed json schema + batch/blocked speedup gates (full scale only)"
    for f in target/BENCH_timed_quick.json BENCH_pr5.json; do
        python3 - "$f" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "cfd-bench-timed/1", d["schema"]
assert {"scale", "clicks", "rounds", "batch", "configs", "speedups", "checks"} <= d.keys()
rows = {}
for c in d["configs"]:
    assert {"name", "family", "layout", "mode", "clicks_per_sec_median",
            "clicks_per_sec_rounds", "duplicates"} <= c.keys(), c["name"]
    assert len(c["clicks_per_sec_rounds"]) == d["rounds"], c["name"]
    rows[(c["family"], c["layout"], c["mode"])] = c
assert set(rows) == {(f, l, m) for f in ("time-tbf", "time-gbf")
                     for l in ("scattered", "blocked")
                     for m in ("sequential", "batch")}
# Batch must be a pure optimization at every scale: same verdicts.
for fam in ("time-tbf", "time-gbf"):
    for lay in ("scattered", "blocked"):
        seq, bat = rows[(fam, lay, "sequential")], rows[(fam, lay, "batch")]
        assert seq["duplicates"] == bat["duplicates"], (fam, lay)
assert d["checks"]["paths_agree"], "batch and sequential verdicts diverged"
assert d["checks"]["no_occupancy_scans"], "O(m) scan rode the timed hot loop"
if d["scale"] == "full":
    for fam, s in d["speedups"].items():
        assert s["batch"] >= 1.3, (fam, s)
        assert s["blocked"] >= 1.3, (fam, s)
    assert d["checks"]["batch_speedup_ok"] and d["checks"]["blocked_speedup_ok"]
print(f'   {sys.argv[1]}: {d["scale"]} scale, ' + ", ".join(
    f'{f} batch x{s["batch"]:.2f} blocked x{s["blocked"]:.2f}'
    for f, s in d["speedups"].items()))
EOF
    done
fi

echo "CI OK"
