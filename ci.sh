#!/usr/bin/env bash
# Repository CI: formatting, lints, and the tier-1 gate (ROADMAP.md).
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests only)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied; repo crates, not dep shims)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p click-fraud-detection \
    $(for d in crates/*/; do echo "-p $(basename "$d" | sed 's/^/cfd-/')"; done)

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> telemetry tests"
cargo test -q -p cfd-telemetry

if [[ "${1:-}" != "quick" ]]; then
    echo "==> telemetry smoke: cfd run --metrics-json parses as JSON lines"
    ./target/release/cfd run --count 50000 --window 4096 --metrics=50 --metrics-json \
        2>/tmp/cfd_metrics.jsonl >/dev/null
    python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/cfd_metrics.jsonl") if l.strip()]
assert lines, "reporter emitted no snapshots"
for l in lines:
    snap = json.loads(l)
    assert "metrics" in snap and "pipeline.ingest.clicks" in snap["metrics"], l
final = json.loads(lines[-1])
assert final["metrics"]["pipeline.ingest.clicks"]["value"] == 50000
print(f"   {len(lines)} snapshots parsed, ingest counter exact")
EOF
fi

echo "CI OK"
