#!/usr/bin/env bash
# Repository CI: formatting, lints, and the tier-1 gate (ROADMAP.md).
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests only)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied; repo crates, not dep shims)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p click-fraud-detection \
    $(for d in crates/*/; do echo "-p $(basename "$d" | sed 's/^/cfd-/')"; done)

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates)"
cargo test -q --workspace

echo "==> workspace tests again, SIMD kernels forced scalar (CFD_FORCE_SCALAR=1)"
CFD_FORCE_SCALAR=1 cargo test -q --workspace

echo "==> telemetry tests"
cargo test -q -p cfd-telemetry

if [[ "${1:-}" != "quick" ]]; then
    echo "==> telemetry smoke: cfd run --metrics-json parses as JSON lines"
    ./target/release/cfd run --count 50000 --window 4096 --metrics=50 --metrics-json \
        2>/tmp/cfd_metrics.jsonl >/dev/null
    python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/cfd_metrics.jsonl") if l.strip()]
assert lines, "reporter emitted no snapshots"
for l in lines:
    snap = json.loads(l)
    assert "metrics" in snap and "pipeline.ingest.clicks" in snap["metrics"], l
final = json.loads(lines[-1])
assert final["metrics"]["pipeline.ingest.clicks"]["value"] == 50000
print(f"   {len(lines)} snapshots parsed, ingest counter exact")
EOF
    echo "==> telemetry smoke: timed pipeline (cfd run --algo time-tbf)"
    ./target/release/cfd run --algo time-tbf --count 50000 --metrics=50 --metrics-json \
        2>/tmp/cfd_metrics_timed.jsonl >/dev/null
    python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/cfd_metrics_timed.jsonl") if l.strip()]
assert lines, "reporter emitted no snapshots"
final = json.loads(lines[-1])
assert final["metrics"]["pipeline.ingest.clicks"]["value"] == 50000
print(f"   {len(lines)} snapshots parsed, timed ingest counter exact")
EOF
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> throughput smoke: blocked vs scattered (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr3.json is regenerated only by a manual full run.
    ./target/release/throughput --quick --out target/BENCH_quick.json \
        >/tmp/cfd_throughput.txt
    tail -n 4 /tmp/cfd_throughput.txt | sed 's/^/   /'
    echo "==> BENCH json schema + blocked FP within model bound (>10% fails)"
    python3 tools/check_bench.py target/BENCH_quick.json BENCH_pr3.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> pipeline smoke: ring vs channel transport + multi-lane hash (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr4.json is regenerated only by a manual full run.
    ./target/release/throughput --pipeline --quick --out target/BENCH_pipeline_quick.json \
        >/tmp/cfd_pipeline.txt
    tail -n 4 /tmp/cfd_pipeline.txt | sed 's/^/   /'
    echo "==> BENCH pipeline json schema + speedup gates (full scale only)"
    python3 tools/check_bench.py target/BENCH_pipeline_quick.json BENCH_pr4.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> timed smoke: TimeTbf/TimeGbf sequential vs batch (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr5.json is regenerated only by a manual full run.
    ./target/release/throughput --timed --quick --out target/BENCH_timed_quick.json \
        >/tmp/cfd_timed.txt
    tail -n 4 /tmp/cfd_timed.txt | sed 's/^/   /'
    echo "==> BENCH timed json schema + batch/blocked speedup gates (full scale only)"
    python3 tools/check_bench.py target/BENCH_timed_quick.json BENCH_pr5.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> shootout smoke: tbf/gbf/apbf/swbf at equal memory (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr6.json is regenerated only by a manual full run.
    ./target/release/throughput --shootout --quick --out target/BENCH_shootout_quick.json \
        >/tmp/cfd_shootout.txt
    tail -n 8 /tmp/cfd_shootout.txt | sed 's/^/   /'
    echo "==> BENCH shootout json schema + Pareto/FP/speedup gates (full scale only)"
    python3 tools/check_bench.py target/BENCH_shootout_quick.json BENCH_pr6.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> simd smoke: wide vs forced-scalar dispatch, verdicts must agree (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr8.json is regenerated only by a manual full run.
    ./target/release/throughput --simd --quick --out target/BENCH_simd_quick.json \
        >/tmp/cfd_simd.txt
    tail -n 6 /tmp/cfd_simd.txt | sed 's/^/   /'
    echo "==> BENCH simd json schema + wide-speedup gates (full scale only)"
    python3 tools/check_bench.py target/BENCH_simd_quick.json BENCH_pr8.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tenants smoke: multi-tenant arena vs single detector, isolation asserts (quick scale)"
    # Quick scale writes its own file; the committed full-scale
    # BENCH_pr9.json is regenerated only by a manual full run.
    ./target/release/throughput --tenants --quick --out target/BENCH_tenants_quick.json \
        >/tmp/cfd_tenants.txt
    tail -n 8 /tmp/cfd_tenants.txt | sed 's/^/   /'
    echo "==> BENCH tenants json schema + bytes/tenant + isolation gates (throughput full scale only)"
    python3 tools/check_bench.py target/BENCH_tenants_quick.json BENCH_pr9.json
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> scenario sweep smoke: committed spec end-to-end via cfd sweep (quick scale)"
    ./target/release/cfd sweep --scenario scenarios/ci_smoke.toml --quick \
        --out target/BENCH_sweep_quick.json >/tmp/cfd_sweep.txt
    tail -n 6 /tmp/cfd_sweep.txt | sed 's/^/   /'
    echo "==> BENCH sweep json schema + grid-coverage/fn<=fp gates"
    python3 tools/check_bench.py target/BENCH_sweep_quick.json
    echo "==> scenario sweep smoke: same spec through throughput --scenario"
    ./target/release/throughput --scenario scenarios/ci_smoke.toml --quick \
        --out target/BENCH_sweep_tp_quick.json >/dev/null
    python3 tools/check_bench.py target/BENCH_sweep_tp_quick.json
    echo "==> throughput --scenario rejects a missing spec with a named-option error"
    if ./target/release/throughput --scenario /nonexistent.toml 2>/tmp/cfd_sweep_err.txt; then
        echo "FAIL: missing scenario file was not rejected"; exit 1
    fi
    grep -q -- '--scenario' /tmp/cfd_sweep_err.txt
    echo "   rejected with: $(head -n 1 /tmp/cfd_sweep_err.txt)"
fi

if [[ "${1:-}" != "quick" ]]; then
    echo "==> serve smoke: socket replay, kill -9 mid-stream, checkpoint resume"
    rm -f /tmp/cfd_serve.sock /tmp/cfd_serve.cfdg /tmp/cfd_serve_run.json /tmp/cfd_serve.json
    ./target/release/cfd generate --kind botnet --count 200000 --seed 11 \
        --out /tmp/cfd_serve.cfdt >/dev/null
    ./target/release/cfd run --trace /tmp/cfd_serve.cfdt --window 8192 --ads 64 \
        --report-json /tmp/cfd_serve_run.json >/dev/null
    ./target/release/cfd serve --listen unix:/tmp/cfd_serve.sock --window 8192 --ads 64 \
        --checkpoint /tmp/cfd_serve.cfdg --checkpoint-every 20000 \
        --report-json /tmp/cfd_serve.json >/dev/null 2>&1 &
    SERVE_PID=$!
    ./target/release/cfd replay-client --connect unix:/tmp/cfd_serve.sock \
        --trace /tmp/cfd_serve.cfdt --limit 100000 --retries 200 >/dev/null
    # Wait for at least one complete checkpoint (tmp+rename is atomic),
    # then SIGKILL the gateway mid-stream: no drain, no goodbye.
    while [[ ! -f /tmp/cfd_serve.cfdg ]]; do sleep 0.1; done
    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" 2>/dev/null || true
    ./target/release/cfd serve --listen unix:/tmp/cfd_serve.sock --window 8192 --ads 64 \
        --checkpoint /tmp/cfd_serve.cfdg --resume \
        --report-json /tmp/cfd_serve.json >/dev/null 2>&1 &
    SERVE_PID=$!
    ./target/release/cfd replay-client --connect unix:/tmp/cfd_serve.sock \
        --trace /tmp/cfd_serve.cfdt --drain --retries 200 >/dev/null
    wait "$SERVE_PID"
    cmp /tmp/cfd_serve_run.json /tmp/cfd_serve.json
    echo "   kill -9 + --resume replay matches the in-process run byte for byte"
fi

echo "CI OK"
