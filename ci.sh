#!/usr/bin/env bash
# Repository CI: formatting, lints, and the tier-1 gate (ROADMAP.md).
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests only)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI OK"
