//! Offline shim of `serde_derive`: emits empty `Serialize` /
//! `Deserialize` impls for the annotated type.
//!
//! Written against the built-in `proc_macro` API only (no `syn`/`quote`,
//! which are unavailable offline). Supports plain structs and enums
//! without generic parameters — which covers every derive site in this
//! workspace; a generic type would fail to compile loudly rather than
//! misbehave.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following `struct`/`enum`/`union`.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive shim: no struct/enum name found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
