//! Offline shim of `crossbeam`: the [`channel`] module with bounded and
//! unbounded MPMC channels, matching crossbeam's disconnect semantics
//! (send fails once every receiver is gone; recv fails once the queue is
//! empty and every sender is gone).
//!
//! Built on `Mutex` + `Condvar`; slower than real crossbeam but
//! behaviorally equivalent for the pipeline/audit workloads here, which
//! amortize channel traffic with batches.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let sh = &*self.0;
            let mut q = sh.queue.lock().expect("channel lock");
            loop {
                if sh.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match sh.cap {
                    Some(cap) if q.len() >= cap => {
                        q = sh.not_full.wait(q).expect("channel lock");
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            sh.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let sh = &*self.0;
            let mut q = sh.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    sh.not_full.notify_one();
                    return Ok(msg);
                }
                if sh.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = sh.not_empty.wait(q).expect("channel lock");
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued;
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let sh = &*self.0;
            let mut q = sh.queue.lock().expect("channel lock");
            if let Some(msg) = q.pop_front() {
                drop(q);
                sh.not_full.notify_one();
                return Ok(msg);
            }
            if sh.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over messages until disconnection.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// Creates a channel with unlimited buffering.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_across_threads_delivers_everything() {
        let (tx, rx) = channel::bounded::<u64>(8);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().sum::<u64>())
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        tx.send(i + p * 1_000).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..2_000u64).sum::<u64>());
    }

    #[test]
    fn bounded_blocks_and_resumes() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }
}
