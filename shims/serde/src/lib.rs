//! Offline shim of `serde`: marker traits plus a no-op derive.
//!
//! The workspace uses serde only to tag report/config types as
//! serializable for downstream users (`#[derive(Serialize, Deserialize)]`
//! on plain data types); nothing in-tree drives an actual serializer.
//! This shim keeps those annotations compiling offline: the traits carry
//! no required methods and the derive emits empty trait impls.
//!
//! If a future change needs real serialization, replace this shim with
//! the actual `serde` crate (drop-in: same trait and derive names).

#![forbid(unsafe_code)]

/// Marker for types whose values can be serialized.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
