//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no crates.io access, so this crate supplies
//! drop-in replacements for the handful of items the workspace imports:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is `xoshiro256++` seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — so quality
//! is comparable, though the exact output stream differs from upstream.
//! Everything in the workspace treats the RNG as an opaque seeded source,
//! so only determinism per seed matters, not stream compatibility.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's draw domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (`xoshiro256++`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u32..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn f64_draws_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }
}
