//! Offline shim of `proptest`: the macro-and-strategy subset this
//! workspace's property tests use.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message instead of minimizing them first.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test function's name, so failures reproduce exactly
//!   across runs.
//!
//! Supported surface: `proptest! { #![proptest_config(...)] #[test]
//! fn f(x in strategy, ...) { ... } }`, integer/float range strategies,
//! `any::<T>()` for primitives and tuples, tuple-of-strategy composition,
//! `prop::collection::vec`, `Just`, `prop_assert!`, `prop_assert_eq!`.

#![forbid(unsafe_code)]

/// Strategy trait and primitive implementations.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    start.wrapping_add(v as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

/// `any::<T>()` and the [`Arbitrary`] trait backing it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_tuple {
        ($($s:ident),+) => {
            impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($s::arbitrary(rng),)+)
                }
            }
        };
    }

    arbitrary_tuple!(A);
    arbitrary_tuple!(A, B);
    arbitrary_tuple!(A, B, C);
    arbitrary_tuple!(A, B, C, D);
    arbitrary_tuple!(A, B, C, D, E);
    arbitrary_tuple!(A, B, C, D, E, F);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start < self.len.end {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element` with length in `len`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Number of cases per property and related knobs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Random cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Error type carried by `Result`-returning property helpers.
    ///
    /// In real proptest the `prop_assert*` macros return
    /// `Err(TestCaseError::fail(..))`; this shim's macros panic instead,
    /// so the type only exists to keep helper signatures
    /// (`Result<(), TestCaseError>`) compiling unchanged.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "test case failed: {}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator used by strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed (typically derived from the test
        /// name so each property gets an independent stream).
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from a test name (FNV-1a).
        #[must_use]
        pub fn seed_from_name(name: &str) -> u64 {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::TestRng::seed_from_name(stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                for __case in 0..__config.cases {
                    let ( $($pat,)* ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )*
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let (a, b) = ((0u8..5), any::<bool>()).generate(&mut rng);
            assert!(a < 5);
            let _ = b;
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..500 {
            let v = prop::collection::vec(0u16..100, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..50, mut ys in prop::collection::vec(any::<u64>(), 0..10)) {
            ys.push(x as u64);
            prop_assert!(x < 50);
            prop_assert_eq!(*ys.last().expect("non-empty"), x as u64);
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_compiles(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
