//! Offline shim of the `bytes` crate: just the little-endian `Buf` /
//! `BufMut` cursor methods the workspace's trace codec uses, implemented
//! for `&[u8]` and `Vec<u8>`.

#![forbid(unsafe_code)]

/// Read cursor over a byte slice.
///
/// # Panics
///
/// The `get_*` methods panic when fewer than the required bytes remain;
/// callers check [`Buf::remaining`] first, as with the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_slice(b"hdr");
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 3 + 2 + 4 + 8);
        r.advance(3);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }
}
