//! Offline shim of `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's poison-free `lock()` / `read()` / `write()` signatures.
//! Poisoned locks are recovered transparently (the workspace's pipeline
//! propagates stage panics by joining threads, so a poisoned snapshot
//! mutex should not re-panic readers).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
