//! Offline shim of `criterion`: a small wall-clock benchmark harness
//! behind criterion's configuration/group/bench API.
//!
//! Measurement model: each `bench_function` runs the closure for the
//! configured warm-up time, then repeats timed batches until the
//! measurement time elapses and reports the median per-iteration cost
//! and derived element throughput. No statistical analysis, plots, or
//! saved baselines — just honest timings printed to stdout, enough to
//! compare detector variants in this workspace.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Units processed per iteration; scales reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements handled per iteration of the benched closure.
    Elements(u64),
    /// Bytes handled per iteration of the benched closure.
    Bytes(u64),
}

/// A benchmark name with an attached parameter, e.g. `gbf/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Types usable as a `bench_function` identifier.
pub trait IntoBenchmarkId {
    /// The display label for reports.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to the bench closure; `iter` runs and times the payload.
pub struct Bencher {
    config: Config,
    /// Median per-iteration duration in nanoseconds, set by `iter`.
    measured_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget is spent, while
        // estimating a batch size that takes roughly 1ms per sample.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            iters_done += 1;
        }
        let warm_ns = warm_start.elapsed().as_nanos() as f64 / iters_done.max(1) as f64;
        let batch = ((1_000_000.0 / warm_ns.max(0.5)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.config.measurement_time
            || samples.len() < self.config.sample_size.min(8)
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= self.config.sample_size * 4 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.measured_ns = samples[samples.len() / 2];
    }
}

/// Shared run configuration (warm-up, measurement window, samples).
#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

/// Benchmark manager: owns configuration, hands out groups.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the untimed warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.config.warm_up_time = dur;
        self
    }

    /// Sets the timed measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.config.measurement_time = dur;
        self
    }

    /// Sets the target number of timing samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing a throughput definition.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares units-per-iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its median cost and throughput.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            config: self.criterion.config,
            measured_ns: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.measured_ns;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 * 1_000.0 / ns)
            }
            None => String::new(),
        };
        println!("{}/{label:<28} {ns:>10.1} ns/iter{rate}", self.name);
    }

    /// Ends the group (marker for parity with criterion's API).
    pub fn finish(self) {}
}

/// Declares a benchmark group: plain `(name, targets...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(3));
                acc
            })
        });
        group.bench_function("plain-name", |b| b.iter(|| black_box(7u32) * 2));
        group.finish();
    }
}
