//! Integration tests for the headline theorem: GBF and TBF have **zero
//! false negatives** (Theorems 1.1 and 2.1), even under deliberately
//! starved memory where false positives are frequent.
//!
//! A false negative is defined self-consistently (paper Definition 1):
//! the detector previously determined an identical click *valid* within
//! the current window and still answers `Distinct`. See
//! `tests/common/mod.rs`.

mod common;

use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::{BotnetConfig, BotnetStream, DuplicateInjector, UniqueClickStream};
use common::{jumping_false_negatives, sliding_false_negatives};

/// Heavy duplication + tiny memory: FPs abound, FNs must not.
fn hostile_keys(count: usize) -> impl Iterator<Item = Vec<u8>> {
    let base = UniqueClickStream::new(17, 4, 32);
    DuplicateInjector::new(base, 0.4, 2_000, 5)
        .take(count)
        .map(|c| c.key().to_vec())
}

/// A botnet stream: few ids, extreme repetition.
fn botnet_keys(count: usize) -> impl Iterator<Item = Vec<u8>> {
    BotnetStream::new(
        BotnetConfig {
            bots: 64,
            attack_fraction: 0.6,
            ..BotnetConfig::default()
        },
        4,
        16,
    )
    .take(count)
    .map(|c| c.click.key().to_vec())
}

#[test]
fn tbf_zero_fn_under_memory_starvation() {
    let n = 1 << 12;
    // Only ~2 entries per window element: FP rate is enormous.
    let cfg = TbfConfig::builder(n)
        .entries(n * 2)
        .hash_count(4)
        .seed(3)
        .build()
        .expect("valid config");
    let mut tbf = Tbf::new(cfg).expect("valid detector");
    assert_eq!(
        sliding_false_negatives(&mut tbf, n, hostile_keys(200_000)),
        0
    );
}

#[test]
fn tbf_zero_fn_on_botnet_stream() {
    let n = 4_096;
    let cfg = TbfConfig::builder(n).entries(n * 8).build().expect("valid");
    let mut tbf = Tbf::new(cfg).expect("valid detector");
    assert_eq!(
        sliding_false_negatives(&mut tbf, n, botnet_keys(300_000)),
        0
    );
}

#[test]
fn tbf_zero_fn_with_minimal_range_extension() {
    // C = 1 maximizes wraparound pressure on the cleaning sweep.
    let n = 512;
    let cfg = TbfConfig::builder(n)
        .entries(n * 4)
        .range_extension(1)
        .hash_count(5)
        .build()
        .expect("valid");
    let mut tbf = Tbf::new(cfg).expect("valid detector");
    assert_eq!(
        sliding_false_negatives(&mut tbf, n, hostile_keys(150_000)),
        0
    );
}

#[test]
fn gbf_zero_fn_under_memory_starvation() {
    let (n, q) = (1 << 12, 8);
    let cfg = GbfConfig::builder(n, q)
        .filter_bits(n / q * 3) // 3 bits per sub-window element
        .hash_count(3)
        .seed(11)
        .build()
        .expect("valid config");
    let mut gbf = Gbf::new(cfg).expect("valid detector");
    assert_eq!(
        jumping_false_negatives(&mut gbf, n, q, hostile_keys(200_000)),
        0
    );
}

#[test]
fn gbf_zero_fn_on_botnet_stream() {
    let (n, q) = (2_048, 4);
    let cfg = GbfConfig::builder(n, q)
        .filter_bits(4_096)
        .build()
        .expect("valid config");
    let mut gbf = Gbf::new(cfg).expect("valid detector");
    assert_eq!(
        jumping_false_negatives(&mut gbf, n, q, botnet_keys(250_000)),
        0
    );
}

#[test]
fn jumping_tbf_zero_fn_with_large_q() {
    let (n, q) = (4_096, 256);
    let cfg = JumpingTbfConfig::new(n, q, n * 2, 4, 9).expect("valid config");
    let mut d = JumpingTbf::new(cfg).expect("valid detector");
    assert_eq!(
        jumping_false_negatives(&mut d, n, q, hostile_keys(200_000)),
        0
    );
}

#[test]
fn all_detectors_flag_immediate_repeats_forever() {
    // The weakest possible guarantee, checked for a long time: a click
    // repeated back-to-back is always caught, regardless of state age.
    let n = 1 << 10;
    let mut tbf =
        Tbf::new(TbfConfig::builder(n).entries(n * 4).build().expect("cfg")).expect("detector");
    let mut gbf = Gbf::new(
        GbfConfig::builder(n, 8)
            .filter_bits(n)
            .build()
            .expect("cfg"),
    )
    .expect("detector");
    use cfd_windows::DuplicateDetector;
    for (i, key) in hostile_keys(100_000).enumerate() {
        let t1 = tbf.observe(&key);
        let t2 = tbf.observe(&key);
        assert!(t2.is_duplicate(), "TBF missed back-to-back repeat at {i}");
        let _ = t1;
        let g1 = gbf.observe(&key);
        let g2 = gbf.observe(&key);
        assert!(g2.is_duplicate(), "GBF missed back-to-back repeat at {i}");
        let _ = g1;
    }
}
