//! Robustness: decoders must never panic on arbitrary bytes, and the
//! public constructors must reject rather than misbehave on garbage
//! parameters. (A billing system parses traces and checkpoints from
//! disk/network; "malformed input" must be an `Err`, not a crash.)

use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::read_trace;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_trace_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_trace(&bytes); // Ok or Err, never a panic
    }

    #[test]
    fn trace_header_fuzzing_with_valid_magic(
        mut bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Force the magic so the parser gets past the first gate.
        let mut buf = b"CFDT".to_vec();
        buf.append(&mut bytes);
        let _ = read_trace(&buf);
    }

    #[test]
    fn tbf_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Tbf::restore(&bytes);
    }

    #[test]
    fn gbf_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Gbf::restore(&bytes);
    }

    #[test]
    fn checkpoint_restore_with_valid_header_fuzzed_body(
        mut bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Valid magic + version + kind, garbage after.
        let mut buf = b"CFDS".to_vec();
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(1); // TBF
        buf.append(&mut bytes);
        let _ = Tbf::restore(&buf);
    }

    #[test]
    fn truncated_valid_checkpoints_error_cleanly(cut in 0usize..200) {
        let cfg = TbfConfig::builder(64).entries(256).build().expect("cfg");
        let d = Tbf::new(cfg).expect("detector");
        let buf = d.checkpoint();
        let cut = cut.min(buf.len());
        if cut < buf.len() {
            prop_assert!(Tbf::restore(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn bitflipped_gbf_checkpoints_never_panic(
        flip_at in 0usize..512,
        flip_bit in 0u8..8,
    ) {
        let cfg = GbfConfig::builder(64, 4).filter_bits(256).build().expect("cfg");
        let mut d = Gbf::new(cfg).expect("detector");
        for i in 0..100u64 {
            use cfd_windows::DuplicateDetector;
            d.observe(&i.to_le_bytes());
        }
        let mut buf = d.checkpoint();
        let idx = flip_at % buf.len();
        buf[idx] ^= 1 << flip_bit;
        // Either restores (flip hit payload bits, which are all valid) or
        // errors; never panics, never produces an unusable detector.
        if let Ok(mut restored) = Gbf::restore(&buf) {
            use cfd_windows::DuplicateDetector;
            let _ = restored.observe(b"post-restore-probe");
        }
    }
}

/// A populated 3-shard TBF checkpoint for the sharded fuzzing below.
fn sharded_checkpoint() -> Vec<u8> {
    use cfd_core::sharded::ShardedDetector;
    use cfd_core::CheckpointState;
    use cfd_windows::DuplicateDetector;
    let mut d = ShardedDetector::from_fn(11, 3, |_| {
        Tbf::new(TbfConfig::builder(32).entries(128).build().expect("cfg"))
    })
    .expect("sharded detector");
    for i in 0..200u64 {
        d.observe(&i.to_le_bytes());
    }
    d.checkpoint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        use cfd_core::sharded::ShardedDetector;
        use cfd_core::CheckpointState;
        let _ = ShardedDetector::<Tbf>::restore(&bytes);
    }

    #[test]
    fn sharded_restore_with_valid_header_fuzzed_body(
        mut bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        use cfd_core::sharded::ShardedDetector;
        use cfd_core::CheckpointState;
        // Valid magic + version + sharded kind, garbage after — the
        // shard count and every nested per-shard blob come from the
        // fuzzer.
        let mut buf = b"CFDS".to_vec();
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(3); // sharded
        buf.append(&mut bytes);
        let _ = ShardedDetector::<Tbf>::restore(&buf);
    }

    #[test]
    fn truncated_sharded_checkpoints_error_cleanly(cut in 0usize..4096) {
        use cfd_core::sharded::ShardedDetector;
        use cfd_core::CheckpointState;
        let buf = sharded_checkpoint();
        let cut = cut.min(buf.len());
        if cut < buf.len() {
            prop_assert!(ShardedDetector::<Tbf>::restore(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn bitflipped_sharded_checkpoints_never_panic(
        flip_at in 0usize..8192,
        flip_bit in 0u8..8,
    ) {
        use cfd_core::sharded::ShardedDetector;
        use cfd_core::CheckpointState;
        use cfd_windows::DuplicateDetector;
        let mut buf = sharded_checkpoint();
        let idx = flip_at % buf.len();
        buf[idx] ^= 1 << flip_bit;
        // Either restores or errors; never panics, and a successful
        // restore yields a usable detector.
        if let Ok(mut restored) = ShardedDetector::<Tbf>::restore(&buf) {
            let _ = restored.observe(b"post-restore-probe");
        }
    }
}
