//! Shared helpers for the integration tests.

use cfd_windows::DuplicateDetector;
use std::collections::{HashSet, VecDeque};

/// Replays `keys` through `detector` and counts *self-consistent* false
/// negatives over a sliding window of `n`: a click is a false negative
/// iff the detector previously determined an identical click **valid**
/// (per its own verdicts, paper Definition 1) within the current window
/// and still answers `Distinct`.
///
/// This is the exact statement of the zero-false-negative theorems: an
/// earlier false positive blocks an insertion, so a later repeat being
/// `Distinct` is consistent, not an error.
pub fn sliding_false_negatives<D: DuplicateDetector>(
    detector: &mut D,
    n: usize,
    keys: impl Iterator<Item = Vec<u8>>,
) -> u64 {
    let mut ring: VecDeque<(Vec<u8>, bool)> = VecDeque::with_capacity(n);
    let mut valid: HashSet<Vec<u8>> = HashSet::new();
    let mut false_negatives = 0u64;
    for key in keys {
        let dup = detector.observe(&key).is_duplicate();
        if ring.len() == n {
            let (old, was_valid) = ring.pop_front().expect("ring full");
            if was_valid {
                valid.remove(&old);
            }
        }
        if !dup && valid.contains(&key) {
            false_negatives += 1;
        }
        let counts_as_valid = !dup && !valid.contains(&key);
        if counts_as_valid {
            valid.insert(key.clone());
        }
        ring.push_back((key, counts_as_valid));
    }
    false_negatives
}

/// Jumping-window variant: validity expires one sub-window at a time
/// (current partial + `q − 1` full sub-windows), mirroring
/// `cfd_windows::ExactJumpingDedup` but driven by the detector's own
/// verdicts.
pub fn jumping_false_negatives<D: DuplicateDetector>(
    detector: &mut D,
    n: usize,
    q: usize,
    keys: impl Iterator<Item = Vec<u8>>,
) -> u64 {
    let sub_len = n.div_ceil(q);
    let mut subs: VecDeque<HashSet<Vec<u8>>> = VecDeque::new();
    subs.push_back(HashSet::new());
    let mut filled = 0usize;
    let mut false_negatives = 0u64;
    for key in keys {
        let dup = detector.observe(&key).is_duplicate();
        let known = subs.iter().any(|s| s.contains(&key));
        if !dup && known {
            false_negatives += 1;
        }
        if !dup && !known {
            subs.back_mut().expect("non-empty").insert(key);
        }
        filled += 1;
        if filled == sub_len {
            filled = 0;
            subs.push_back(HashSet::new());
            if subs.len() > q {
                subs.pop_front();
            }
        }
    }
    false_negatives
}
