//! Keeps the hand-committed docs in sync with the generated sources.
//!
//! The README's algorithm table is the output of
//! [`cfd_core::registry::markdown_table`]; if a backend is added,
//! renamed, or its summary edited, this test fails until the README
//! section is regenerated (`cfd algos` prints the current table).

use std::fs;
use std::path::Path;

#[test]
fn readme_algorithm_table_matches_registry() {
    let readme = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md"))
        .expect("README.md is readable");
    let table = cfd_core::registry::markdown_table();
    assert!(
        readme.contains(&table),
        "README.md's algorithm table is stale — replace it with the \
         output of `cfd algos`:\n\n{table}"
    );
}

#[test]
fn readme_embeds_gateway_cli_usage_verbatim() {
    let readme = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md"))
        .expect("README.md is readable");
    // The binary splices these same constants into `cfd help`, so a
    // README that contains them verbatim cannot drift from the CLI.
    for (name, block) in [
        ("cfd serve", click_fraud_detection::cli::SERVE_USAGE),
        (
            "cfd replay-client",
            click_fraud_detection::cli::REPLAY_USAGE,
        ),
        ("cfd sweep", click_fraud_detection::cli::SWEEP_USAGE),
    ] {
        assert!(
            readme.contains(block),
            "README.md's `{name}` usage block is stale — paste \
             `click_fraud_detection::cli` verbatim:\n\n{block}"
        );
    }
}

#[test]
fn readme_names_every_registered_backend() {
    let readme = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md"))
        .expect("README.md is readable");
    for entry in cfd_core::registry::backends() {
        assert!(
            readme.contains(&format!("`{}`", entry.name)),
            "README.md never mentions registered backend `{}`",
            entry.name
        );
    }
}
