//! Integration tests pinning the measured false-positive rates to the
//! analytic models of `cfd-analysis` — the §5 experimental protocol at
//! laptop scale (the full-size figures come from `cfd-bench`).

use cfd_analysis::stats::wilson_95;
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::UniqueIdStream;
use cfd_windows::DuplicateDetector;

/// Runs the paper's protocol: feed `warm + measure` distinct ids, count
/// `Duplicate` verdicts in the measurement phase (all are FPs).
fn measure_fp<D: DuplicateDetector>(d: &mut D, warm: u64, measure: u64) -> (u64, u64) {
    let mut ids = UniqueIdStream::new(2024);
    for _ in 0..warm {
        let id = ids.next().expect("infinite");
        d.observe(&id.to_le_bytes());
    }
    let mut fps = 0u64;
    for _ in 0..measure {
        let id = ids.next().expect("infinite");
        if d.observe(&id.to_le_bytes()).is_duplicate() {
            fps += 1;
        }
    }
    (fps, measure)
}

#[test]
fn gbf_fp_matches_theory_at_fig2a_ratios() {
    // Scaled-down Fig. 2(a): N = 2^16, Q = 8, m = 14.3 bits/element.
    let n = 1 << 16;
    let q = 8;
    let m = 1_876_246 / 16; // same m/N ratio as the paper's 2^20 setting
    for k in [4usize, 7, 10] {
        let cfg = GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(k)
            .seed(k as u64)
            .build()
            .expect("valid config");
        let mut gbf = Gbf::new(cfg).expect("valid detector");
        let (fps, trials) = measure_fp(&mut gbf, 10 * n as u64, 10 * n as u64);
        let measured = wilson_95(fps, trials);
        let theory = cfd_analysis::gbf::fp_steady(m, k, n, q);
        // The Wilson interval (scaled 3x for model slack) must contain
        // the analytic prediction.
        assert!(
            theory <= measured.hi * 3.0 + 1e-4 && theory >= measured.lo / 3.0 - 1e-4,
            "k={k}: measured {} [{}, {}] vs theory {theory}",
            measured.estimate,
            measured.lo,
            measured.hi
        );
    }
}

#[test]
fn tbf_fp_matches_theory_at_fig2b_ratios() {
    // Scaled-down Fig. 2(b): N = 2^16, m = 14.4 entries/element.
    let n = 1 << 16;
    let m = 15_112_980 / 16;
    for k in [4usize, 7, 10] {
        let cfg = TbfConfig::builder(n)
            .entries(m)
            .hash_count(k)
            .seed(100 + k as u64)
            .build()
            .expect("valid config");
        let mut tbf = Tbf::new(cfg).expect("valid detector");
        let (fps, trials) = measure_fp(&mut tbf, 10 * n as u64, 10 * n as u64);
        let measured = wilson_95(fps, trials);
        let theory = cfd_analysis::tbf::fp_sliding(m, k, n);
        assert!(
            theory <= measured.hi * 3.0 + 1e-4 && theory >= measured.lo / 3.0 - 1e-4,
            "k={k}: measured {} [{}, {}] vs theory {theory}",
            measured.estimate,
            measured.lo,
            measured.hi
        );
    }
}

#[test]
fn fp_rate_is_u_shaped_in_k_for_tbf() {
    // The Fig. 2 curves dip near the optimal k: undersized and oversized
    // k must both measure worse than the optimum.
    let n = 1 << 14;
    let m = n * 14;
    let mut rates = Vec::new();
    for k in [1usize, 10, 24] {
        let cfg = TbfConfig::builder(n)
            .entries(m)
            .hash_count(k)
            .seed(77)
            .build()
            .expect("valid config");
        let mut tbf = Tbf::new(cfg).expect("valid detector");
        let (fps, trials) = measure_fp(&mut tbf, 5 * n as u64, 40 * n as u64);
        rates.push(fps as f64 / trials as f64);
    }
    assert!(rates[1] < rates[0], "optimal k should beat k=1: {rates:?}");
    assert!(rates[1] < rates[2], "optimal k should beat k=24: {rates:?}");
}

#[test]
fn gbf_fp_grows_with_subwindow_count_at_fixed_memory() {
    // More sub-windows with the same per-filter m -> more chances to
    // false-positive (the O(Q·...) factor in Theorem 1).
    let n = 1 << 14;
    let m = 40_000;
    let mut rates = Vec::new();
    for q in [2usize, 8, 32] {
        let cfg = GbfConfig::builder(n, q)
            .filter_bits(m)
            .hash_count(5)
            .seed(5)
            .build()
            .expect("valid config");
        let mut gbf = Gbf::new(cfg).expect("valid detector");
        let (fps, trials) = measure_fp(&mut gbf, 5 * n as u64, 40 * n as u64);
        rates.push(fps as f64 / trials as f64);
    }
    // q=2 loads each filter with n/2 elements vs n/32: the load effect
    // dominates, so FP *decreases* with q here; check the theory agrees
    // directionally rather than assuming monotone growth.
    let theory: Vec<f64> = [2usize, 8, 32]
        .iter()
        .map(|&q| cfd_analysis::gbf::fp_steady(m, 5, n, q))
        .collect();
    for (r, t) in rates.iter().zip(&theory) {
        assert!(
            (r - t).abs() < t * 0.5 + 0.01,
            "measured {r} vs theory {t} (all: {rates:?} vs {theory:?})"
        );
    }
}
