//! Integration tests for the time-based detectors against the exact
//! timed oracles of `cfd-windows` (the §3.1/§4.1 extensions).

use cfd_core::gbf_time::{TimeGbf, TimeGbfConfig};
use cfd_core::tbf_time::{TimeTbf, TimeTbfConfig};
use cfd_stream::{DuplicateInjector, PoissonArrivals, UniqueClickStream};
use cfd_windows::{ExactTimeJumpingDedup, ExactTimeSlidingDedup, TimedDuplicateDetector, Verdict};

/// A bursty timed key stream: Poisson arrivals with duplicate injection.
fn timed_keys(count: usize, rate: f64, seed: u64) -> Vec<(Vec<u8>, u64)> {
    let ids = DuplicateInjector::new(UniqueClickStream::new(seed, 4, 16), 0.3, 2_000, seed ^ 1);
    let ticks = PoissonArrivals::new(rate, seed ^ 2);
    ids.zip(ticks)
        .take(count)
        .map(|(c, t)| (c.key().to_vec(), t))
        .collect()
}

#[test]
fn time_tbf_equals_exact_oracle_with_ample_memory() {
    // 64 units of 10 ticks; dense traffic keeps sweep and clock in step.
    let mut tbf =
        TimeTbf::new(TimeTbfConfig::new(64, 10, 1 << 18, 8, 3).expect("cfg")).expect("detector");
    let mut oracle = ExactTimeSlidingDedup::new(64, 10);
    for (i, (key, tick)) in timed_keys(150_000, 0.8, 7).iter().enumerate() {
        let got = tbf.observe_at(key, *tick);
        let want = oracle.observe_at(key, *tick);
        assert_eq!(got, want, "diverged at element {i} (tick {tick})");
    }
}

#[test]
fn time_tbf_oracle_duplicates_always_flagged_under_sparse_traffic() {
    // Sparse traffic (many empty units) exercises the lazy daemon replay.
    let mut tbf =
        TimeTbf::new(TimeTbfConfig::new(32, 5, 1 << 18, 8, 9).expect("cfg")).expect("detector");
    let mut oracle = ExactTimeSlidingDedup::new(32, 5);
    for (i, (key, tick)) in timed_keys(80_000, 0.02, 11).iter().enumerate() {
        let got = tbf.observe_at(key, *tick);
        let want = oracle.observe_at(key, *tick);
        if want == Verdict::Duplicate {
            assert_eq!(got, Verdict::Duplicate, "missed duplicate at {i}");
        }
    }
}

#[test]
fn time_gbf_oracle_duplicates_always_flagged() {
    // 4 sub-windows of 8 units of 10 ticks.
    let mut gbf =
        TimeGbf::new(TimeGbfConfig::new(4, 8, 10, 1 << 17, 8, 5).expect("cfg")).expect("detector");
    let mut oracle = ExactTimeJumpingDedup::new(4, 8, 10);
    for (i, (key, tick)) in timed_keys(120_000, 0.5, 13).iter().enumerate() {
        let got = gbf.observe_at(key, *tick);
        let want = oracle.observe_at(key, *tick);
        if want == Verdict::Duplicate {
            assert_eq!(
                got,
                Verdict::Duplicate,
                "missed duplicate at {i} (tick {tick})"
            );
        }
    }
}

#[test]
fn quiet_gaps_forget_everything_in_both_models() {
    let mut tbf =
        TimeTbf::new(TimeTbfConfig::new(10, 1, 1 << 14, 6, 1).expect("cfg")).expect("detector");
    let mut gbf =
        TimeGbf::new(TimeGbfConfig::new(5, 2, 1, 1 << 14, 6, 1).expect("cfg")).expect("detector");
    let mut tick = 0u64;
    for round in 0..50u64 {
        assert_eq!(
            tbf.observe_at(b"ghost", tick),
            Verdict::Distinct,
            "tbf round {round}"
        );
        assert_eq!(
            gbf.observe_at(b"ghost", tick),
            Verdict::Distinct,
            "gbf round {round}"
        );
        // Immediate repeat is always caught...
        assert_eq!(tbf.observe_at(b"ghost", tick), Verdict::Duplicate);
        assert_eq!(gbf.observe_at(b"ghost", tick), Verdict::Duplicate);
        // ...then a gap far beyond both windows clears the slate.
        tick += 10_000 + round;
    }
}

#[test]
fn dense_and_sparse_phases_interleave_correctly() {
    // Alternating load phases stress the sweep accounting: the detector
    // must neither leak stale state into the next phase nor drop active
    // state within one.
    let mut tbf =
        TimeTbf::new(TimeTbfConfig::new(20, 10, 1 << 16, 8, 21).expect("cfg")).expect("detector");
    let mut oracle = ExactTimeSlidingDedup::new(20, 10);
    let mut tick = 0u64;
    let mut rng_state = 0x1234_5678_u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        rng_state >> 33
    };
    for i in 0..100_000u64 {
        // Phase switch every 5k clicks: dense (1 tick apart) vs sparse
        // (35 ticks apart, i.e. several units between arrivals).
        tick += if (i / 5_000) % 2 == 0 { 1 } else { 35 };
        let key = (next() % 500).to_le_bytes();
        let got = tbf.observe_at(&key, tick);
        let want = oracle.observe_at(&key, tick);
        if want == Verdict::Duplicate {
            assert_eq!(got, Verdict::Duplicate, "missed duplicate at {i}");
        }
    }
}
