//! End-to-end restart drill: a billing gateway checkpoints its detector,
//! "crashes", restores, and must keep charging *identically* — no
//! in-window duplicate is re-billed, no valid click is double-blocked.

use click_fraud_detection::adnet::Registry;
use click_fraud_detection::prelude::*;

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..64 {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100_000,
        })
        .expect("advertiser registered");
    }
    r
}

fn attack(n: usize) -> Vec<Click> {
    BotnetStream::new(
        BotnetConfig {
            bots: 300,
            attack_fraction: 0.35,
            ..BotnetConfig::default()
        },
        8,
        64,
    )
    .take(n)
    .map(|c| c.click)
    .collect()
}

#[test]
fn tbf_gateway_restart_is_charge_identical() {
    let clicks = attack(60_000);
    let cfg = TbfConfig::builder(4_096)
        .entries(1 << 16)
        .seed(9)
        .build()
        .expect("cfg");

    // Reference: one uninterrupted network.
    let mut reference = AdNetwork::new(Tbf::new(cfg).expect("detector"));
    *reference.registry_mut() = registry();
    let ref_report = reference.run(clicks.iter());

    // Gateway: process half, checkpoint, "crash", restore, process rest.
    let mut first = AdNetwork::new(Tbf::new(cfg).expect("detector"));
    *first.registry_mut() = registry();
    let (half_a, half_b) = clicks.split_at(clicks.len() / 2);
    for c in half_a {
        first.process(c);
    }
    let snapshot = first.detector().checkpoint();
    let mid_report = first.report();

    let restored = Tbf::restore(&snapshot).expect("valid checkpoint");
    let mut second = AdNetwork::new(restored);
    *second.registry_mut() = registry();
    for c in half_b {
        second.process(c);
    }
    let post_report = second.report();

    // Charges across the two halves must equal the uninterrupted run.
    assert_eq!(
        mid_report.charged + post_report.charged,
        ref_report.charged,
        "restart changed billing"
    );
    assert_eq!(
        mid_report.duplicates_blocked + post_report.duplicates_blocked,
        ref_report.duplicates_blocked,
        "restart changed fraud blocking"
    );
}

#[test]
fn gbf_gateway_restart_is_charge_identical_both_layouts() {
    let clicks = attack(60_000);
    for layout in [GbfLayout::Padded, GbfLayout::Tight] {
        let cfg = GbfConfig::builder(4_096, 8)
            .filter_bits(8_192)
            .hash_count(6)
            .seed(4)
            .layout(layout)
            .build()
            .expect("cfg");

        let mut reference = AdNetwork::new(Gbf::new(cfg).expect("detector"));
        *reference.registry_mut() = registry();
        let ref_report = reference.run(clicks.iter());

        let mut first = AdNetwork::new(Gbf::new(cfg).expect("detector"));
        *first.registry_mut() = registry();
        let (half_a, half_b) = clicks.split_at(17_777); // mid sub-window
        for c in half_a {
            first.process(c);
        }
        let snapshot = first.detector().checkpoint();
        let mid = first.report();

        let mut second = AdNetwork::new(Gbf::restore(&snapshot).expect("valid checkpoint"));
        *second.registry_mut() = registry();
        for c in half_b {
            second.process(c);
        }
        let post = second.report();

        assert_eq!(
            mid.charged + post.charged,
            ref_report.charged,
            "layout {layout:?}: restart changed billing"
        );
    }
}

#[test]
fn checkpoints_are_portable_across_detector_instances() {
    // A snapshot taken on one "machine" (instance) restores on another
    // and the two stay in lockstep indefinitely.
    let cfg = TbfConfig::builder(1_024)
        .entries(1 << 14)
        .seed(3)
        .build()
        .expect("cfg");
    let mut a = Tbf::new(cfg).expect("detector");
    for i in 0..10_000u64 {
        a.observe(&(i % 1_500).to_le_bytes());
    }
    let snap = a.checkpoint();
    let mut b = Tbf::restore(&snap).expect("valid checkpoint");
    let mut c = Tbf::restore(&snap).expect("valid checkpoint");
    for i in 10_000..30_000u64 {
        let key = (i % 1_500).to_le_bytes();
        let va = a.observe(&key);
        assert_eq!(va, b.observe(&key), "replica b diverged at {i}");
        assert_eq!(va, c.observe(&key), "replica c diverged at {i}");
    }
}
