//! With ample memory (FP ≈ 0) the streaming detectors must be verdict-
//! for-verdict identical to the exact oracles over their window models —
//! the strongest end-to-end statement of correctness.

use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::{DuplicateInjector, UniqueClickStream};
use cfd_windows::{DuplicateDetector, ExactJumpingDedup, ExactSlidingDedup};

fn keys(count: usize, dup_prob: f64, lag: usize) -> Vec<Vec<u8>> {
    DuplicateInjector::new(UniqueClickStream::new(31, 4, 8), dup_prob, lag, 13)
        .take(count)
        .map(|c| c.key().to_vec())
        .collect()
}

#[test]
fn tbf_equals_exact_sliding_with_ample_memory() {
    let n = 1 << 10;
    // 64 entries per element: FP probability ~ 2^-44 per probe.
    let cfg = TbfConfig::builder(n).entries(n * 64).build().expect("cfg");
    let mut tbf = Tbf::new(cfg).expect("detector");
    let mut oracle = ExactSlidingDedup::new(n);
    for (i, key) in keys(200_000, 0.3, 3_000).iter().enumerate() {
        assert_eq!(
            tbf.observe(key),
            oracle.observe(key),
            "verdict diverged at element {i}"
        );
    }
}

#[test]
fn gbf_equals_exact_jumping_with_ample_memory() {
    let (n, q) = (1 << 10, 8);
    // Sizing note: with double hashing, two ids colliding in
    // (h1 mod m, h2 mod m) share their entire probe set and
    // false-positive regardless of k (probability ~2/m² per in-window
    // pair). m = 2^17 pushes that floor below 0.01 expected events for
    // this stream; k is set moderately rather than "optimally" large
    // because beyond the floor more hashes no longer help.
    let cfg = GbfConfig::builder(n, q)
        .filter_bits(n * 128)
        .hash_count(12)
        .build()
        .expect("cfg");
    let mut gbf = Gbf::new(cfg).expect("detector");
    let mut oracle = ExactJumpingDedup::new(n, q);
    for (i, key) in keys(200_000, 0.3, 3_000).iter().enumerate() {
        assert_eq!(
            gbf.observe(key),
            oracle.observe(key),
            "verdict diverged at element {i}"
        );
    }
}

#[test]
fn jumping_tbf_equals_exact_jumping_with_ample_memory() {
    let (n, q) = (1 << 10, 64);
    let cfg = JumpingTbfConfig::new(n, q, n * 64, 10, 3).expect("cfg");
    let mut d = JumpingTbf::new(cfg).expect("detector");
    let mut oracle = ExactJumpingDedup::new(n, q);
    for (i, key) in keys(150_000, 0.35, 2_000).iter().enumerate() {
        assert_eq!(
            d.observe(key),
            oracle.observe(key),
            "verdict diverged at element {i}"
        );
    }
}

#[test]
fn gbf_and_jumping_tbf_agree_with_each_other() {
    // Two different data structures implementing the same window model
    // must agree wherever neither false-positives.
    let (n, q) = (2_048, 16);
    let mut gbf = Gbf::new(
        GbfConfig::builder(n, q)
            .filter_bits(n * 16)
            .hash_count(10)
            .build()
            .expect("cfg"),
    )
    .expect("detector");
    let mut jtbf = JumpingTbf::new(JumpingTbfConfig::new(n, q, n * 64, 10, 3).expect("cfg"))
        .expect("detector");
    let mut disagreements = 0u64;
    let ks = keys(150_000, 0.25, 4_000);
    for key in &ks {
        if gbf.observe(key) != jtbf.observe(key) {
            disagreements += 1;
        }
    }
    assert!(
        disagreements < 5,
        "structures over the same window disagreed {disagreements} times"
    );
}
