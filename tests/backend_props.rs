//! Backend-agnostic differential property harness.
//!
//! Earlier PRs grew one property file per detector; this harness runs
//! the whole matrix from a single parameterized loop over
//! [`cfd_core::registry::backends`], so a backend registered there is
//! automatically held to the full contract:
//!
//! 1. **Zero false negatives** under its own window model (sliding or
//!    jumping, chosen from `window()`), in the self-consistent
//!    Definition-1 sense of `tests/common`.
//! 2. **Batch ≡ sequential**: `observe_batch` under arbitrary chunking
//!    and the flat-key `observe_flat_into` path are verdict-for-verdict
//!    identical to per-click `observe`.
//! 3. **Layout differential**: the blocked layout is a probe-placement
//!    change, not a semantic one — verdicts may differ from scattered
//!    only through one-sided false positives, so both layouts stay
//!    zero-FN (property 1 covers each) and their verdict streams agree
//!    on all but a small FP-explainable fraction.
//! 4. **Checkpoint round-trip**: `checkpoint_bytes` →
//!    [`cfd_core::registry::restore_any`] (and the entry's own
//!    `restore`) resumes a detector that continues verdict-for-verdict
//!    identically to the original.
//! 5. **SIMD ≡ scalar**: the AVX2 probe/clean kernels are a dispatch
//!    decision, not a semantic one — the same stream judged with the
//!    wide kernels forced off and on is verdict-for-verdict identical
//!    for every backend in both layouts.

mod common;

use cfd_core::config::ProbeLayout;
use cfd_core::registry::{self, BackendGeometry, MemorySpec};
use cfd_core::{ArenaConfig, TenantArena};
use cfd_stream::{
    BotnetConfig, BotnetStream, DuplicateInjector, TenantTraffic, TenantTrafficConfig,
    UniqueClickStream, TENANT_KEY_LEN,
};
use cfd_windows::{DuplicateDetector, WindowSpec};
use proptest::prelude::*;
use std::sync::Mutex;

/// Window length shared by every property: small enough that a few
/// thousand keys cross many window turnovers.
const N: usize = 512;

/// Both probe layouts, the inner axis of every loop.
const LAYOUTS: [ProbeLayout; 2] = [ProbeLayout::Scattered, ProbeLayout::Blocked];

/// The shared equal-budget geometry. 64 bits per window element funds
/// every registered backend's minimum shape (and leaves FPs frequent —
/// the stress the zero-FN property wants); the layout differential
/// instead passes a budget where FPs are rare, so disagreement stays a
/// sliver.
fn geometry(seed: u64, layout: ProbeLayout, bits_per_element: usize) -> BackendGeometry {
    BackendGeometry::new(N, MemorySpec::TotalBits(N * bits_per_element))
        .with_sub_windows(4)
        .with_hash_count(4)
        .with_seed(seed)
        .with_probe(layout)
}

/// Duplicate-heavy keys: 40% re-clicks within a short gap, so every
/// window sees genuine duplicates.
fn injected_keys(seed: u64, count: usize) -> Vec<Vec<u8>> {
    DuplicateInjector::new(UniqueClickStream::new(seed, 4, 32), 0.4, 300, seed ^ 5)
        .take(count)
        .map(|c| c.key().to_vec())
        .collect()
}

/// Botnet keys: few identities, extreme repetition.
fn botnet_keys(seed: u64, count: usize) -> Vec<Vec<u8>> {
    BotnetStream::new(
        BotnetConfig {
            bots: 48,
            attack_fraction: 0.5,
            seed,
            ..BotnetConfig::default()
        },
        4,
        16,
    )
    .take(count)
    .map(|c| c.click.key().to_vec())
    .collect()
}

/// Fixed-stride 8-byte keys with forced repeats (`space` distinct ids),
/// packed flat for the `observe_flat_into` parity check.
fn flat_keys(seed: u64, count: usize, space: u64) -> Vec<u8> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(count * 8);
    for _ in 0..count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&((x >> 16) % space).to_le_bytes());
    }
    out
}

/// Shared tenant geometry for the arena properties: a 32-element
/// window per tenant at the same 299-entry/6-bit region shape the
/// bench budgets, deliberately under-provisioned at 8 initial slots so
/// a 64-tenant stream forces the slab through several growth doublings
/// mid-property.
fn arena_config(seed: u64, layout: ProbeLayout) -> ArenaConfig {
    ArenaConfig::new(32, 299, 4, seed)
        .with_initial_slots(8)
        .with_probe(layout)
}

/// Both layouts that the shared tenant geometry supports (blocked is
/// skipped if no cache-line block shape exists for the entry shape).
fn arena_layouts(seed: u64) -> Vec<ArenaConfig> {
    LAYOUTS
        .iter()
        .map(|&layout| arena_config(seed, layout))
        .filter(|cfg| cfg.probe == ProbeLayout::Scattered || cfg.block_geometry().is_some())
        .collect()
}

/// A Zipf-skewed multi-tenant key stream: 64 tenants, bursty runs,
/// 20% injected adjacent duplicates.
fn tenant_keys(seed: u64, count: usize) -> Vec<[u8; TENANT_KEY_LEN]> {
    TenantTraffic::new(TenantTrafficConfig {
        tenants: 64,
        skew: 1.0,
        duplicate_rate: 0.2,
        run_len: 3,
        seed,
    })
    .take(count)
    .collect()
}

/// The tenant prefix (first eight key bytes) as a sort key.
fn tenant_of(key: &[u8; TENANT_KEY_LEN]) -> u64 {
    u64::from_le_bytes(key[..8].try_into().unwrap())
}

/// Runs the self-consistent false-negative oracle matching the
/// detector's own window model.
fn false_negatives<D: DuplicateDetector>(d: &mut D, keys: impl Iterator<Item = Vec<u8>>) -> u64 {
    match d.window() {
        WindowSpec::Sliding { n } | WindowSpec::Landmark { n } => {
            common::sliding_false_negatives(d, n, keys)
        }
        WindowSpec::Jumping { n, q } => common::jumping_false_negatives(d, n, q, keys),
        other => unreachable!("registry backends are count-window detectors, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 1: every backend, in both layouts, never contradicts
    /// its own prior "valid" verdicts within its window model.
    #[test]
    fn every_backend_zero_false_negatives(seed in 0u64..1_000) {
        let mut keys = injected_keys(seed, 3_000);
        keys.extend(botnet_keys(seed, 3_000));
        for entry in registry::backends() {
            for layout in LAYOUTS {
                let mut d = entry
                    .build(&geometry(seed, layout, 64))
                    .expect("registered backend builds at the shared budget");
                let fns = false_negatives(&mut d, keys.iter().cloned());
                prop_assert_eq!(
                    fns, 0,
                    "{} ({layout:?}): {} false negatives", entry.name, fns
                );
            }
        }
    }

    /// Property 2: batching — ref-slice chunks of arbitrary size and
    /// the flat fixed-stride path — is a pure throughput knob.
    #[test]
    fn every_backend_batch_matches_observe(
        seed in 0u64..1_000,
        chunk in 1usize..300,
    ) {
        let flat = flat_keys(seed, 4_000, 700);
        let keys: Vec<Vec<u8>> = flat.chunks_exact(8).map(<[u8]>::to_vec).collect();
        for entry in registry::backends() {
            for layout in LAYOUTS {
                let geo = geometry(seed, layout, 64);
                let mut seq = entry.build(&geo).expect("build");
                let mut by_refs = entry.build(&geo).expect("build");
                let mut by_flat = entry.build(&geo).expect("build");

                let sequential: Vec<_> = keys.iter().map(|k| seq.observe(k)).collect();

                let mut via_refs = Vec::with_capacity(keys.len());
                for group in keys.chunks(chunk) {
                    let refs: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
                    via_refs.extend(by_refs.observe_batch(&refs));
                }
                prop_assert_eq!(
                    &sequential, &via_refs,
                    "{} ({layout:?}): observe_batch diverged", entry.name
                );

                let mut via_flat = Vec::with_capacity(keys.len());
                let mut out = Vec::new();
                for group in flat.chunks(chunk * 8) {
                    by_flat.observe_flat_into(group, 8, &mut out);
                    via_flat.extend_from_slice(&out);
                }
                prop_assert_eq!(
                    &sequential, &via_flat,
                    "{} ({layout:?}): observe_flat_into diverged", entry.name
                );
            }
        }
    }

    /// Property 3: blocked vs scattered is FP-placement only. At 512
    /// bits per element the FP rate is small, so the two verdict streams
    /// must agree on all but a sliver of the stream (each layout's
    /// zero-FN guarantee is property 1; a disagreement is therefore
    /// always some side's one-sided false positive).
    #[test]
    fn every_backend_layouts_agree_modulo_false_positives(seed in 0u64..1_000) {
        let keys = injected_keys(seed, 4_000);
        for entry in registry::backends() {
            let mut scattered = entry
                .build(&geometry(seed, ProbeLayout::Scattered, 512))
                .expect("build");
            let mut blocked = entry
                .build(&geometry(seed, ProbeLayout::Blocked, 512))
                .expect("build");
            let disagreements = keys
                .iter()
                .filter(|k| scattered.observe(k) != blocked.observe(k))
                .count();
            prop_assert!(
                disagreements <= keys.len() / 20,
                "{}: layouts disagree on {disagreements}/{} verdicts",
                entry.name,
                keys.len()
            );
        }
    }

    /// Property 5: forcing the scalar kernels changes nothing but
    /// speed. Two fresh detectors judge the same duplicate-heavy stream
    /// (batched, so the grouped speculative replay actually engages),
    /// one with the wide kernels forced off and one with them allowed,
    /// and the verdict streams must be identical. On machines without
    /// AVX2 both runs dispatch scalar and the property is trivially
    /// true.
    #[test]
    fn every_backend_simd_matches_scalar(seed in 0u64..1_000, chunk in 1usize..300) {
        // The dispatch override is process-global state: hold a lock so
        // concurrent properties in this binary never race it.
        static DISPATCH: Mutex<()> = Mutex::new(());
        let _guard = DISPATCH.lock().unwrap_or_else(|e| e.into_inner());

        let mut keys = injected_keys(seed, 3_000);
        keys.extend(botnet_keys(seed, 2_000));
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let result = std::panic::catch_unwind(|| {
            for entry in registry::backends() {
                for layout in LAYOUTS {
                    let geo = geometry(seed, layout, 64);
                    let mut forced = entry.build(&geo).expect("build");
                    let mut wide = entry.build(&geo).expect("build");

                    cfd_core::simd::set_scalar_override(Some(true));
                    let mut scalar_verdicts = Vec::with_capacity(keys.len());
                    for group in refs.chunks(chunk) {
                        scalar_verdicts.extend(forced.observe_batch(group));
                    }

                    cfd_core::simd::set_scalar_override(Some(false));
                    let mut wide_verdicts = Vec::with_capacity(keys.len());
                    for group in refs.chunks(chunk) {
                        wide_verdicts.extend(wide.observe_batch(group));
                    }

                    assert_eq!(
                        scalar_verdicts, wide_verdicts,
                        "{} ({layout:?}): wide kernels changed a verdict",
                        entry.name
                    );
                }
            }
        });
        // Restore the default dispatch even when the body panicked, so
        // a failure here cannot bleed into later properties.
        cfd_core::simd::set_scalar_override(None);
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }

    /// Property 4: a checkpoint taken mid-stream restores — through the
    /// backend-agnostic `restore_any` and the entry's own `restore` —
    /// into a detector that continues identically.
    #[test]
    fn every_backend_checkpoint_roundtrips_midstream(seed in 0u64..1_000) {
        let keys = injected_keys(seed, 3_000);
        let (prefix, suffix) = keys.split_at(keys.len() / 2);
        for entry in registry::backends() {
            for layout in LAYOUTS {
                let mut original = entry.build(&geometry(seed, layout, 64)).expect("build");
                for k in prefix {
                    original.observe(k);
                }
                let buf = original.checkpoint_bytes();
                let mut restored = registry::restore_any(&buf)
                    .expect("checkpoint restores through the registry");
                let mut via_entry = entry.restore(&buf).expect("entry restore");
                prop_assert_eq!(restored.window(), original.window());
                prop_assert_eq!(restored.memory_bits(), original.memory_bits());
                for k in suffix {
                    let want = original.observe(k);
                    prop_assert_eq!(
                        restored.observe(k), want,
                        "{} ({layout:?}): restore_any diverged", entry.name
                    );
                    prop_assert_eq!(
                        via_entry.observe(k), want,
                        "{} ({layout:?}): entry restore diverged", entry.name
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tenant property 1: **isolation is exact**, not statistical. A
    /// tenant is a disjoint stride of the shared slab, so the verdicts a
    /// tenant receives inside a 64-tenant interleaved stream must be
    /// byte-for-byte the verdicts a fresh arena produces when fed that
    /// tenant's subsequence alone — other tenants' traffic contributes
    /// nothing, not even false positives.
    #[test]
    fn arena_tenants_are_exactly_isolated(seed in 0u64..1_000) {
        let keys = tenant_keys(seed, 4_000);
        for cfg in arena_layouts(seed) {
            let mut shared = TenantArena::new(cfg).expect("arena builds");
            let mixed: Vec<_> = keys.iter().map(|k| (tenant_of(k), shared.observe(k))).collect();
            prop_assert!(shared.live_tenants() > 8, "stream materializes past the initial slots");
            for tenant in 0..64u64 {
                let mut solo = TenantArena::new(cfg).expect("arena builds");
                let alone: Vec<_> = keys
                    .iter()
                    .filter(|k| tenant_of(k) == tenant)
                    .map(|k| solo.observe(k))
                    .collect();
                let in_mix: Vec<_> = mixed
                    .iter()
                    .filter(|(t, _)| *t == tenant)
                    .map(|(_, v)| *v)
                    .collect();
                prop_assert_eq!(
                    alone, in_mix,
                    "tenant {} verdicts changed under interleaving ({:?})", tenant, cfg.probe
                );
            }
        }
    }

    /// Tenant property 2: the arena's grouped batch replay (ref-slice
    /// and flat-key, arbitrary chunking, run-grouped prefetch engaged)
    /// is verdict-for-verdict the per-click sequential stream.
    #[test]
    fn arena_batch_matches_per_tenant_sequential(
        seed in 0u64..1_000,
        chunk in 1usize..300,
    ) {
        let keys = tenant_keys(seed, 4_000);
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        for cfg in arena_layouts(seed) {
            let mut seq = TenantArena::new(cfg).expect("arena builds");
            let mut by_refs = TenantArena::new(cfg).expect("arena builds");
            let mut by_flat = TenantArena::new(cfg).expect("arena builds");

            let sequential: Vec<_> = keys.iter().map(|k| seq.observe(k)).collect();

            let mut via_refs = Vec::with_capacity(keys.len());
            for group in keys.chunks(chunk) {
                let refs: Vec<&[u8]> = group.iter().map(<[u8; TENANT_KEY_LEN]>::as_slice).collect();
                via_refs.extend(by_refs.observe_batch(&refs));
            }
            prop_assert_eq!(
                &sequential, &via_refs,
                "observe_batch diverged ({:?})", cfg.probe
            );

            let mut via_flat = Vec::with_capacity(keys.len());
            let mut out = Vec::new();
            for group in flat.chunks(chunk * TENANT_KEY_LEN) {
                by_flat.observe_flat_into(group, TENANT_KEY_LEN, &mut out);
                via_flat.extend_from_slice(&out);
            }
            prop_assert_eq!(
                &sequential, &via_flat,
                "observe_flat_into diverged ({:?})", cfg.probe
            );
        }
    }

    /// Tenant property 3: a checkpoint taken with a grown, multi-tenant
    /// slab restores through the backend-agnostic `restore_any` into an
    /// arena that continues verdict-for-verdict identically — tenant
    /// routing map, per-tenant clocks, and free-slot stack included.
    #[test]
    fn arena_checkpoint_roundtrips_multi_tenant_state(seed in 0u64..1_000) {
        let keys = tenant_keys(seed, 4_000);
        let (prefix, suffix) = keys.split_at(keys.len() / 2);
        for cfg in arena_layouts(seed) {
            let mut original = TenantArena::new(cfg).expect("arena builds");
            for k in prefix {
                original.observe(k);
            }
            prop_assert!(original.live_tenants() > 8, "checkpoint covers a grown slab");
            let buf = original.checkpoint();
            let mut restored = registry::restore_any(&buf)
                .expect("arena checkpoint restores through the registry");
            prop_assert_eq!(restored.window(), original.window());
            prop_assert_eq!(restored.memory_bits(), original.memory_bits());
            for k in suffix {
                prop_assert_eq!(
                    restored.observe(k), original.observe(k),
                    "restored arena diverged ({:?})", cfg.probe
                );
            }
        }
    }
}
