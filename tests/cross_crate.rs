//! Cross-crate integration: generators → traces → detectors → ad network
//! → reports, all through the public facade API.

use click_fraud_detection::adnet::{run_dual_audit, NetworkReport};
use click_fraud_detection::prelude::*;
use click_fraud_detection::stream::{read_trace, write_trace};

fn attack_clicks(count: usize) -> Vec<Click> {
    BotnetStream::new(
        BotnetConfig {
            bots: 200,
            attack_fraction: 0.3,
            ..BotnetConfig::default()
        },
        8,
        32,
    )
    .take(count)
    .map(|c| c.click)
    .collect()
}

fn build_network<D: DuplicateDetector>(detector: D) -> AdNetwork<D> {
    let mut net = AdNetwork::new(detector);
    net.registry_mut()
        .add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..32 {
        net.registry_mut()
            .add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 100_000,
            })
            .expect("advertiser registered");
    }
    net
}

#[test]
fn trace_roundtrip_preserves_detector_verdicts() {
    let clicks = attack_clicks(20_000);
    let buf = write_trace(&clicks);
    let restored = read_trace(&buf).expect("valid trace");
    assert_eq!(clicks, restored);

    // Same bytes -> same verdicts from a fresh detector.
    let cfg = TbfConfig::builder(2_048)
        .entries(1 << 15)
        .build()
        .expect("cfg");
    let mut a = Tbf::new(cfg).expect("detector");
    let mut b = Tbf::new(cfg).expect("detector");
    for (x, y) in clicks.iter().zip(&restored) {
        assert_eq!(a.observe(&x.key()), b.observe(&y.key()));
    }
}

#[test]
fn network_report_is_internally_consistent() {
    let clicks = attack_clicks(50_000);
    let cfg = TbfConfig::builder(4_096)
        .entries(1 << 16)
        .build()
        .expect("cfg");
    let mut net = build_network(Tbf::new(cfg).expect("detector"));
    let report = net.run(clicks.iter());

    assert_eq!(report.clicks, 50_000);
    assert_eq!(
        report.charged + report.duplicates_blocked + report.budget_rejections + report.unknown_ads,
        report.clicks
    );
    assert_eq!(report.revenue_micros, report.charged * 100_000);
    assert_eq!(report.savings_micros, report.duplicates_blocked * 100_000);
    assert!(report.blocked_rate() > 0.2, "attack should be blocked");
}

#[test]
fn tighter_windows_charge_more() {
    // Shorter dedup window -> repeats become chargeable sooner. The
    // network with a 512-click window must charge at least as much as
    // the one with an 8192-click window.
    let clicks = attack_clicks(40_000);
    let mut short = build_network(ExactSlidingDedup::new(512));
    let mut long = build_network(ExactSlidingDedup::new(8_192));
    let r_short = short.run(clicks.iter());
    let r_long = long.run(clicks.iter());
    assert!(r_short.charged > r_long.charged);
}

#[test]
fn dual_audit_agreement_is_deterministic_across_detector_kinds() {
    let clicks = attack_clicks(30_000);
    for seed in [1u64, 2, 3] {
        let outcome = run_dual_audit(&clicks, || {
            let cfg = GbfConfig::builder(4_096, 8)
                .filter_bits(1 << 14)
                .seed(seed)
                .build()
                .expect("cfg");
            Gbf::new(cfg).expect("detector")
        });
        assert!(outcome.agreed(), "seed {seed}: {outcome:?}");
    }
}

#[test]
fn report_serializes_with_serde_shape() {
    let clicks = attack_clicks(5_000);
    let mut net = build_network(ExactSlidingDedup::new(1_024));
    let report: NetworkReport = net.run(clicks.iter());
    // serde_json is not a dependency; assert the Serialize impl exists
    // and the debug form carries the key fields.
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    assert_serialize(&report);
    let dbg = format!("{report:?}");
    assert!(dbg.contains("duplicates_blocked"));
}

#[test]
fn prelude_covers_the_quickstart_surface() {
    // Compile-time check that the facade exposes everything the README
    // quickstart uses.
    let cfg = TbfConfig::builder(16).entries(256).build().expect("cfg");
    let mut d = Tbf::new(cfg).expect("detector");
    let mut summary = StreamSummary::default();
    summary.record(d.observe(b"a"));
    summary.record(d.observe(b"a"));
    assert_eq!(summary.duplicates, 1);
    assert_eq!(d.window(), WindowSpec::Sliding { n: 16 });
}
