//! Property tests of the sharded, batch-oriented detection layer.
//!
//! Two families of properties:
//!
//! 1. **Zero false negatives survives sharding.** A click is a false
//!    negative iff the detector previously determined an identical
//!    click *valid* (per its own verdicts, paper Definition 1) within
//!    the current window and still answers `Distinct` — the same
//!    self-consistent statement as `tests/zero_false_negative.rs`, but
//!    with one window of `per_shard_window(N, S)` *per-shard*
//!    observations per shard, selected by the detector's own
//!    `ShardRouter`. Theorems 1.1/2.1 survive routing because every
//!    occurrence of an id lands on the same shard.
//!
//! 2. **`observe_batch` is a pure throughput knob.** For every core
//!    detector, judging a stream through arbitrary batch chunking is
//!    verdict-for-verdict identical to per-click `observe`.

use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
use cfd_core::{Gbf, GbfConfig, Tbf, TbfConfig};
use cfd_stream::{BotnetConfig, BotnetStream, DuplicateInjector, UniqueClickStream};
use cfd_windows::DuplicateDetector;
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Duplicate-heavy keys: 40% re-clicks within a 1.5k gap.
fn injected_keys(seed: u64, count: usize) -> Vec<Vec<u8>> {
    DuplicateInjector::new(UniqueClickStream::new(seed, 4, 32), 0.4, 1_500, seed ^ 5)
        .take(count)
        .map(|c| c.key().to_vec())
        .collect()
}

/// Botnet keys: few identities, extreme repetition.
fn botnet_keys(seed: u64, count: usize) -> Vec<Vec<u8>> {
    BotnetStream::new(
        BotnetConfig {
            bots: 48,
            attack_fraction: 0.5,
            seed,
            ..BotnetConfig::default()
        },
        4,
        16,
    )
    .take(count)
    .map(|c| c.click.key().to_vec())
    .collect()
}

/// Sharded TBF with starved memory (FPs frequent, FNs must be absent).
fn sharded_tbf(router_seed: u64, n: usize, shards: usize) -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(router_seed, shards, |_| {
        let n_s = per_shard_window(n, shards);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 3)
                .hash_count(4)
                .seed(router_seed ^ 0xA5)
                .build()?,
        )
    })
    .expect("sharded tbf")
}

/// Self-consistent sliding-window false negatives for a sharded
/// detector: per-shard rings of `n_s` *per-shard* observations, shard
/// selection by the detector's own router. Mirrors
/// `tests/common/mod.rs::sliding_false_negatives`, lifted over shards.
fn sharded_sliding_false_negatives<D: DuplicateDetector>(
    detector: &mut ShardedDetector<D>,
    n_s: usize,
    keys: &[Vec<u8>],
) -> u64 {
    let router = detector.router();
    let shards = detector.shard_count();
    let mut rings: Vec<VecDeque<(Vec<u8>, bool)>> = vec![VecDeque::new(); shards];
    let mut valid: Vec<HashSet<Vec<u8>>> = vec![HashSet::new(); shards];
    let mut false_negatives = 0u64;
    for key in keys {
        let s = router.route(key);
        let dup = detector.observe(key).is_duplicate();
        if rings[s].len() == n_s {
            let (old, was_valid) = rings[s].pop_front().expect("ring full");
            if was_valid {
                valid[s].remove(&old);
            }
        }
        if !dup && valid[s].contains(key) {
            false_negatives += 1;
        }
        let counts_as_valid = !dup && !valid[s].contains(key);
        if counts_as_valid {
            valid[s].insert(key.clone());
        }
        rings[s].push_back((key.clone(), counts_as_valid));
    }
    false_negatives
}

/// Jumping-window variant: per shard, validity expires one sub-window
/// (of `n_s / q` per-shard observations) at a time.
fn sharded_jumping_false_negatives<D: DuplicateDetector>(
    detector: &mut ShardedDetector<D>,
    n_s: usize,
    q: usize,
    keys: &[Vec<u8>],
) -> u64 {
    let router = detector.router();
    let shards = detector.shard_count();
    let sub_len = n_s.div_ceil(q);
    let mut subs: Vec<VecDeque<HashSet<Vec<u8>>>> = vec![VecDeque::from([HashSet::new()]); shards];
    let mut filled = vec![0usize; shards];
    let mut false_negatives = 0u64;
    for key in keys {
        let s = router.route(key);
        let dup = detector.observe(key).is_duplicate();
        let known = subs[s].iter().any(|sub| sub.contains(key));
        if !dup && known {
            false_negatives += 1;
        }
        if !dup && !known {
            subs[s].back_mut().expect("non-empty").insert(key.clone());
        }
        filled[s] += 1;
        if filled[s] == sub_len {
            filled[s] = 0;
            subs[s].push_back(HashSet::new());
            if subs[s].len() > q {
                subs[s].pop_front();
            }
        }
    }
    false_negatives
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_tbf_zero_fn_on_injected_duplicates(
        seed in 0u64..1_000,
        shards in 1usize..6,
    ) {
        let n = 1 << 10;
        let keys = injected_keys(seed, 12_000);
        let mut filter = sharded_tbf(seed, n, shards);
        let fns = sharded_sliding_false_negatives(&mut filter, per_shard_window(n, shards), &keys);
        prop_assert_eq!(fns, 0);
    }

    #[test]
    fn sharded_tbf_zero_fn_on_botnet_streams(
        seed in 0u64..1_000,
        shards in 1usize..6,
    ) {
        let n = 1 << 10;
        let keys = botnet_keys(seed, 12_000);
        let mut filter = sharded_tbf(seed, n, shards);
        let fns = sharded_sliding_false_negatives(&mut filter, per_shard_window(n, shards), &keys);
        prop_assert_eq!(fns, 0);
    }

    #[test]
    fn sharded_gbf_zero_fn_on_injected_and_botnet_streams(
        seed in 0u64..1_000,
        shards in 1usize..6,
    ) {
        let (n, q) = (1 << 10, 4);
        let mut filter = ShardedDetector::from_fn(seed, shards, |_| {
            let n_s = per_shard_window(n, shards);
            Gbf::new(
                GbfConfig::builder(n_s, q)
                    .filter_bits((n_s / q).max(1) * 4)
                    .hash_count(3)
                    .seed(seed ^ 0xB6)
                    .build()?,
            )
        })
        .expect("sharded gbf");
        let mut keys = injected_keys(seed, 8_000);
        keys.extend(botnet_keys(seed, 8_000));
        let fns =
            sharded_jumping_false_negatives(&mut filter, per_shard_window(n, shards), q, &keys);
        prop_assert_eq!(fns, 0);
    }
}

/// Drives two identically-configured detectors over `keys`, one
/// per-click and one through `observe_batch` with the given chunking,
/// asserting identical verdict streams.
fn assert_batch_equals_observe<D: DuplicateDetector>(
    mut per_click: D,
    mut batched: D,
    keys: &[Vec<u8>],
    chunk: usize,
) {
    let sequential: Vec<_> = keys.iter().map(|k| per_click.observe(k)).collect();
    let mut via_batch = Vec::with_capacity(keys.len());
    for group in keys.chunks(chunk.max(1)) {
        let refs: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
        via_batch.extend(batched.observe_batch(&refs));
    }
    prop_assert_eq!(sequential, via_batch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tbf_observe_batch_matches_observe(
        seed in 0u64..1_000,
        chunk in 1usize..400,
    ) {
        let n = 512;
        let mk = || Tbf::new(
            TbfConfig::builder(n).entries(n * 4).hash_count(5).seed(seed).build().expect("cfg"),
        ).expect("detector");
        assert_batch_equals_observe(mk(), mk(), &injected_keys(seed, 6_000), chunk);
    }

    #[test]
    fn gbf_observe_batch_matches_observe(
        seed in 0u64..1_000,
        chunk in 1usize..400,
    ) {
        let (n, q) = (512, 8);
        let mk = || Gbf::new(
            GbfConfig::builder(n, q).filter_bits(n / q * 5).hash_count(4).seed(seed).build().expect("cfg"),
        ).expect("detector");
        assert_batch_equals_observe(mk(), mk(), &injected_keys(seed, 6_000), chunk);
    }

    #[test]
    fn jumping_tbf_observe_batch_matches_observe(
        seed in 0u64..1_000,
        chunk in 1usize..400,
    ) {
        let (n, q) = (512, 8);
        let mk = || JumpingTbf::new(
            JumpingTbfConfig::new(n, q, n * 4, 4, seed).expect("cfg"),
        ).expect("detector");
        assert_batch_equals_observe(mk(), mk(), &injected_keys(seed, 6_000), chunk);
    }

    #[test]
    fn sharded_observe_batch_matches_observe(
        seed in 0u64..1_000,
        chunk in 1usize..400,
        shards in 1usize..6,
    ) {
        let n = 1 << 10;
        assert_batch_equals_observe(
            sharded_tbf(seed, n, shards),
            sharded_tbf(seed, n, shards),
            &botnet_keys(seed, 6_000),
            chunk,
        );
    }
}
